"""Tests for the benchmark harness, reporting, and CLI."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentSeries, Timer, measure_seconds
from repro.bench.cli import main as cli_main
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import to_ascii_table, to_csv, to_markdown
from repro.core.errors import ValidationError


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed > 0.0

    def test_measure_seconds(self):
        elapsed = measure_seconds(lambda: sum(range(1000)), repeat=2)
        assert elapsed > 0.0

    def test_measure_seconds_validates_repeat(self):
        with pytest.raises(ValidationError):
            measure_seconds(lambda: None, repeat=0)


def sample_series() -> ExperimentSeries:
    series = ExperimentSeries(
        experiment_id="demo",
        title="Demo",
        x_label="x",
        y_label="y",
        x_values=[1, 2],
        notes="a note",
    )
    series.add_point("OB", 0.5)
    series.add_point("OB", 0.7)
    series.add_point("QB", 0.1)
    series.add_point("QB", 0.2)
    return series


class TestExperimentSeries:
    def test_validate_aligned(self):
        sample_series().validate()

    def test_validate_misaligned(self):
        series = sample_series()
        series.add_point("OB", 0.9)
        with pytest.raises(ValidationError):
            series.validate()

    def test_curve_lookup(self):
        series = sample_series()
        assert series.curve("QB") == [0.1, 0.2]
        with pytest.raises(ValidationError):
            series.curve("MC")

    def test_speedup(self):
        series = sample_series()
        assert series.speedup("OB", "QB") == pytest.approx([5.0, 3.5])

    def test_speedup_division_by_zero(self):
        series = sample_series()
        series.series["QB"] = [0.0, 0.2]
        assert series.speedup("OB", "QB")[0] == float("inf")


class TestReporting:
    def test_ascii_table(self):
        text = to_ascii_table(sample_series())
        assert "Demo" in text
        assert "OB" in text and "QB" in text
        assert "a note" in text

    def test_markdown(self):
        text = to_markdown(sample_series())
        assert text.startswith("### Demo")
        assert "| x | OB | QB |" in text

    def test_csv(self):
        text = to_csv(sample_series())
        lines = text.strip().split("\n")
        assert lines[0] == "x,OB,QB"
        assert len(lines) == 3

    def test_value_formatting_extremes(self):
        series = ExperimentSeries(
            experiment_id="fmt",
            title="fmt",
            x_label="x",
            y_label="y",
            x_values=[1],
        )
        series.add_point("tiny", 1e-9)
        series.add_point("huge", 123456.0)
        series.add_point("zero", 0.0)
        text = to_csv(series)
        assert "e-09" in text
        assert "e+05" in text


class TestExperimentRegistry:
    def test_all_paper_figures_present(self):
        for figure in (
            "fig8a", "fig8b", "fig9a", "fig9b", "fig9c", "fig9d",
            "fig10a", "fig10b", "fig11a", "fig11b",
        ):
            assert figure in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(ValidationError):
            run_experiment("fig99")

    def test_tiny_fig9d_run_shows_overestimation(self):
        series = run_experiment("fig9d", scale=0.2)
        series.validate()
        exact = series.curve("with temporal correlation")
        naive = series.curve("without temporal correlation")
        # averaged over many objects, the naive model must not fall below
        # the exact average on longer windows
        assert naive[-1] >= exact[-1] - 1e-9

    def test_tiny_fig8a_run_orders_methods(self):
        series = run_experiment("fig8a", scale=0.05)
        series.validate()
        # the headline ordering holds even at toy scale; compare sums,
        # single points are timing-noise territory at this size
        mc = sum(series.curve("MC"))
        ob = sum(series.curve("OB"))
        qb = sum(series.curve("QB"))
        assert mc > ob > qb

    def test_tiny_fig9a_run_shapes(self):
        series = run_experiment("fig9a", scale=0.05)
        series.validate()
        ob = series.curve("OB")
        qb = series.curve("QB")
        assert all(o > q for o, q in zip(ob, qb))
        # OB grows with the horizon; compare half-sums -- at toy scale
        # the batched sweep makes single points timing-noise territory
        half = len(ob) // 2
        assert sum(ob[half:]) > sum(ob[:half])


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out

    def test_no_selection_is_an_error(self, capsys):
        assert cli_main([]) == 2

    def test_unknown_id_is_an_error(self, capsys):
        assert cli_main(["nope"]) == 2

    def test_run_one_experiment_with_output(self, tmp_path, capsys):
        code = cli_main(
            [
                "ablation_backend",
                "--scale",
                "0.3",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "ablation_backend.md").exists()
        assert (tmp_path / "ablation_backend.csv").exists()
        out = capsys.readouterr().out
        assert "backend" in out.lower()
