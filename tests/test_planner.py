"""Tests for the cost-based query planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostModel,
    LineStateSpace,
    PlanCache,
    PlanOptions,
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    QueryEngine,
    QueryPlanner,
    SpatioTemporalWindow,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import QueryError, ValidationError
from repro.core.planner import resolve_options
from repro.workloads.synthetic import make_line_chain

from conftest import random_chain


def line_database(
    n_objects=12, n_states=300, max_step=10, seed=0, chain_ids=("default",)
):
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        n_states, state_space=LineStateSpace(n_states)
    )
    for index, chain_id in enumerate(chain_ids):
        database.register_chain(
            chain_id,
            make_line_chain(
                n_states, max_step=max_step, seed=seed + index
            ),
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.at_state(
                f"o{index}",
                n_states,
                int(rng.integers(0, n_states)),
                chain_id=chain_ids[index % len(chain_ids)],
            )
        )
    return database


WINDOW = SpatioTemporalWindow.from_ranges(0, 20, 4, 6)


class TestPlanOptions:
    def test_bad_method_rejected(self):
        with pytest.raises(QueryError):
            PlanOptions(method="magic")

    def test_bad_n_samples_rejected(self):
        with pytest.raises(ValidationError, match="0"):
            PlanOptions(n_samples=0)

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ValidationError, match="0"):
            PlanOptions(max_workers=0)

    def test_non_integral_max_workers_rejected_eagerly(self):
        """A float/str pool size must fail at option construction,
        not deep inside pool acquisition with a bare TypeError."""
        with pytest.raises(ValidationError, match="2.5"):
            PlanOptions(max_workers=2.5)
        with pytest.raises(ValidationError, match="'4'"):
            PlanOptions(max_workers="4")
        with pytest.raises(ValidationError, match="True"):
            PlanOptions(max_workers=True)

    def test_bad_dispatch_named_in_error(self):
        with pytest.raises(ValidationError, match="gpu"):
            PlanOptions(dispatch="gpu")

    def test_resolve_conflicting_methods_raise(self):
        with pytest.raises(QueryError):
            resolve_options(
                PlanOptions(method="ob"), "qb", None, None, None
            )

    def test_resolve_prune_flag_mapping(self):
        on = resolve_options(None, "auto", None, None, True)
        assert on.bfs_prune is True and on.prefilter is None
        off = resolve_options(None, "auto", None, None, False)
        assert off.bfs_prune is False and off.prefilter is False

    def test_resolve_explicit_fields_beat_prune_flag(self):
        base = PlanOptions(bfs_prune=True, prefilter=True)
        merged = resolve_options(base, "auto", None, None, False)
        assert merged.bfs_prune is True and merged.prefilter is True


class TestMethodChoice:
    def test_large_group_prefers_qb(self):
        database = line_database(n_objects=50)
        plan = QueryPlanner(database).plan(PSTExistsQuery(WINDOW))
        assert [group.method for group in plan.groups] == ["qb"]
        group = plan.groups[0]
        assert group.costs["qb"] < group.costs["ob"]

    def test_singleton_group_prefers_ob(self):
        database = line_database(n_objects=1)
        plan = QueryPlanner(database).plan(PSTExistsQuery(WINDOW))
        group = plan.groups[0]
        assert group.method == "ob"
        assert group.costs["ob"] < group.costs["qb"]

    def test_forced_method_wins(self):
        database = line_database(n_objects=50)
        plan = QueryPlanner(database).plan(
            PSTExistsQuery(WINDOW), PlanOptions(method="ob")
        )
        assert all(group.method == "ob" for group in plan.groups)

    def test_mc_needs_approximation_opt_in(self):
        database = line_database(n_objects=50)
        cheap_mc = CostModel(mc_step_unit=1e-9)
        exact = QueryPlanner(database, cost_model=cheap_mc).plan(
            PSTExistsQuery(WINDOW)
        )
        assert exact.groups[0].method in ("qb", "ob")
        approximate = QueryPlanner(database, cost_model=cheap_mc).plan(
            PSTExistsQuery(WINDOW), PlanOptions(allow_approximate=True)
        )
        assert approximate.groups[0].method == "mc"

    def test_ktimes_uses_exact_ct_kernel(self):
        database = line_database(n_objects=10)
        plan = QueryPlanner(database).plan(PSTKTimesQuery(WINDOW))
        assert plan.kind == "ktimes"
        assert all(group.method == "ct" for group in plan.groups)


class TestCacheAwareCosts:
    def test_warm_backward_vectors_lower_qb_cost(self):
        database = line_database(n_objects=30)
        cache = PlanCache()
        planner = QueryPlanner(database, plan_cache=cache)
        query = PSTExistsQuery(WINDOW)
        cold = planner.plan(query)
        engine = QueryEngine(database, plan_cache=cache)
        engine.evaluate(query, method="qb")
        warm = planner.plan(query)
        assert (
            warm.groups[0].costs["qb"] < cold.groups[0].costs["qb"]
        )
        assert warm.groups[0].features.absorbing_cached

    def test_probe_does_not_mutate_cache_stats(self):
        database = line_database(n_objects=30)
        cache = PlanCache()
        engine = QueryEngine(database, plan_cache=cache)
        engine.evaluate(PSTExistsQuery(WINDOW), method="qb")
        before = (cache.stats.hits, cache.stats.misses)
        QueryPlanner(database, plan_cache=cache).plan(
            PSTExistsQuery(WINDOW)
        )
        assert (cache.stats.hits, cache.stats.misses) == before


class TestStageDecisions:
    def test_no_state_space_disables_prefilter(self):
        rng = np.random.default_rng(3)
        database = TrajectoryDatabase.with_chain(random_chain(10, rng))
        database.add(UncertainObject.at_state("a", 10, 0))
        plan = QueryPlanner(database).plan(
            PSTExistsQuery(
                SpatioTemporalWindow(frozenset({1}), frozenset({2}))
            )
        )
        assert not plan.use_prefilter

    def test_wide_region_disables_prefilter(self):
        database = line_database(n_objects=40, n_states=100)
        wide = SpatioTemporalWindow.from_ranges(0, 80, 4, 6)
        plan = QueryPlanner(database).plan(PSTExistsQuery(wide))
        assert not plan.use_prefilter
        narrow = QueryPlanner(database).plan(PSTExistsQuery(WINDOW))
        assert narrow.use_prefilter

    def test_tiny_database_skips_filters(self):
        database = line_database(n_objects=2)
        plan = QueryPlanner(database).plan(PSTExistsQuery(WINDOW))
        assert not plan.use_prefilter
        assert not plan.use_bfs

    def test_options_force_filters(self):
        database = line_database(n_objects=2)
        plan = QueryPlanner(database).plan(
            PSTExistsQuery(WINDOW),
            PlanOptions(prefilter=True, bfs_prune=True),
        )
        assert plan.use_prefilter and plan.use_bfs

    def test_parallel_needs_multiple_groups(self):
        single = line_database(n_objects=64)
        plan = QueryPlanner(single).plan(
            PSTExistsQuery(WINDOW), PlanOptions(parallel=True)
        )
        assert not plan.parallel
        multi = line_database(
            n_objects=64, chain_ids=("cars", "trucks")
        )
        plan = QueryPlanner(multi).plan(
            PSTExistsQuery(WINDOW),
            PlanOptions(parallel=True, max_workers=2),
        )
        assert plan.parallel and plan.max_workers == 2

    def test_forall_plans_complement(self):
        database = line_database(n_objects=10, n_states=50)
        window = SpatioTemporalWindow.from_ranges(0, 10, 4, 6)
        plan = QueryPlanner(database).plan(PSTForAllQuery(window))
        assert plan.complemented
        assert plan.window.region == frozenset(range(11, 50))


class TestDescribe:
    def test_describe_mentions_groups_and_stages(self):
        database = line_database(n_objects=20)
        engine = QueryEngine(database)
        plan = engine.explain(PSTExistsQuery(WINDOW))
        text = plan.describe()
        assert "prefilter" in text
        assert "bfs" in text
        assert "evaluate" in text
        assert "method=qb" in text

    def test_displacement_bound_matches_generator(self):
        # Table I locality: max_step=10 -> at most 5 states per step
        database = line_database(n_objects=5, max_step=10)
        bound = database.chain_displacement_bound("default")
        assert bound is not None and bound <= 5.0
