"""Tests for regular-pattern (Lahar-style) sequence queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarkovChain,
    PossibleWorldEnumerator,
    SpatioTemporalWindow,
    StateDistribution,
)
from repro.core.errors import QueryError, ValidationError
from repro.core.sequence import Pattern, sequence_probability

from conftest import random_chain, random_distribution


class TestPatternMatching:
    """The compiled DFA on concrete sequences."""

    def test_atom(self):
        pattern = Pattern.state(1)
        assert pattern.matches([1], n_states=3)
        assert not pattern.matches([2], n_states=3)
        assert not pattern.matches([1, 1], n_states=3)  # whole match

    def test_any(self):
        pattern = Pattern.any().then(Pattern.state(0))
        assert pattern.matches([2, 0], n_states=3)
        assert not pattern.matches([0, 2], n_states=3)

    def test_concat(self):
        pattern = Pattern.state(0).then(Pattern.state(1))
        assert pattern.matches([0, 1], n_states=2)
        assert not pattern.matches([0, 0], n_states=2)

    def test_union(self):
        pattern = Pattern.state(0).alt(Pattern.state(1))
        assert pattern.matches([0], n_states=3)
        assert pattern.matches([1], n_states=3)
        assert not pattern.matches([2], n_states=3)

    def test_star(self):
        pattern = Pattern.state(0).star()
        assert pattern.matches([], n_states=2)
        assert pattern.matches([0, 0, 0], n_states=2)
        assert not pattern.matches([0, 1], n_states=2)

    def test_plus(self):
        pattern = Pattern.state(0).plus()
        assert not pattern.matches([], n_states=2)
        assert pattern.matches([0], n_states=2)
        assert pattern.matches([0, 0], n_states=2)

    def test_repeat(self):
        pattern = Pattern.states({0, 1}).repeat(3)
        assert pattern.matches([0, 1, 0], n_states=3)
        assert not pattern.matches([0, 1], n_states=3)
        assert not pattern.matches([0, 1, 2], n_states=3)

    def test_repeat_zero_is_epsilon(self):
        pattern = Pattern.state(0).repeat(0)
        assert pattern.matches([], n_states=2)
        assert not pattern.matches([0], n_states=2)

    def test_complex_pattern(self):
        # "anywhere, then at least one step in {1,2}, then state 0"
        pattern = (
            Pattern.any().star()
            .then(Pattern.states({1, 2}).plus())
            .then(Pattern.state(0))
        )
        assert pattern.matches([0, 1, 0], n_states=3)
        assert pattern.matches([2, 2, 0], n_states=3)
        assert not pattern.matches([0, 0], n_states=3)

    def test_validation(self):
        with pytest.raises(QueryError):
            Pattern.states(set())
        with pytest.raises(QueryError):
            Pattern.state(0).repeat(-1)
        with pytest.raises(QueryError):
            Pattern.state(9).compile(3).matches([0])
        with pytest.raises(ValidationError):
            Pattern.any().compile(3).matches([7])


def brute_force_probability(chain, initial, pattern, length):
    enumerator = PossibleWorldEnumerator(chain, initial, length)
    compiled = pattern.compile(chain.n_states)
    return sum(
        probability
        for trajectory, probability in enumerator.worlds()
        if compiled.matches(trajectory.states)
    )


class TestSequenceProbability:
    def test_matches_enumeration_random(self):
        rng = np.random.default_rng(0)
        for trial in range(15):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng, sparse=True)
            length = int(rng.integers(1, 5))
            pattern = (
                Pattern.any().star()
                .then(Pattern.states({0}))
                .then(Pattern.any().star())
            )
            expected = brute_force_probability(
                chain, initial, pattern, length
            )
            actual = sequence_probability(
                chain, initial, pattern, length
            )
            assert actual == pytest.approx(expected, abs=1e-10)

    def test_wildcard_pattern_has_probability_one(self, paper_chain):
        initial = StateDistribution.point(3, 1)
        pattern = Pattern.any().plus()
        assert sequence_probability(
            paper_chain, initial, pattern, length=4
        ) == pytest.approx(1.0)

    def test_exists_window_as_anchored_pattern(self, paper_chain):
        """The paper's point inverted: while a *plain* regex cannot
        anchor positions, an explicit finite unrolling can.  The window
        S={s1,s2}, T={2,3} over a length-3 sequence is
        ``. . ([s1s2] .) | (. [s1s2])`` -- and must equal the paper's
        0.864."""
        initial = StateDistribution.point(3, 1)
        region = Pattern.states({0, 1})
        dot = Pattern.any()
        pattern = dot.then(dot).then(
            region.then(dot).alt(dot.then(region))
        )
        probability = sequence_probability(
            paper_chain, initial, pattern, length=3
        )
        assert probability == pytest.approx(0.864)

    def test_forall_window_as_pattern(self):
        rng = np.random.default_rng(1)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({1, 2})
        )
        from repro import ob_forall_probability

        region = Pattern.states({0, 1})
        pattern = (
            Pattern.any().then(region).then(region)
        )
        assert sequence_probability(
            chain, initial, pattern, length=2
        ) == pytest.approx(
            ob_forall_probability(chain, initial, window)
        )

    def test_unreachable_pattern_zero(self, paper_chain):
        # from s2 the object cannot be at s2 at t=1
        initial = StateDistribution.point(3, 1)
        pattern = Pattern.any().then(Pattern.state(1))
        assert sequence_probability(
            paper_chain, initial, pattern, length=1
        ) == 0.0

    def test_length_zero_matches_single_symbol_patterns(self,
                                                        paper_chain):
        initial = StateDistribution.point(3, 1)
        assert sequence_probability(
            paper_chain, initial, Pattern.state(1), length=0
        ) == 1.0
        assert sequence_probability(
            paper_chain, initial, Pattern.state(0), length=0
        ) == 0.0

    def test_validation(self, paper_chain):
        initial = StateDistribution.point(3, 1)
        with pytest.raises(QueryError):
            sequence_probability(
                paper_chain, initial, Pattern.any(), length=-1
            )
        with pytest.raises(ValidationError):
            sequence_probability(
                paper_chain,
                StateDistribution.point(4, 0),
                Pattern.any(),
                length=1,
            )

    def test_star_pattern_probabilities(self):
        """P(stay in {0} the whole time) via a star pattern."""
        chain = MarkovChain([[0.7, 0.3], [0.0, 1.0]])
        initial = StateDistribution.point(2, 0)
        pattern = Pattern.state(0).plus()
        for length in range(4):
            assert sequence_probability(
                chain, initial, pattern, length
            ) == pytest.approx(0.7**length)
