"""Cross-tier k-times parity: every execution tier, one truth.

Definition 4 (PST-k-times) now has five exact implementations -- the
possible-world enumerator, the blocked product-space matrices, the
per-object C(t) algorithm, the stacked :class:`KTimesSweep` batch
kernel, and the streaming C-block ladder -- plus three dispatch modes
for the batch kernel.  This suite pins them all to each other at
1e-12 on randomized windows, which is what lets the engine route a
k-times query through any tier the planner picks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PlanOptions,
    PossibleWorldEnumerator,
    PSTKTimesQuery,
    QueryEngine,
    SpatioTemporalWindow,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
    batch_ktimes_distribution,
    ktimes_distribution,
    ktimes_distribution_blocked,
)
from repro.core.state_space import LineStateSpace
from repro.exec.operators import ExecutionContext
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

from conftest import random_chain, random_distribution, random_window

N_STATES = 300
WINDOW = SpatioTemporalWindow.from_ranges(100, 140, 12, 16)


def build_database(
    seed: int, n_objects: int = 30, n_chains: int = 2
) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        N_STATES, state_space=LineStateSpace(N_STATES)
    )
    for index in range(n_chains):
        database.register_chain(
            f"chain-{index}", make_line_chain(N_STATES, rng=rng)
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(N_STATES, 5, rng),
                time=int(rng.integers(0, 6)),
                chain_id=f"chain-{index % n_chains}",
            )
        )
    return database


class TestBatchedSweepParity:
    def test_randomized_windows_across_all_exact_tiers(self):
        """Enumerator == blocked == per-object C(t) == batched sweep."""
        rng = np.random.default_rng(42)
        for _ in range(20):
            n = int(rng.integers(2, 6))
            chain = random_chain(n, rng)
            window = random_window(n, rng, max_time=5)
            n_objects = int(rng.integers(1, 5))
            initials = [
                random_distribution(n, rng) for _ in range(n_objects)
            ]
            starts = [
                int(rng.integers(0, window.t_start + 1))
                for _ in range(n_objects)
            ]
            batched = batch_ktimes_distribution(
                chain, initials, window, start_times=starts
            )
            for row in range(n_objects):
                exact = (
                    PossibleWorldEnumerator(
                        chain, initials[row], window.t_end
                    ).ktimes_distribution(window)
                    if starts[row] == 0
                    else None
                )
                per_object = ktimes_distribution(
                    chain, initials[row], window,
                    start_time=starts[row],
                )
                blocked = ktimes_distribution_blocked(
                    chain, initials[row], window,
                    start_time=starts[row],
                )
                assert batched[row] == pytest.approx(
                    per_object, abs=1e-12
                )
                assert batched[row] == pytest.approx(
                    blocked, abs=1e-12
                )
                if exact is not None:
                    assert batched[row] == pytest.approx(
                        exact, abs=1e-10
                    )

    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(43)
        chain = random_chain(4, rng)
        window = random_window(4, rng, max_time=5)
        initials = [random_distribution(4, rng) for _ in range(6)]
        batched = batch_ktimes_distribution(chain, initials, window)
        assert batched.sum(axis=1) == pytest.approx(
            np.ones(6), abs=1e-10
        )

    def test_empty_cohort(self):
        rng = np.random.default_rng(44)
        chain = random_chain(3, rng)
        window = random_window(3, rng, max_time=4)
        result = batch_ktimes_distribution(chain, [], window)
        assert result.shape == (0, window.duration + 1)

    def test_timing_hooks_record_both_ktimes_operators(self):
        rng = np.random.default_rng(45)
        chain = random_chain(4, rng)
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({2, 4})
        )
        context = ExecutionContext()
        batch_ktimes_distribution(
            chain,
            [random_distribution(4, rng) for _ in range(2)],
            window,
            # one pre-window object (suffix-count core), one observed
            # at the window start (footnote-3 cohort sweep)
            start_times=[0, window.t_start],
            context=context,
        )
        assert context.timings["ktimes_core"].calls == 1
        assert context.timings["ktimes_sweep"].calls == 1


class TestDispatchParity:
    def test_serial_thread_process_agree(self):
        database = build_database(seed=1, n_objects=40)
        engine = QueryEngine(database)
        query = PSTKTimesQuery(WINDOW)
        base = dict(prefilter=False, bfs_prune=False)
        results = {
            mode: engine.evaluate(
                query,
                options=PlanOptions(
                    **base, dispatch=mode, max_workers=4
                ),
            )
            for mode in ("serial", "thread", "process")
        }
        for mode in ("thread", "process"):
            for object_id in database.object_ids:
                assert np.asarray(
                    results[mode].values[object_id]
                ) == pytest.approx(
                    np.asarray(results["serial"].values[object_id]),
                    abs=1e-12,
                )

    def test_process_dispatch_reports_pool_tasks(self):
        database = build_database(seed=2, n_objects=40, n_chains=1)
        engine = QueryEngine(database)
        plan = engine.explain(
            PSTKTimesQuery(WINDOW),
            options=PlanOptions(
                prefilter=False, bfs_prune=False,
                dispatch="process", max_workers=2,
            ),
        )
        evaluate = plan.stages[-1]
        assert "process" in evaluate.detail
        assert "method=ct" in evaluate.detail

    def test_filtered_matches_unfiltered_with_scalar_k(self):
        database = build_database(seed=3)
        engine = QueryEngine(database)
        query = PSTKTimesQuery(WINDOW, k=0)
        filtered = engine.evaluate(query)
        unfiltered = engine.evaluate(
            query,
            options=PlanOptions(prefilter=False, bfs_prune=False),
        )
        for object_id in database.object_ids:
            assert filtered.values[object_id] == pytest.approx(
                unfiltered.values[object_id], abs=1e-12
            )


class TestStreamingParity:
    def test_tick_matches_from_scratch(self):
        database = build_database(seed=4)
        engine = QueryEngine(database)
        standing = engine.watch(PSTKTimesQuery(WINDOW), stride=2)
        fresh = QueryEngine(database)
        for _ in range(5):
            result = standing.tick()
            scratch = fresh.evaluate(result.query)
            for object_id in database.object_ids:
                assert np.asarray(
                    result.values[object_id]
                ) == pytest.approx(
                    np.asarray(scratch.values[object_id]), abs=1e-12
                )

    def test_tick_cost_is_stride_products_per_chain(self):
        database = build_database(seed=5, n_chains=1)
        standing = QueryEngine(database).watch(
            PSTKTimesQuery(WINDOW), stride=3
        )
        standing.tick()  # tick 0 seeds the core and the ladder
        result = standing.tick()
        detail = result.plan.stages[0].detail
        assert "3 sparse products" in detail

    def test_ladder_eviction_bounds_rungs(self):
        """Dead C-blocks are dropped: memory ~ live gap spread."""
        database = build_database(seed=6, n_chains=1)
        standing = QueryEngine(database).watch(PSTKTimesQuery(WINDOW))
        for _ in range(30):
            standing.tick()
        rungs = sum(
            len(stream.rel)
            for stream in standing._chains.values()
        )
        spread = max(
            max(stream.singles.values()) - min(stream.singles.values())
            for stream in standing._chains.values()
        )
        # one rung per live gap in the dense kept range, nothing for
        # the 30 slid timestamps beyond the spread
        assert rungs <= spread + 2

    def test_scalar_k_standing_query(self):
        database = build_database(seed=7)
        engine = QueryEngine(database)
        standing = engine.watch(PSTKTimesQuery(WINDOW, k=1))
        fresh = QueryEngine(database)
        result = standing.tick()
        scratch = fresh.evaluate(result.query)
        for object_id in database.object_ids:
            assert np.isscalar(result.values[object_id])
            assert result.values[object_id] == pytest.approx(
                scratch.values[object_id], abs=1e-12
            )

    def test_plan_reports_ktimes_kind(self):
        database = build_database(seed=8)
        standing = QueryEngine(database).watch(PSTKTimesQuery(WINDOW))
        standing.tick()
        plan = standing.explain()
        assert plan.kind == "ktimes"
        assert plan.semantics == "ktimes"


class TestAutoStream:
    def test_constant_stride_promotes_to_standing_query(self):
        database = build_database(seed=9)
        engine = QueryEngine(database)
        fresh = QueryEngine(database)
        options = PlanOptions(auto_stream=True)
        for step in range(5):
            window = SpatioTemporalWindow(
                WINDOW.region,
                frozenset(t + 2 * step for t in WINDOW.times),
            )
            query = PSTKTimesQuery(window)
            result = engine.evaluate(query, options=options)
            scratch = fresh.evaluate(query)
            for object_id in database.object_ids:
                assert np.asarray(
                    result.values[object_id]
                ) == pytest.approx(
                    np.asarray(scratch.values[object_id]), abs=1e-12
                )
            if step >= 2:
                # promotion needs the stride confirmed twice
                assert result.plan.auto_streamed
                assert result.method == "streaming"
                assert "auto-streamed" in result.plan.describe()
            else:
                assert not result.plan.auto_streamed

    def test_irregular_slide_is_not_promoted(self):
        database = build_database(seed=10)
        engine = QueryEngine(database)
        options = PlanOptions(auto_stream=True)
        # every consecutive stride differs (3, 1, 6), so no slide is
        # ever confirmed and the batch path serves every call
        for offset in (0, 3, 4, 10):
            window = SpatioTemporalWindow(
                WINDOW.region,
                frozenset(t + offset for t in WINDOW.times),
            )
            result = engine.evaluate(
                PSTKTimesQuery(window), options=options
            )
            assert not result.plan.auto_streamed
        assert engine._auto_standing is None

    def test_off_by_default(self):
        database = build_database(seed=11)
        engine = QueryEngine(database)
        for step in range(3):
            window = SpatioTemporalWindow(
                WINDOW.region,
                frozenset(t + step for t in WINDOW.times),
            )
            result = engine.evaluate(PSTKTimesQuery(window))
            assert not result.plan.auto_streamed


class TestForAllSemantics:
    def test_plan_carries_originating_semantics(self):
        from repro import PSTForAllQuery

        database = build_database(seed=12)
        engine = QueryEngine(database)
        plan = engine.explain(
            PSTForAllQuery.from_ranges(0, N_STATES // 2, 12, 16)
        )
        assert plan.kind == "exists"
        assert plan.complemented
        assert plan.semantics == "forall"
        assert "semantics=forall" in plan.describe()

    def test_exists_and_ktimes_semantics_match_kind(self):
        database = build_database(seed=13)
        engine = QueryEngine(database)
        from repro import PSTExistsQuery

        exists_plan = engine.explain(PSTExistsQuery(WINDOW))
        assert exists_plan.semantics == "exists"
        assert "semantics=" not in exists_plan.describe()
        ktimes_plan = engine.explain(PSTKTimesQuery(WINDOW))
        assert ktimes_plan.semantics == "ktimes"


class TestPlannerIntegration:
    def test_ktimes_groups_are_priced(self):
        database = build_database(seed=14)
        plan = QueryEngine(database).planner.plan(
            PSTKTimesQuery(WINDOW)
        )
        for group in plan.groups:
            assert group.method == "ct"
            assert group.costs["ct"] > 0

    def test_pre_ktimes_calibration_file_borrows_sweep_scale(self):
        """An old calibration without ktimes_unit must not mix units.

        Fitted coefficients are seconds-per-unit-load; keeping the
        structural default (1.0 relative units) for a missing
        ktimes_unit would inflate k-times estimates by ~9 orders of
        magnitude and trip the seconds-scale process threshold.
        """
        import json

        from repro import CostModel

        document = {
            "coefficients": {
                "sweep_unit": 2e-9,
                "dense_sweep_unit": 1e-9,
                "dot_unit": 1e-11,
                "build_unit": 5e-8,
                "mc_step_unit": 1e-6,
                "object_overhead": 1e-5,
            },
            "thresholds": {"process_min_cost": 0.5},
        }
        import tempfile

        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as handle:
            json.dump(document, handle)
            path = handle.name
        model = CostModel.from_calibration(path)
        assert model.ktimes_unit == pytest.approx(2e-9)

    def test_calibration_fits_ktimes_coefficient(self):
        from repro.exec.calibrate import (
            CalibrationConfig,
            default_grid,
            fit,
            measure_grid,
        )

        grid = default_grid(smoke=True)[:4]
        measurements = measure_grid(
            CalibrationConfig(smoke=True, repeats=1), grid
        )
        kernels = {m.kernel for m in measurements}
        assert "ct" in kernels
        model = fit(measurements, CalibrationConfig(smoke=True))
        assert model.ktimes_unit > 0
