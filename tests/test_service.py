"""Query service: fusion parity, admission control, tenant accounting.

The load-bearing property mirrors the dispatch and fault suites: no
matter how many concurrent clients the broker fuses into one stacked
evaluation -- and no matter what the supervised process pool has to
survive underneath -- every client's values stay within 1e-12 of a
serial ``QueryEngine.evaluate`` of the same query.  Everything else
here is the service contract around that: typed admission rejections,
per-tenant budgets, fusion events on the plan, quarantine surfaced to
the owning tenant, drain-on-stop.
"""

from __future__ import annotations

import asyncio
import warnings

import numpy as np
import pytest

from repro import (
    AdmissionRejected,
    FaultInjector,
    FaultSpec,
    PlanOptions,
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    QueryEngine,
    QueryService,
    SpatioTemporalWindow,
    SupervisorPolicy,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import ValidationError
from repro.core.state_space import LineStateSpace
from repro.exec import dispatch
from repro.service.broker import (
    PendingRequest,
    RequestBroker,
    fusion_key,
)
from repro.service.tenants import TenantLedger
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

N_STATES = 300
WINDOW = SpatioTemporalWindow.from_ranges(80, 110, 8, 11)
OTHER_WINDOW = SpatioTemporalWindow.from_ranges(120, 150, 8, 11)

needs_processes = pytest.mark.skipif(
    not dispatch.process_dispatch_available(),
    reason="shared-memory process dispatch unavailable",
)


def build_database(
    seed: int, n_objects: int = 40, n_chains: int = 3
) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        N_STATES, state_space=LineStateSpace(N_STATES)
    )
    for index in range(n_chains):
        database.register_chain(
            f"chain-{index}", make_line_chain(N_STATES, rng=rng)
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(N_STATES, 5, rng),
                time=int(rng.integers(0, 5)),
                chain_id=f"chain-{index % n_chains}",
            )
        )
    return database


def assert_parity(values, reference_values):
    assert set(values) == set(reference_values)
    for object_id, expected in reference_values.items():
        assert values[object_id] == pytest.approx(expected, abs=1e-12)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# broker unit behaviour (no event loop)
# ----------------------------------------------------------------------
class TestFusionKey:
    def test_same_query_same_options_share_a_key(self):
        query = PSTExistsQuery(WINDOW)
        options = PlanOptions()
        assert fusion_key(query, options, 0) == fusion_key(
            PSTExistsQuery(WINDOW), PlanOptions(), 0
        )

    def test_value_affecting_dimensions_split_the_key(self):
        query = PSTExistsQuery(WINDOW)
        base = fusion_key(query, PlanOptions(), 0)
        assert fusion_key(PSTForAllQuery(WINDOW), PlanOptions(), 0) != base
        assert fusion_key(
            PSTKTimesQuery(WINDOW, k=2), PlanOptions(), 0
        ) != base
        assert fusion_key(
            PSTExistsQuery(OTHER_WINDOW), PlanOptions(), 0
        ) != base
        assert fusion_key(
            query, PlanOptions(method="qb"), 0
        ) != base
        # a database mutation between submissions must split groups
        assert fusion_key(query, PlanOptions(), 1) != base

    def test_execution_knobs_do_not_split_the_key(self):
        query = PSTExistsQuery(WINDOW)
        base = fusion_key(query, PlanOptions(), 0)
        assert fusion_key(
            query, PlanOptions(dispatch="thread", max_workers=2), 0
        ) == base

    def test_seeded_monte_carlo_fuses_unseeded_never_does(self):
        query = PSTExistsQuery(WINDOW)
        seeded = PlanOptions(method="mc", seed=7)
        assert fusion_key(query, seeded, 0) == fusion_key(
            query, seeded, 0
        )
        unseeded = PlanOptions(method="mc")
        assert fusion_key(query, unseeded, 0) != fusion_key(
            query, unseeded, 0
        )


class TestRequestBroker:
    @staticmethod
    def _request(key, predicted, deadline_at=None):
        return PendingRequest(
            query=PSTExistsQuery(WINDOW),
            options=PlanOptions(),
            tenant="t",
            predicted_seconds=predicted,
            key=key,
            future=None,
            deadline_at=deadline_at,
        )

    def test_drain_fuses_by_key_and_orders_cheapest_first(self):
        broker = RequestBroker()
        broker.add(self._request(("b",), 3.0))
        broker.add(self._request(("a",), 1.0))
        broker.add(self._request(("a",), 1.0))
        groups = broker.drain()
        assert [g.key for g in groups] == [("a",), ("b",)]
        assert [len(g.requests) for g in groups] == [2, 1]
        assert len(broker) == 0

    def test_deadlines_run_before_undated_work(self):
        broker = RequestBroker()
        broker.add(self._request(("cheap",), 0.1))
        broker.add(self._request(("due",), 5.0, deadline_at=10.0))
        broker.add(self._request(("urgent",), 5.0, deadline_at=2.0))
        assert [g.key for g in broker.drain()] == [
            ("urgent",), ("due",), ("cheap",)
        ]

    def test_backlog_prices_the_queue_post_fusion(self):
        broker = RequestBroker()
        for _ in range(5):
            broker.add(self._request(("a",), 2.0))
        broker.add(self._request(("b",), 1.0))
        # five fusable requests cost one evaluation, not five
        assert broker.backlog_seconds() == pytest.approx(3.0)
        assert broker.has_pending(("a",))
        assert not broker.has_pending(("c",))


class TestTenantLedger:
    def test_settle_replaces_prediction_with_measurement(self):
        ledger = TenantLedger()
        ledger.set_budget("t", 10.0)
        ledger.charge("t", 4.0)
        assert ledger.account("t").remaining_seconds == pytest.approx(6.0)
        ledger.settle("t", 4.0, 0.5, fused=True)
        account = ledger.account("t")
        assert account.charged_seconds == pytest.approx(0.5)
        assert account.measured_seconds == pytest.approx(0.5)
        assert account.admitted == 1
        assert account.fused == 1

    def test_budget_validation(self):
        ledger = TenantLedger()
        with pytest.raises(ValidationError):
            ledger.set_budget("t", -1.0)
        with pytest.raises(ValidationError):
            ledger.account("")


# ----------------------------------------------------------------------
# service fusion parity
# ----------------------------------------------------------------------
class TestFusionParity:
    def test_concurrent_clients_match_serial_evaluation(self):
        database = build_database(seed=1)
        engine = QueryEngine(database)
        queries = {
            "exists": PSTExistsQuery(WINDOW),
            "forall": PSTForAllQuery(WINDOW),
            "ktimes": PSTKTimesQuery(WINDOW, k=2),
        }
        references = {
            name: engine.evaluate(query)
            for name, query in queries.items()
        }

        async def main():
            async with QueryService(
                engine, fusion_window_ms=2.0
            ) as service:
                results = await asyncio.gather(*(
                    service.submit(
                        queries[name], tenant=f"tenant-{i % 3}"
                    )
                    for i in range(8)
                    for name in queries
                ))
                return service, results

        service, results = run(main())
        for result in results:
            name = {
                PSTExistsQuery: "exists",
                PSTForAllQuery: "forall",
                PSTKTimesQuery: "ktimes",
            }[type(result.query)]
            assert_parity(result.values, references[name].values)
        # 24 requests, 3 fingerprints: fusion must have collapsed them
        assert service.evaluations < len(results)
        assert service.fused_calls >= 1

    def test_fusion_events_land_on_every_callers_plan(self):
        database = build_database(seed=2)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)

        async def main():
            async with QueryService(
                engine, fusion_window_ms=2.0
            ) as service:
                return await asyncio.gather(*(
                    service.submit(query, tenant=f"t{i}")
                    for i in range(4)
                ))

        results = run(main())
        for index, result in enumerate(results):
            events = result.plan.fusion
            assert any("fused 4 requests" in e for e in events)
            assert any(f"tenant 't{index}'" in e for e in events)
            assert "fused    :" in result.plan.describe()
        # per-caller plans are distinct views, not shared mutable state
        assert results[0].plan.fusion is not results[1].plan.fusion

    def test_object_ids_filter_the_slice_not_the_fusion(self):
        database = build_database(seed=3)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)
        reference = engine.evaluate(query)

        async def main():
            async with QueryService(
                engine, fusion_window_ms=2.0
            ) as service:
                full, subset = await asyncio.gather(
                    service.submit(query),
                    service.submit(
                        query, object_ids=["obj-0", "obj-1"]
                    ),
                )
                return service, full, subset

        service, full, subset = run(main())
        assert service.evaluations == 1  # the subset rode the full call
        assert_parity(full.values, reference.values)
        assert set(subset.values) == {"obj-0", "obj-1"}
        for object_id, value in subset.values.items():
            assert value == pytest.approx(
                reference.values[object_id], abs=1e-12
            )

    def test_unseeded_monte_carlo_requests_never_fuse(self):
        database = build_database(seed=4, n_objects=12)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)

        async def main():
            async with QueryService(
                engine, fusion_window_ms=2.0
            ) as service:
                await asyncio.gather(*(
                    service.submit(query, method="mc", n_samples=20)
                    for _ in range(3)
                ))
                return service

        service = run(main())
        assert service.evaluations == 3
        assert service.fused_calls == 0

    @needs_processes
    def test_fused_group_survives_worker_faults(self):
        database = build_database(seed=5, n_objects=60)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)
        reference = engine.evaluate(
            query, options=PlanOptions(dispatch="serial")
        )
        options = PlanOptions(
            method="ob",
            dispatch="process",
            max_workers=2,
            supervisor=SupervisorPolicy(
                max_retries=3, backoff_seconds=0.01
            ),
            faults=FaultInjector(
                FaultSpec(
                    site="worker:shard",
                    action="kill",
                    match={"row_lo": 0, "attempt": 0},
                )
            ),
        )

        async def main():
            async with QueryService(
                engine, fusion_window_ms=2.0
            ) as service:
                results = await asyncio.gather(*(
                    service.submit(query, options=options)
                    for _ in range(6)
                ))
                return service, results

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            service, results = run(main())
        assert service.evaluations == 1
        for result in results:
            assert_parity(result.values, reference.values)
            # the recovery is visible on every fused caller's plan
            assert any(
                "worker crash" in event
                for event in result.plan.degradations
            )


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_tenant_budget_rejection(self):
        database = build_database(seed=6, n_objects=12)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)

        async def main():
            async with QueryService(engine) as service:
                service.set_tenant_budget("broke", 0.0)
                with pytest.raises(AdmissionRejected) as info:
                    await service.submit(query, tenant="broke")
                assert info.value.reason == "tenant-budget"
                assert service.tenant("broke").rejected == 1
                # other tenants are unaffected
                result = await service.submit(query, tenant="rich")
                return result

        result = run(main())
        assert result.values

    def test_deadline_rejection_and_admission(self):
        database = build_database(seed=7, n_objects=12)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)

        async def main():
            async with QueryService(engine) as service:
                with pytest.raises(AdmissionRejected) as info:
                    await service.submit(query, deadline_seconds=0.0)
                assert info.value.reason == "deadline"
                # a generous deadline admits and answers
                return await service.submit(
                    query, deadline_seconds=60.0
                )

        assert run(main()).values

    def test_mid_queue_deadline_fails_fast_but_group_survives(self):
        """A deadline that expires while queued fails at drain time.

        The doomed request is rejected with ``reason="deadline"``
        without running, is refunded (settled at 0s), and the other
        member of the same fused group still executes and answers.
        """
        database = build_database(seed=9, n_objects=12)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)

        async def main():
            async with QueryService(
                engine, fusion_window_ms=200.0
            ) as service:
                doomed = asyncio.ensure_future(
                    service.submit(
                        query, tenant="late", deadline_seconds=0.02
                    )
                )
                alive = asyncio.ensure_future(
                    service.submit(query, tenant="punctual")
                )
                results = await asyncio.gather(
                    doomed, alive, return_exceptions=True
                )
                return results, service.tenant("late")

        (doomed_result, alive_result), late = run(main())
        assert isinstance(doomed_result, AdmissionRejected)
        assert doomed_result.reason == "deadline"
        assert "while queued" in str(doomed_result)
        assert alive_result.values
        assert late.rejected == 1
        # settled at zero: the failed request cost the tenant nothing
        assert late.charged_seconds == pytest.approx(0.0)

    def test_backlog_shedding_spares_fusable_requests(self):
        database = build_database(seed=8, n_objects=12)
        engine = QueryEngine(database)
        query_a = PSTExistsQuery(WINDOW)
        query_b = PSTExistsQuery(OTHER_WINDOW)
        predicted = engine.planner.estimate_seconds(
            query_a, PlanOptions()
        )
        assert predicted > 0.0

        async def main():
            # window long enough that submissions stay queued while
            # the later ones hit admission
            async with QueryService(
                engine,
                fusion_window_ms=250.0,
                backlog_budget_seconds=predicted * 1.5,
            ) as service:
                first = asyncio.ensure_future(service.submit(query_a))
                await asyncio.sleep(0.05)  # first is now queued
                # distinct fingerprint: would add a second evaluation,
                # busting the backlog budget
                with pytest.raises(AdmissionRejected) as info:
                    await service.submit(query_b)
                assert info.value.reason == "backlog"
                # same fingerprint fuses with the queued work: free
                rider, lead = await asyncio.gather(
                    service.submit(query_a), first
                )
                return service, rider, lead

        service, rider, lead = run(main())
        assert service.evaluations == 1
        assert_parity(rider.values, lead.values)

    def test_stopped_service_rejects_submissions(self):
        database = build_database(seed=9, n_objects=12)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)

        async def main():
            service = QueryService(engine)
            await service.start()
            await service.stop()
            with pytest.raises(AdmissionRejected) as info:
                await service.submit(query)
            assert info.value.reason == "stopped"

        run(main())

    def test_stop_without_drain_fails_queued_requests(self):
        database = build_database(seed=10, n_objects=12)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)

        async def main():
            service = QueryService(engine, fusion_window_ms=500.0)
            await service.start()
            pending = asyncio.ensure_future(service.submit(query))
            await asyncio.sleep(0.05)
            await service.stop(drain=False)
            with pytest.raises(AdmissionRejected) as info:
                await pending
            assert info.value.reason == "stopped"

        run(main())

    def test_stop_with_drain_answers_queued_requests(self):
        database = build_database(seed=11, n_objects=12)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)
        reference = engine.evaluate(query)

        async def main():
            service = QueryService(engine, fusion_window_ms=100.0)
            await service.start()
            pending = asyncio.ensure_future(service.submit(query))
            await asyncio.sleep(0.01)
            await service.stop(drain=True)
            return await pending

        assert_parity(run(main()).values, reference.values)

    def test_constructor_validation(self):
        engine = QueryEngine(build_database(seed=12, n_objects=4))
        with pytest.raises(ValidationError):
            QueryService(engine, fusion_window_ms=-1.0)
        with pytest.raises(ValidationError):
            QueryService(engine, backlog_budget_seconds=-5.0)
        with pytest.raises(ValidationError):
            QueryService(engine, max_concurrency=0)


# ----------------------------------------------------------------------
# tenant accounting through the service
# ----------------------------------------------------------------------
class TestAccounting:
    def test_fused_requests_settle_a_shared_measurement(self):
        database = build_database(seed=13, n_objects=12)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)

        async def main():
            async with QueryService(
                engine, fusion_window_ms=2.0
            ) as service:
                await asyncio.gather(*(
                    service.submit(query, tenant=f"t{i % 2}")
                    for i in range(8)
                ))
                return service

        service = run(main())
        for name in ("t0", "t1"):
            account = service.tenant(name)
            assert account.admitted == 4
            assert account.fused == 4
            assert account.measured_seconds > 0.0
            # each tenant paid a quarter of one evaluation, not four
            # evaluations' worth
            assert account.charged_seconds < 1.0

    def test_trivial_forall_is_priced_at_zero(self):
        database = build_database(seed=14, n_objects=8)
        engine = QueryEngine(database)
        # region covers the whole state space: the for-all answer is
        # trivially 1.0 per object and must be admissible at any budget
        query = PSTForAllQuery(
            SpatioTemporalWindow(
                frozenset(range(N_STATES)), frozenset({8, 9})
            )
        )
        assert engine.planner.estimate_seconds(
            query, PlanOptions()
        ) == 0.0

        async def main():
            async with QueryService(engine) as service:
                service.set_tenant_budget("broke", 0.0)
                return await service.submit(query, tenant="broke")

        result = run(main())
        assert result.plan is None
        assert all(v == 1.0 for v in result.values.values())


# ----------------------------------------------------------------------
# standing queries through the service
# ----------------------------------------------------------------------
class TestServiceStandingQueries:
    def test_tick_matches_batch_and_bills_the_tenant(self):
        database = build_database(seed=15, n_objects=20)
        engine = QueryEngine(database)

        async def main():
            async with QueryService(engine) as service:
                standing = service.watch(
                    PSTExistsQuery(WINDOW), tenant="monitor"
                )
                result = await standing.tick()
                return service, result

        service, result = run(main())
        reference = QueryEngine(
            build_database(seed=15, n_objects=20)
        ).evaluate(PSTExistsQuery(WINDOW))
        assert_parity(result.values, reference.values)
        assert service.tenant("monitor").measured_seconds > 0.0

    def test_quarantine_is_surfaced_on_the_owning_tenant(self):
        database = build_database(seed=16, n_objects=12)
        engine = QueryEngine(database)
        faults = FaultInjector(
            FaultSpec(site="streaming:tick", action="raise", times=2)
        )

        async def main():
            async with QueryService(engine) as service:
                standing = service.watch(
                    PSTExistsQuery(WINDOW),
                    tenant="monitor",
                    faults=faults,
                    quarantine_after=2,
                )
                for _ in range(2):
                    with pytest.raises(Exception):
                        await standing.tick()
                assert standing.quarantined
                assert service.tenant("monitor").quarantined == 1
                # reset revives it; the next tick matches batch
                await standing.reset()
                assert not standing.quarantined
                return await standing.tick()

        result = run(main())
        reference = QueryEngine(
            build_database(seed=16, n_objects=12)
        ).evaluate(PSTExistsQuery(WINDOW))
        assert_parity(result.values, reference.values)
