"""Cost-model calibration: measure, fit, persist, reload.

The load-bearing properties: the fit recovers strictly positive
seconds-per-unit coefficients from measured kernel times, the fitted
argmin matches the observed-fastest kernel on held-out grid points,
and the persisted JSON round-trips through
``CostModel.from_calibration`` (including the seconds-scale process
dispatch threshold).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.core.planner import (
    CALIBRATED_COEFFICIENTS,
    CostModel,
    PlanOptions,
)
from repro.exec.calibrate import (
    CalibrationConfig,
    GridPoint,
    calibrate,
    default_grid,
    fit,
    holdout_accuracy,
    measure_grid,
)

TINY_GRID = [
    GridPoint(n_states=200, degree=3, horizon=8, n_objects=1),
    GridPoint(n_states=200, degree=3, horizon=8, n_objects=48),
    GridPoint(n_states=500, degree=3, horizon=12, n_objects=8),
]

CONFIG = CalibrationConfig(smoke=True, repeats=1)


@pytest.fixture(scope="module")
def measurements():
    return measure_grid(CONFIG, TINY_GRID)


class TestMeasureGrid:
    def test_covers_every_kernel(self, measurements):
        kernels = {m.kernel for m in measurements}
        assert {"build", "qb", "ob", "mc"} <= kernels
        assert all(m.seconds > 0.0 for m in measurements)

    def test_every_point_measured(self, measurements):
        points = {m.point for m in measurements}
        assert points == set(TINY_GRID)


class TestFit:
    def test_coefficients_positive(self, measurements):
        model = fit(measurements, CONFIG)
        for name in CALIBRATED_COEFFICIENTS:
            assert getattr(model, name) > 0.0

    def test_fitted_costs_are_wall_time_scale(self, measurements):
        """Fitted cost estimates approximate the measured seconds."""
        model = fit(measurements, CONFIG)
        from repro.exec.calibrate import _features

        for measurement in measurements:
            if measurement.kernel != "qb":
                continue
            predicted = model.qb_cost(_features(measurement.point))
            assert predicted == pytest.approx(
                measurement.seconds, rel=5.0, abs=1e-3
            )

    def test_holdout_accuracy_range(self, measurements):
        model = fit(measurements, CONFIG)
        by_point = {}
        for m in measurements:
            by_point.setdefault(m.point, {})[m.kernel] = m.seconds
        accuracy = holdout_accuracy(model, TINY_GRID, by_point)
        assert 0.0 <= accuracy <= 1.0


class TestCalibratePersistence:
    def test_write_and_reload(self, tmp_path):
        path = str(tmp_path / "costmodel.json")
        result = calibrate(CONFIG, path=path)
        assert result.path == path
        assert result.n_points == len(default_grid(smoke=True))
        reloaded = CostModel.from_calibration(path)
        for name in CALIBRATED_COEFFICIENTS:
            assert getattr(reloaded, name) == pytest.approx(
                getattr(result.model, name)
            )
        assert reloaded.calibrated_from == path
        # the dispatch threshold switches to the wall-time bound
        assert reloaded.process_min_cost == pytest.approx(0.5)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(QueryError):
            CostModel.from_calibration(str(tmp_path / "absent.json"))

    def test_no_write_leaves_disk_alone(self, tmp_path):
        result = calibrate(CONFIG, path=str(tmp_path / "x.json"),
                           write=False)
        assert result.path is None
        assert not (tmp_path / "x.json").exists()

    def test_below_gate_fit_is_not_persisted(self, tmp_path):
        """A fit failing min_accuracy must never reach disk, where
        from_calibration would silently load it later."""
        path = str(tmp_path / "costmodel.json")
        result = calibrate(CONFIG, path=path, min_accuracy=1.1)
        assert result.path is None
        assert not (tmp_path / "costmodel.json").exists()

    def test_returned_model_matches_reloaded_model(self, tmp_path):
        """result.model and from_calibration plan identically --
        including the seconds-scale process dispatch threshold."""
        path = str(tmp_path / "costmodel.json")
        result = calibrate(CONFIG, path=path)
        reloaded = CostModel.from_calibration(path)
        assert result.model.process_min_cost == pytest.approx(
            reloaded.process_min_cost
        )

    def test_malformed_thresholds_raise_query_error(self, tmp_path):
        import json

        path = tmp_path / "costmodel.json"
        calibrate(CONFIG, path=str(path))
        document = json.loads(path.read_text())
        document["thresholds"]["process_min_cost"] = "fast"
        path.write_text(json.dumps(document))
        with pytest.raises(QueryError):
            CostModel.from_calibration(str(path))

    def test_overrides_win(self, tmp_path):
        path = str(tmp_path / "costmodel.json")
        calibrate(CONFIG, path=path)
        model = CostModel.from_calibration(
            path, max_workers_cap=3
        )
        assert model.max_workers_cap == 3


class TestCalibratedPlanning:
    def test_engine_accepts_calibrated_model(self, tmp_path):
        from repro import (
            PSTExistsQuery,
            QueryEngine,
            SpatioTemporalWindow,
            TrajectoryDatabase,
            UncertainObject,
        )
        from repro.workloads.synthetic import (
            make_line_chain,
            make_object_distribution,
        )

        path = str(tmp_path / "costmodel.json")
        calibrate(CONFIG, path=path)
        rng = np.random.default_rng(3)
        database = TrajectoryDatabase(200)
        database.register_chain(
            "default", make_line_chain(200, rng=rng)
        )
        for index in range(20):
            database.add(
                UncertainObject.with_distribution(
                    f"obj-{index}",
                    make_object_distribution(200, 5, rng),
                )
            )
        engine = QueryEngine(
            database, cost_model=CostModel.from_calibration(path)
        )
        query = PSTExistsQuery(
            SpatioTemporalWindow.from_ranges(50, 70, 6, 9)
        )
        calibrated = engine.evaluate(query)
        reference = QueryEngine(database).evaluate(
            query, options=PlanOptions(method="qb")
        )
        for object_id in database.object_ids:
            assert calibrated.values[object_id] == pytest.approx(
                reference.values[object_id], abs=1e-12
            )
        # the plan carries the calibrated (seconds-scale) estimates
        group = calibrated.plan.groups[0]
        assert 0 < min(group.costs.values()) < 10.0
