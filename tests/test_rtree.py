"""Tests for the STR-packed R-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rect, RTree
from repro.core.errors import ValidationError


class TestRect:
    def test_inverted_rejected(self):
        with pytest.raises(ValidationError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_point(self):
        point = Rect.point(2.0, 3.0)
        assert point.area == 0.0
        assert point.center == (2.0, 3.0)

    def test_intersects_overlap(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_touching_edges(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 2, 1)
        assert a.intersects(b)  # closed rectangles touch

    def test_intersects_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 2, 3, 3)
        assert not a.intersects(b)
        assert not b.intersects(a)

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(2, 2, 3, 3)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_union(self):
        union = Rect(0, 0, 1, 1).union(Rect(5, 5, 6, 6))
        assert union == Rect(0, 0, 6, 6)

    def test_union_all(self):
        rects = [Rect.point(0, 0), Rect.point(4, 2), Rect.point(-1, 3)]
        assert Rect.union_all(rects) == Rect(-1, 0, 4, 3)
        with pytest.raises(ValidationError):
            Rect.union_all([])

    def test_expand(self):
        assert Rect(0, 0, 1, 1).expand(2.0) == Rect(-2, -2, 3, 3)
        with pytest.raises(ValidationError):
            Rect(0, 0, 1, 1).expand(-1)

    def test_area(self):
        assert Rect(0, 0, 2, 3).area == 6.0


def brute_force(entries, query):
    return [item for rect, item in entries if rect.intersects(query)]


class TestRTree:
    def test_empty_tree(self):
        tree = RTree([])
        assert len(tree) == 0
        assert tree.search(Rect(0, 0, 1, 1)) == []
        assert tree.root_mbr() is None
        assert tree.height == 0

    def test_single_entry(self):
        tree = RTree([(Rect.point(1, 1), "a")])
        assert tree.search(Rect(0, 0, 2, 2)) == ["a"]
        assert tree.search(Rect(5, 5, 6, 6)) == []
        assert tree.height == 1

    def test_capacity_validation(self):
        with pytest.raises(ValidationError):
            RTree([], capacity=1)

    def test_from_points(self):
        tree = RTree.from_points([(0.0, 0.0, "a"), (5.0, 5.0, "b")])
        assert set(tree.search(Rect(-1, -1, 1, 1))) == {"a"}

    def test_matches_brute_force_grid(self):
        entries = [
            (Rect.point(float(x), float(y)), (x, y))
            for x in range(20)
            for y in range(20)
        ]
        tree = RTree(entries, capacity=8)
        for query in [
            Rect(0, 0, 5, 5),
            Rect(10.5, 3.2, 15.1, 9.7),
            Rect(-5, -5, -1, -1),
            Rect(0, 0, 19, 19),
        ]:
            assert sorted(tree.search(query)) == sorted(
                brute_force(entries, query)
            )

    def test_matches_brute_force_random_rects(self):
        rng = np.random.default_rng(0)
        entries = []
        for index in range(300):
            x, y = rng.uniform(0, 100, size=2)
            w, h = rng.uniform(0, 5, size=2)
            entries.append((Rect(x, y, x + w, y + h), index))
        tree = RTree(entries, capacity=10)
        for _ in range(25):
            qx, qy = rng.uniform(0, 100, size=2)
            qw, qh = rng.uniform(0, 20, size=2)
            query = Rect(qx, qy, qx + qw, qy + qh)
            assert sorted(tree.search(query)) == sorted(
                brute_force(entries, query)
            )

    def test_count(self):
        entries = [(Rect.point(float(i), 0.0), i) for i in range(10)]
        tree = RTree(entries)
        assert tree.count(Rect(2, -1, 5, 1)) == 4

    def test_root_mbr_covers_everything(self):
        rng = np.random.default_rng(1)
        entries = [
            (Rect.point(*rng.uniform(0, 50, size=2)), i)
            for i in range(100)
        ]
        tree = RTree(entries, capacity=4)
        mbr = tree.root_mbr()
        for rect, _ in entries:
            assert mbr.contains(rect)

    def test_height_grows_logarithmically(self):
        entries = [
            (Rect.point(float(i % 40), float(i // 40)), i)
            for i in range(1600)
        ]
        tree = RTree(entries, capacity=16)
        # 1600 entries / 16 per leaf = 100 leaves; height 3 expected
        assert tree.height == 3

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False),
                st.floats(0, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        ),
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 40, allow_nan=False),
            st.floats(0, 40, allow_nan=False),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_search_equals_brute_force(self, points, query_spec):
        entries = [
            (Rect.point(x, y), index)
            for index, (x, y) in enumerate(points)
        ]
        qx, qy, qw, qh = query_spec
        query = Rect(qx, qy, qx + qw, qy + qh)
        tree = RTree(entries, capacity=5)
        assert sorted(tree.search(query)) == sorted(
            brute_force(entries, query)
        )
