"""Tests for reachability pruning -- safety is the key property."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    GeometricPrefilter,
    LineStateSpace,
    QueryEngine,
    PSTExistsQuery,
    ReachabilityPruner,
    SpatioTemporalWindow,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import ValidationError
from repro.workloads.synthetic import (
    SyntheticConfig,
    make_synthetic_database,
)

from conftest import random_chain


def build_database(n_states=40, n_objects=12, seed=0):
    rng = np.random.default_rng(seed)
    chain = random_chain(n_states, rng, density=0.08)
    database = TrajectoryDatabase.with_chain(
        chain, state_space=LineStateSpace(n_states)
    )
    for index in range(n_objects):
        database.add(
            UncertainObject.at_state(
                f"o{index}", n_states, int(rng.integers(0, n_states))
            )
        )
    return database


class TestReachabilityPruner:
    def test_never_discards_positive_probability_objects(self):
        """Safety: every object with non-zero result must survive."""
        for seed in range(5):
            database = build_database(seed=seed)
            window = SpatioTemporalWindow(
                frozenset({0, 1, 2}), frozenset({2, 3})
            )
            pruner = ReachabilityPruner(database)
            surviving = {
                obj.object_id for obj in pruner.candidates(window)
            }
            engine = QueryEngine(database)
            result = engine.evaluate(PSTExistsQuery(window), method="qb")
            for object_id, probability in result.values.items():
                if probability > 1e-12:
                    assert object_id in surviving

    def test_pruned_objects_have_zero_probability(self):
        database = build_database(seed=3)
        window = SpatioTemporalWindow(
            frozenset({5}), frozenset({1, 2})
        )
        pruner = ReachabilityPruner(database)
        surviving = {obj.object_id for obj in pruner.candidates(window)}
        engine = QueryEngine(database)
        result = engine.evaluate(PSTExistsQuery(window), method="qb")
        for object_id, probability in result.values.items():
            if object_id not in surviving:
                assert probability == pytest.approx(0.0, abs=1e-12)

    def test_pruned_fraction(self):
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=50, n_states=2_000, max_step=10, seed=1
            )
        )
        # a tight window near state 0 that few objects can reach
        window = SpatioTemporalWindow(
            frozenset(range(0, 10)), frozenset({3, 4})
        )
        pruner = ReachabilityPruner(database)
        assert pruner.pruned_fraction(window) > 0.5

    def test_query_in_the_past_prunes_everything(self):
        database = build_database()
        pruner = ReachabilityPruner(database)
        # object observed at t=0; window entirely "before" is impossible
        # here: simulate by asking with horizon < 0 via obj at later time
        database.add(
            UncertainObject.at_state("late", database.n_states, 0, time=9)
        )
        window = SpatioTemporalWindow(frozenset({0}), frozenset({2}))
        late = database.get("late")
        assert not pruner.can_satisfy(late, window)

    def test_empty_database(self):
        chain_db = TrajectoryDatabase.with_chain(
            random_chain(5, np.random.default_rng(0))
        )
        pruner = ReachabilityPruner(chain_db)
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        assert pruner.pruned_fraction(window) == 0.0


class TestGeometricPrefilter:
    def test_superset_of_exact_filter(self):
        """The geometric filter must keep everything BFS keeps."""
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=60, n_states=1_000, max_step=10, seed=2
            )
        )
        window = SpatioTemporalWindow(
            frozenset(range(100, 121)), frozenset({5, 6, 7})
        )
        geometric = GeometricPrefilter(
            database, max_displacement=5.0  # max_step / 2
        )
        exact = ReachabilityPruner(database)
        geometric_ids = set(geometric.candidate_ids(window))
        exact_ids = {
            obj.object_id for obj in exact.candidates(window)
        }
        assert exact_ids <= geometric_ids

    def test_distant_objects_filtered(self):
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=60, n_states=5_000, max_step=10, seed=3
            )
        )
        window = SpatioTemporalWindow(
            frozenset(range(0, 20)), frozenset({2, 3})
        )
        geometric = GeometricPrefilter(database, max_displacement=5.0)
        kept = geometric.candidates(window)
        # objects are uniform over 5000 states; the reachable stripe is
        # ~20 + 2*5*3 wide, so most objects must be gone
        assert len(kept) < len(database) / 2

    def test_requires_state_space(self):
        rng = np.random.default_rng(0)
        database = TrajectoryDatabase.with_chain(random_chain(5, rng))
        with pytest.raises(ValidationError):
            GeometricPrefilter(database, max_displacement=1.0)

    def test_negative_displacement_rejected(self):
        database = build_database()
        with pytest.raises(ValidationError):
            GeometricPrefilter(database, max_displacement=-1.0)

    def test_past_window_returns_nothing(self):
        database = build_database()
        geometric = GeometricPrefilter(database, max_displacement=1.0)
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        assert geometric.candidate_ids(window, start_time=5) == []
