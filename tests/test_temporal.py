"""Tests for first-passage analyses and expected visit counts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarkovChain,
    PossibleWorldEnumerator,
    SpatioTemporalWindow,
    StateDistribution,
    expected_entry_time,
    expected_visit_count,
    first_passage_distribution,
    ktimes_distribution,
    ob_exists_probability,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain, random_distribution, random_window


def brute_force_first_passage(chain, initial, region, horizon):
    """First-entry pmf + never-mass by enumerating possible worlds."""
    pmf = np.zeros(horizon + 1)
    never = 0.0
    enumerator = PossibleWorldEnumerator(chain, initial, horizon)
    for trajectory, probability in enumerator.worlds():
        entry = next(
            (
                offset
                for offset, state in enumerate(trajectory.states)
                if state in region
            ),
            None,
        )
        if entry is None:
            never += probability
        else:
            pmf[entry] += probability
    return pmf, never


class TestFirstPassage:
    def test_matches_enumeration(self):
        rng = np.random.default_rng(0)
        for _ in range(15):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng, sparse=True)
            region = {int(rng.integers(0, n))}
            horizon = int(rng.integers(1, 6))
            result = first_passage_distribution(
                chain, initial, region, horizon
            )
            expected_pmf, expected_never = brute_force_first_passage(
                chain, initial, region, horizon
            )
            assert np.allclose(result.pmf, expected_pmf, atol=1e-10)
            assert result.never_probability == pytest.approx(
                expected_never, abs=1e-10
            )

    def test_mass_conservation(self):
        rng = np.random.default_rng(1)
        chain = random_chain(5, rng)
        initial = random_distribution(5, rng)
        result = first_passage_distribution(
            chain, initial, {0, 2}, horizon=6
        )
        assert result.pmf.sum() + result.never_probability == (
            pytest.approx(1.0)
        )

    def test_start_inside_region(self):
        rng = np.random.default_rng(2)
        chain = random_chain(3, rng)
        initial = StateDistribution.point(3, 1)
        result = first_passage_distribution(chain, initial, {1}, 4)
        assert result.pmf[0] == pytest.approx(1.0)
        assert result.never_probability == pytest.approx(0.0)

    def test_cdf_equals_exists_probability(self):
        """P(entry <= t) must equal the exists-query over [0..t]."""
        rng = np.random.default_rng(3)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        region = {2}
        result = first_passage_distribution(chain, initial, region, 5)
        for t in range(6):
            window = SpatioTemporalWindow(
                frozenset(region), frozenset(range(0, t + 1))
            )
            assert result.entry_by(t) == pytest.approx(
                ob_exists_probability(chain, initial, window),
                abs=1e-10,
            )

    def test_entry_by_before_start(self):
        rng = np.random.default_rng(4)
        chain = random_chain(3, rng)
        result = first_passage_distribution(
            chain, StateDistribution.point(3, 0), {1}, 4, start_time=2
        )
        assert result.entry_by(1) == 0.0
        assert result.horizon == 4  # horizon is an absolute timestamp
        assert len(result.pmf) == 3  # offsets 0..2 (t = 2, 3, 4)

    def test_conditional_mean_and_quantile(self):
        # deterministic cycle 0 -> 1 -> 2 -> 0: enters {2} exactly at 2
        chain = MarkovChain(
            [[0, 1, 0], [0, 0, 1], [1, 0, 0]]
        )
        initial = StateDistribution.point(3, 0)
        result = first_passage_distribution(chain, initial, {2}, 5)
        assert result.conditional_mean() == pytest.approx(2.0)
        assert result.quantile(0.5) == 2
        assert result.quantile(1.0) == 2

    def test_unreachable_region(self):
        chain = MarkovChain([[1.0, 0.0], [0.0, 1.0]])
        initial = StateDistribution.point(2, 0)
        result = first_passage_distribution(chain, initial, {1}, 10)
        assert result.never_probability == pytest.approx(1.0)
        assert result.conditional_mean() is None
        assert result.quantile(0.5) is None

    def test_expected_entry_time_helper(self):
        chain = MarkovChain(
            [[0, 1, 0], [0, 0, 1], [1, 0, 0]]
        )
        initial = StateDistribution.point(3, 0)
        assert expected_entry_time(
            chain, initial, {1}, 5
        ) == pytest.approx(1.0)

    def test_validation(self, paper_chain, paper_start):
        with pytest.raises(QueryError):
            first_passage_distribution(
                paper_chain, paper_start, set(), 3
            )
        with pytest.raises(QueryError):
            first_passage_distribution(
                paper_chain, paper_start, {9}, 3
            )
        with pytest.raises(QueryError):
            first_passage_distribution(
                paper_chain, paper_start, {0}, 1, start_time=3
            )
        with pytest.raises(ValidationError):
            first_passage_distribution(
                paper_chain, StateDistribution.point(4, 0), {0}, 3
            )
        result = first_passage_distribution(
            paper_chain, paper_start, {0}, 3
        )
        with pytest.raises(ValidationError):
            result.quantile(0.0)


class TestExpectedVisitCount:
    def test_equals_mean_of_ktimes(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            n = int(rng.integers(2, 6))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=5)
            distribution = ktimes_distribution(chain, initial, window)
            mean = float(
                np.arange(len(distribution)) @ distribution
            )
            assert expected_visit_count(
                chain, initial, window
            ) == pytest.approx(mean, abs=1e-10)

    def test_paper_example(self, paper_chain, paper_window, paper_start):
        # mean of (0.136, 0.672, 0.192) = 0.672 + 2 * 0.192 = 1.056
        assert expected_visit_count(
            paper_chain, paper_start, paper_window
        ) == pytest.approx(1.056)
