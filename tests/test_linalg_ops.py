"""Tests for the linear-algebra backend dispatch layer."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.errors import BackendError
from repro.linalg.ops import (
    available_backends,
    get_backend,
    matmat,
    matvec,
    vecmat,
)
from repro.linalg.sparse import CSRMatrix

DENSE = [
    [0.0, 0.0, 1.0],
    [0.6, 0.0, 0.4],
    [0.0, 0.8, 0.2],
]
TRIPLES = [
    (i, j, value)
    for i, row in enumerate(DENSE)
    for j, value in enumerate(row)
    if value
]


class TestRegistry:
    def test_both_backends_available(self):
        assert available_backends() == ["native", "pure", "scipy"]

    def test_default_is_scipy(self):
        assert get_backend().name == "scipy"

    def test_unknown_backend(self):
        with pytest.raises(BackendError):
            get_backend("matlab")


class TestBackendEquivalence:
    """Both backends must produce identical numerics."""

    @pytest.fixture(params=["pure", "scipy"])
    def backend(self, request):
        return get_backend(request.param)

    def test_from_coo_shape(self, backend):
        matrix = backend.from_coo(3, 3, TRIPLES)
        assert matrix.shape == (3, 3)

    def test_from_dense(self, backend):
        matrix = backend.from_dense(DENSE)
        x = [1.0, 2.0, 3.0]
        assert np.allclose(
            np.asarray(backend.vecmat(x, matrix)),
            np.array(x) @ np.array(DENSE),
        )

    def test_identity(self, backend):
        eye = backend.identity(3)
        x = [1.0, 2.0, 3.0]
        assert np.allclose(np.asarray(backend.matvec(eye, x)), x)

    def test_transpose(self, backend):
        matrix = backend.from_coo(3, 3, TRIPLES)
        transposed = backend.transpose(matrix)
        x = [1.0, 2.0, 3.0]
        assert np.allclose(
            np.asarray(backend.matvec(transposed, x)),
            np.array(x) @ np.array(DENSE),
        )

    def test_zeros_vector(self, backend):
        zeros = backend.zeros_vector(4)
        assert np.allclose(np.asarray(zeros), np.zeros(4))

    def test_vecmat_matches_matvec_transpose(self, backend):
        matrix = backend.from_coo(3, 3, TRIPLES)
        x = [0.5, 0.25, 0.25]
        via_vecmat = np.asarray(backend.vecmat(x, matrix))
        via_matvec = np.asarray(
            backend.matvec(backend.transpose(matrix), x)
        )
        assert np.allclose(via_vecmat, via_matvec)


class TestModuleLevelDispatch:
    def test_vecmat_pure(self):
        matrix = CSRMatrix.from_dense(DENSE)
        assert np.allclose(
            vecmat([1.0, 0.0, 0.0], matrix), DENSE[0]
        )

    def test_vecmat_scipy(self):
        matrix = sp.csr_matrix(np.array(DENSE))
        assert np.allclose(
            np.asarray(vecmat([1.0, 0.0, 0.0], matrix)), DENSE[0]
        )

    def test_matvec_pure(self):
        matrix = CSRMatrix.from_dense(DENSE)
        expected = np.array(DENSE) @ np.array([1.0, 2.0, 3.0])
        assert np.allclose(matvec(matrix, [1.0, 2.0, 3.0]), expected)

    def test_matvec_scipy(self):
        matrix = sp.csr_matrix(np.array(DENSE))
        expected = np.array(DENSE) @ np.array([1.0, 2.0, 3.0])
        assert np.allclose(
            np.asarray(matvec(matrix, [1.0, 2.0, 3.0])), expected
        )

    def test_cross_backend_results_identical(self):
        pure = CSRMatrix.from_dense(DENSE)
        scipy_matrix = sp.csr_matrix(np.array(DENSE))
        x = [0.1, 0.7, 0.2]
        assert np.allclose(
            vecmat(x, pure), np.asarray(vecmat(x, scipy_matrix))
        )


class TestMatmat:
    """The batched row-stack product, both per-backend and dispatched."""

    @pytest.fixture(params=["pure", "scipy"])
    def backend(self, request):
        return get_backend(request.param)

    def test_backend_matmat_matches_rowwise_vecmat(self, backend):
        matrix = backend.from_coo(3, 3, TRIPLES)
        stack = [[0.2, 0.3, 0.5], [1.0, 0.0, 0.0], [0.0, 0.5, 0.5]]
        product = np.asarray(backend.matmat(stack, matrix))
        for row, expected in zip(stack, product):
            assert np.allclose(
                np.asarray(backend.vecmat(row, matrix)), expected
            )

    def test_module_dispatch_matches_backends(self):
        stack = np.array([[0.2, 0.3, 0.5], [0.0, 1.0, 0.0]])
        scipy_matrix = get_backend("scipy").from_coo(3, 3, TRIPLES)
        pure_matrix = get_backend("pure").from_coo(3, 3, TRIPLES)
        assert np.allclose(
            matmat(stack, scipy_matrix),
            np.asarray(matmat(stack.tolist(), pure_matrix)),
        )

    def test_build_coo_matches_from_coo(self, backend):
        rows = np.array([t[0] for t in TRIPLES])
        cols = np.array([t[1] for t in TRIPLES])
        vals = np.array([t[2] for t in TRIPLES])
        built = backend.build_coo(3, 3, rows, cols, vals)
        reference = backend.from_coo(3, 3, TRIPLES)
        x = [0.1, 0.2, 0.7]
        assert np.allclose(
            np.asarray(backend.vecmat(x, built)),
            np.asarray(backend.vecmat(x, reference)),
        )

    def test_scipy_has_array_fast_path(self):
        assert get_backend("scipy").from_coo_arrays is not None
        assert get_backend("pure").from_coo_arrays is None
