"""Tests for forward-backward smoothing and Viterbi decoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarkovChain,
    Observation,
    ObservationSet,
    PossibleWorldEnumerator,
    map_trajectory,
    posterior_marginals,
)
from repro.core.errors import InfeasibleEvidenceError, ValidationError

from conftest import random_chain, random_distribution


def brute_force_marginals(chain, observations, horizon):
    """Posterior marginals by enumerating all re-weighted worlds."""
    first = observations.first
    enumerator = PossibleWorldEnumerator(
        chain, first.distribution, horizon
    )
    later = [
        (obs.time - first.time, obs.distribution)
        for obs in observations.after(first.time)
    ]
    conditioned = enumerator.conditioned_on_observations(later)
    marginals = np.zeros((horizon + 1, chain.n_states))
    for trajectory, weight in conditioned.worlds():
        for offset, state in enumerate(trajectory.states):
            marginals[offset, state] += weight
    return marginals


class TestPosteriorMarginals:
    def test_single_observation_is_forward_propagation(self, paper_chain):
        observations = ObservationSet.single(
            Observation.precise(0, 3, 1)
        )
        marginals = posterior_marginals(
            paper_chain, observations, horizon=2
        )
        assert marginals[0].probability(1) == 1.0
        assert np.allclose(marginals[2].vector, [0.0, 0.32, 0.68])

    def test_section6_example(self, paper_chain_section6):
        """Given s1@t0 and s2@t3, the paper concludes the object passed
        s3 at t=1 and then s3 or s2... the only consistent path is
        s1 -> s3 -> s3 -> s2?  Enumerate to be sure and compare."""
        observations = ObservationSet.of(
            Observation.precise(0, 3, 0),
            Observation.precise(3, 3, 1),
        )
        marginals = posterior_marginals(
            paper_chain_section6, observations
        )
        expected = brute_force_marginals(
            paper_chain_section6, observations, 3
        )
        for offset, marginal in enumerate(marginals):
            assert np.allclose(marginal.vector, expected[offset],
                               atol=1e-12)
        # endpoint posteriors equal the (certain) observations
        assert marginals[0].probability(0) == pytest.approx(1.0)
        assert marginals[3].probability(1) == pytest.approx(1.0)

    def test_random_instances_match_enumeration(self):
        rng = np.random.default_rng(10)
        checked = 0
        while checked < 12:
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            first = random_distribution(n, rng, sparse=True)
            horizon = int(rng.integers(2, 5))
            obs_time = int(rng.integers(1, horizon + 1))
            obs = random_distribution(n, rng)
            observations = ObservationSet.of(
                Observation(0, first), Observation(obs_time, obs)
            )
            try:
                marginals = posterior_marginals(
                    chain, observations, horizon=horizon
                )
            except InfeasibleEvidenceError:
                continue
            expected = brute_force_marginals(
                chain, observations, horizon
            )
            for offset, marginal in enumerate(marginals):
                assert np.allclose(
                    marginal.vector, expected[offset], atol=1e-9
                )
            checked += 1

    def test_marginals_are_distributions(self):
        rng = np.random.default_rng(11)
        chain = random_chain(6, rng)
        observations = ObservationSet.of(
            Observation(0, random_distribution(6, rng)),
            Observation(4, random_distribution(6, rng)),
        )
        for marginal in posterior_marginals(chain, observations):
            assert marginal.vector.sum() == pytest.approx(1.0)

    def test_infeasible_evidence(self, paper_chain):
        observations = ObservationSet.of(
            Observation.precise(0, 3, 0),
            Observation.precise(1, 3, 0),  # impossible: s1 -> s3 only
        )
        with pytest.raises(InfeasibleEvidenceError):
            posterior_marginals(paper_chain, observations)

    def test_observation_beyond_horizon(self, paper_chain):
        observations = ObservationSet.of(
            Observation.precise(0, 3, 0),
            Observation.precise(5, 3, 1),
        )
        with pytest.raises(ValidationError):
            posterior_marginals(paper_chain, observations, horizon=2)

    def test_state_count_mismatch(self, paper_chain):
        observations = ObservationSet.single(
            Observation.precise(0, 4, 0)
        )
        with pytest.raises(ValidationError):
            posterior_marginals(paper_chain, observations, horizon=2)


class TestMapTrajectory:
    def test_deterministic_chain(self):
        chain = MarkovChain(
            [
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [1.0, 0.0, 0.0],
            ]
        )
        observations = ObservationSet.single(
            Observation.precise(0, 3, 0)
        )
        trajectory, probability = map_trajectory(
            chain, observations, horizon=4
        )
        assert trajectory.states == (0, 1, 2, 0, 1)
        assert probability == pytest.approx(1.0)

    def test_matches_enumeration_argmax(self):
        rng = np.random.default_rng(12)
        checked = 0
        while checked < 12:
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng, density=0.7)
            first = random_distribution(n, rng, sparse=True)
            horizon = int(rng.integers(2, 5))
            obs_time = int(rng.integers(1, horizon + 1))
            obs = random_distribution(n, rng, sparse=True)
            observations = ObservationSet.of(
                Observation(0, first), Observation(obs_time, obs)
            )
            enumerator = PossibleWorldEnumerator(
                chain, first, horizon
            )
            try:
                worlds = list(
                    enumerator.conditioned_on_observations(
                        [(obs_time, obs)]
                    ).worlds()
                )
            except ValidationError:
                continue
            best_world, best_weight = max(
                worlds, key=lambda pair: pair[1]
            )
            trajectory, probability = map_trajectory(
                chain, observations, horizon=horizon
            )
            assert probability == pytest.approx(best_weight, abs=1e-9)
            # several worlds may tie; compare probabilities, not paths
            checked += 1

    def test_map_consistent_with_observations(self, paper_chain_section6):
        observations = ObservationSet.of(
            Observation.precise(0, 3, 0),
            Observation.precise(3, 3, 1),
        )
        trajectory, probability = map_trajectory(
            paper_chain_section6, observations
        )
        assert trajectory[0] == 0
        assert trajectory[3] == 1
        assert probability > 0

    def test_infeasible(self, paper_chain):
        observations = ObservationSet.of(
            Observation.precise(0, 3, 0),
            Observation.precise(1, 3, 1),
        )
        with pytest.raises(InfeasibleEvidenceError):
            map_trajectory(paper_chain, observations)

    def test_path_probability_under_model(self):
        """The returned probability equals the path's posterior weight."""
        rng = np.random.default_rng(13)
        chain = random_chain(4, rng, density=0.8)
        first = random_distribution(4, rng)
        observations = ObservationSet.single(Observation(0, first))
        trajectory, probability = map_trajectory(
            chain, observations, horizon=3
        )
        direct = trajectory.probability_under(chain, first)
        assert probability == pytest.approx(direct, abs=1e-12)
