"""Tests for PST-k-times processing (Section VII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PossibleWorldEnumerator,
    SpatioTemporalWindow,
    StateDistribution,
    ktimes_distribution,
    ktimes_distribution_blocked,
    ktimes_probability,
    ob_exists_probability,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain, random_distribution, random_window


class TestPaperExample:
    def test_ct_algorithm(self, paper_chain, paper_window, paper_start):
        assert ktimes_distribution(
            paper_chain, paper_start, paper_window
        ) == pytest.approx([0.136, 0.672, 0.192])

    def test_blocked_matrices(self, paper_chain, paper_window,
                              paper_start):
        assert ktimes_distribution_blocked(
            paper_chain, paper_start, paper_window
        ) == pytest.approx([0.136, 0.672, 0.192])

    def test_single_probability(self, paper_chain, paper_window,
                                paper_start):
        assert ktimes_probability(
            paper_chain, paper_start, paper_window, k=1
        ) == pytest.approx(0.672)

    def test_pure_backend_blocked(self, paper_chain, paper_window,
                                  paper_start):
        assert ktimes_distribution_blocked(
            paper_chain, paper_start, paper_window, backend="pure"
        ) == pytest.approx([0.136, 0.672, 0.192])


class TestConsistencyIdentities:
    def test_distribution_sums_to_one(self):
        rng = np.random.default_rng(20)
        for _ in range(15):
            n = int(rng.integers(2, 6))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=5)
            distribution = ktimes_distribution(chain, initial, window)
            assert distribution.sum() == pytest.approx(1.0)
            assert (distribution >= -1e-12).all()

    def test_exists_equals_one_minus_p0(self):
        rng = np.random.default_rng(21)
        for _ in range(15):
            n = int(rng.integers(2, 6))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=5)
            distribution = ktimes_distribution(chain, initial, window)
            exists = ob_exists_probability(chain, initial, window)
            assert exists == pytest.approx(
                1.0 - distribution[0], abs=1e-10
            )

    def test_forall_equals_p_full_count(self):
        rng = np.random.default_rng(22)
        for _ in range(10):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=4)
            distribution = ktimes_distribution(chain, initial, window)
            expected = PossibleWorldEnumerator(
                chain, initial, window.t_end
            ).forall_probability(window)
            assert distribution[window.duration] == pytest.approx(
                expected, abs=1e-10
            )


class TestAgainstEnumeration:
    def test_random_instances(self):
        rng = np.random.default_rng(23)
        for _ in range(20):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng, sparse=True)
            window = random_window(n, rng, max_time=5)
            expected = PossibleWorldEnumerator(
                chain, initial, window.t_end
            ).ktimes_distribution(window)
            assert ktimes_distribution(
                chain, initial, window
            ) == pytest.approx(expected, abs=1e-10)

    def test_blocked_matches_ct(self):
        rng = np.random.default_rng(24)
        for _ in range(15):
            n = int(rng.integers(2, 6))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=5)
            assert np.allclose(
                ktimes_distribution(chain, initial, window),
                ktimes_distribution_blocked(chain, initial, window),
                atol=1e-12,
            )

    def test_start_time_in_window_footnote3(self):
        """Footnote 3: t=0 in T shifts initial in-region mass to k=1."""
        rng = np.random.default_rng(25)
        for _ in range(10):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = SpatioTemporalWindow(
                frozenset({0}), frozenset({0, 1, 2})
            )
            expected = PossibleWorldEnumerator(
                chain, initial, window.t_end
            ).ktimes_distribution(window)
            assert ktimes_distribution(
                chain, initial, window
            ) == pytest.approx(expected, abs=1e-10)
            assert ktimes_distribution_blocked(
                chain, initial, window
            ) == pytest.approx(expected, abs=1e-10)


class TestValidation:
    def test_k_out_of_range(self, paper_chain, paper_window,
                            paper_start):
        with pytest.raises(QueryError):
            ktimes_probability(
                paper_chain, paper_start, paper_window, k=5
            )

    def test_dimension_mismatch(self, paper_chain, paper_window):
        with pytest.raises(ValidationError):
            ktimes_distribution(
                paper_chain, StateDistribution.point(4, 0), paper_window
            )

    def test_query_before_observation(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        with pytest.raises(QueryError):
            ktimes_distribution(
                paper_chain, paper_start, window, start_time=3
            )

    def test_region_out_of_range(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(frozenset({8}), frozenset({1}))
        with pytest.raises(QueryError):
            ktimes_distribution(paper_chain, paper_start, window)
