"""Cross-module invariants not covered by the per-module suites.

Each test pins one mathematical identity that ties two parts of the
library together (Chapman-Kolmogorov, time-shift invariance, structural
independence of the R-tree from its fan-out, transpose algebra of the
pure CSR kernel, ...).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    PSTExistsQuery,
    QueryBasedEvaluator,
    QueryEngine,
    Rect,
    RTree,
    SpatioTemporalWindow,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
    ktimes_distribution,
    ob_exists_probability,
)
from repro.linalg.sparse import CSRMatrix

from conftest import random_chain, random_distribution, random_window


class TestChapmanKolmogorov:
    @given(st.integers(0, 4), st.integers(0, 4), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_propagate_composes(self, a, b, seed):
        rng = np.random.default_rng(seed)
        chain = random_chain(5, rng)
        dist = random_distribution(5, rng)
        combined = chain.propagate(dist, a + b)
        stepwise = chain.propagate(chain.propagate(dist, a), b)
        assert combined.allclose(stepwise, tol=1e-9)

    @given(st.integers(1, 5), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_matrix_power_matches_marginals(self, steps, seed):
        rng = np.random.default_rng(seed)
        chain = random_chain(4, rng)
        dist = random_distribution(4, rng)
        via_power = dist.vector @ chain.power(steps).toarray()
        via_steps = chain.propagate(dist, steps).vector
        assert np.allclose(via_power, via_steps, atol=1e-12)

    @given(st.integers(1, 6), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_power_stays_stochastic(self, steps, seed):
        rng = np.random.default_rng(seed)
        chain = random_chain(4, rng)
        rows = np.asarray(chain.power(steps).sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0, atol=1e-10)


class TestTimeShiftInvariance:
    """Homogeneous chains: only elapsed time matters, not absolute time."""

    def test_ob_shift(self):
        rng = np.random.default_rng(0)
        chain = random_chain(5, rng)
        initial = random_distribution(5, rng)
        window = random_window(5, rng, max_time=4)
        baseline = ob_exists_probability(chain, initial, window)
        for shift in (1, 3, 10):
            shifted = SpatioTemporalWindow(
                window.region,
                frozenset(t + shift for t in window.times),
            )
            assert ob_exists_probability(
                chain, initial, shifted, start_time=shift
            ) == pytest.approx(baseline, abs=1e-12)

    def test_qb_shift(self):
        rng = np.random.default_rng(1)
        chain = random_chain(4, rng)
        window = random_window(4, rng, max_time=4)
        base = QueryBasedEvaluator(chain, window).backward_vector
        shifted_window = SpatioTemporalWindow(
            window.region, frozenset(t + 5 for t in window.times)
        )
        shifted = QueryBasedEvaluator(
            chain, shifted_window, start_time=5
        ).backward_vector
        assert np.allclose(base, shifted, atol=1e-12)

    def test_ktimes_shift(self):
        rng = np.random.default_rng(2)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = random_window(4, rng, max_time=4)
        baseline = ktimes_distribution(chain, initial, window)
        shifted_window = SpatioTemporalWindow(
            window.region, frozenset(t + 7 for t in window.times)
        )
        assert np.allclose(
            ktimes_distribution(
                chain, initial, shifted_window, start_time=7
            ),
            baseline,
            atol=1e-12,
        )


class TestDegenerateWindows:
    def test_whole_space_region_every_time_is_certain(self):
        rng = np.random.default_rng(3)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = SpatioTemporalWindow(
            frozenset(range(4)), frozenset({1, 2, 3})
        )
        assert ob_exists_probability(
            chain, initial, window
        ) == pytest.approx(1.0)
        distribution = ktimes_distribution(chain, initial, window)
        # the object is inside at every query time, surely
        assert distribution[-1] == pytest.approx(1.0)

    def test_backward_vector_is_probability_vector(self):
        rng = np.random.default_rng(4)
        for _ in range(5):
            chain = random_chain(5, rng)
            window = random_window(5, rng, max_time=5)
            vector = QueryBasedEvaluator(chain, window).backward_vector
            assert (vector >= -1e-12).all()
            assert (vector <= 1.0 + 1e-12).all()

    def test_backward_vector_monotone_in_region(self):
        rng = np.random.default_rng(5)
        chain = random_chain(5, rng)
        times = frozenset({1, 3})
        small = SpatioTemporalWindow(frozenset({0}), times)
        large = SpatioTemporalWindow(frozenset({0, 1, 2}), times)
        v_small = QueryBasedEvaluator(chain, small).backward_vector
        v_large = QueryBasedEvaluator(chain, large).backward_vector
        assert (v_large >= v_small - 1e-12).all()


class TestEnginePureBackend:
    def test_pure_and_scipy_engines_agree(self):
        rng = np.random.default_rng(6)
        n = 8
        chain = random_chain(n, rng)
        database = TrajectoryDatabase.with_chain(chain)
        for index in range(6):
            database.add(
                UncertainObject.at_state(
                    f"o{index}", n, int(rng.integers(0, n))
                )
            )
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({2, 3})
        )
        scipy_result = QueryEngine(database, backend="scipy").evaluate(
            PSTExistsQuery(window), method="ob"
        )
        pure_result = QueryEngine(database, backend="pure").evaluate(
            PSTExistsQuery(window), method="ob"
        )
        for object_id in database.object_ids:
            assert pure_result.values[object_id] == pytest.approx(
                scipy_result.values[object_id], abs=1e-12
            )


class TestRTreeStructuralIndependence:
    def test_results_independent_of_capacity(self):
        rng = np.random.default_rng(7)
        entries = [
            (Rect.point(*rng.uniform(0, 50, size=2)), index)
            for index in range(200)
        ]
        query = Rect(10, 10, 30, 30)
        reference = sorted(RTree(entries, capacity=2).search(query))
        for capacity in (3, 8, 64):
            assert sorted(
                RTree(entries, capacity=capacity).search(query)
            ) == reference

    def test_higher_capacity_never_deepens_the_tree(self):
        rng = np.random.default_rng(8)
        entries = [
            (Rect.point(*rng.uniform(0, 50, size=2)), index)
            for index in range(300)
        ]
        heights = [
            RTree(entries, capacity=capacity).height
            for capacity in (4, 8, 16, 32)
        ]
        assert heights == sorted(heights, reverse=True)


class TestPureCSRAlgebra:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_transpose_of_product(self, seed):
        rng = np.random.default_rng(seed)
        a_dense = rng.random((4, 3)) * (rng.random((4, 3)) < 0.6)
        b_dense = rng.random((3, 5)) * (rng.random((3, 5)) < 0.6)
        a = CSRMatrix.from_dense(a_dense.tolist())
        b = CSRMatrix.from_dense(b_dense.tolist())
        left = (a @ b).transpose()
        right = b.transpose() @ a.transpose()
        assert left.allclose(right, tol=1e-12)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_distributivity_of_add(self, seed):
        rng = np.random.default_rng(seed)
        a = CSRMatrix.from_dense(
            (rng.random((3, 3)) * (rng.random((3, 3)) < 0.5)).tolist()
        )
        b = CSRMatrix.from_dense(
            (rng.random((3, 3)) * (rng.random((3, 3)) < 0.5)).tolist()
        )
        c = CSRMatrix.from_dense(rng.random((3, 3)).tolist())
        left = a.add(b) @ c
        right = (a @ c).add(b @ c)
        assert left.allclose(right, tol=1e-10)

    def test_select_plus_drop_reconstructs(self):
        rng = np.random.default_rng(9)
        dense = rng.random((4, 6)) * (rng.random((4, 6)) < 0.7)
        matrix = CSRMatrix.from_dense(dense.tolist())
        kept = matrix.select_columns([0, 2, 4])
        dropped = matrix.drop_columns([0, 2, 4])
        assert kept.add(dropped).allclose(matrix, tol=1e-14)


class TestFusionAlgebra:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_fusion_associative(self, seed):
        rng = np.random.default_rng(seed)
        a = random_distribution(5, rng)
        b = random_distribution(5, rng)
        c = random_distribution(5, rng)
        left = a.fuse(b).fuse(c)
        right = a.fuse(b.fuse(c))
        assert left.allclose(right, tol=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_restrict_equals_fuse_with_uniform_indicator(self, seed):
        rng = np.random.default_rng(seed)
        dist = random_distribution(6, rng)
        region = [0, 2, 4]
        indicator = StateDistribution.uniform(6, region)
        assert dist.restrict(region).allclose(
            dist.fuse(indicator), tol=1e-9
        )
