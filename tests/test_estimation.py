"""Tests for chain estimation from historical trajectories."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ChainEstimator,
    StateDistribution,
    Trajectory,
    estimate_chain,
    sample_trajectory,
)
from repro.core.errors import ValidationError

from conftest import random_chain


class TestChainEstimator:
    def test_counts_accumulate(self):
        estimator = ChainEstimator(3)
        estimator.add_transition(0, 1)
        estimator.add_transition(0, 1)
        estimator.add_transition(0, 2, weight=0.5)
        assert estimator.count(0, 1) == 2.0
        assert estimator.count(0, 2) == 0.5
        assert estimator.total_transitions == 2.5

    def test_add_trajectory(self):
        estimator = ChainEstimator(4)
        estimator.add_trajectory(Trajectory((0, 1, 2, 1)))
        assert estimator.count(0, 1) == 1.0
        assert estimator.count(1, 2) == 1.0
        assert estimator.count(2, 1) == 1.0

    def test_mle_probabilities(self):
        estimator = ChainEstimator(2)
        for _ in range(3):
            estimator.add_transition(0, 0)
        estimator.add_transition(0, 1)
        estimator.add_transition(1, 0)
        chain = estimator.to_chain()
        assert chain.transition_probability(0, 0) == pytest.approx(0.75)
        assert chain.transition_probability(0, 1) == pytest.approx(0.25)
        assert chain.transition_probability(1, 0) == 1.0

    def test_unobserved_source_becomes_absorbing(self):
        estimator = ChainEstimator(3)
        estimator.add_transition(0, 1)
        chain = estimator.to_chain()
        assert chain.is_absorbing_state(2)

    def test_smoothing_without_support_spreads_over_observed(self):
        estimator = ChainEstimator(3)
        estimator.add_transition(0, 1)
        estimator.add_transition(0, 2)
        estimator.add_transition(0, 1)
        chain = estimator.to_chain(smoothing=1.0)
        # counts (2, 1) + smoothing (1, 1) -> (3/5, 2/5)
        assert chain.transition_probability(0, 1) == pytest.approx(0.6)
        assert chain.transition_probability(0, 2) == pytest.approx(0.4)
        # smoothing never invents unobserved successors
        assert chain.transition_probability(0, 0) == 0.0

    def test_smoothing_with_support_covers_allowed_set(self):
        support = {0: [0, 1, 2], 1: [0], 2: [2]}
        estimator = ChainEstimator(3, support=support)
        estimator.add_transition(0, 1)
        chain = estimator.to_chain(smoothing=1.0)
        # counts (0,1,0) + smoothing 1 over allowed -> (1/4, 2/4, 1/4)
        assert chain.transition_probability(0, 0) == pytest.approx(0.25)
        assert chain.transition_probability(0, 1) == pytest.approx(0.5)
        assert chain.transition_probability(0, 2) == pytest.approx(0.25)
        # unobserved-but-supported rows get the uniform smoothed row
        assert chain.transition_probability(1, 0) == 1.0

    def test_support_violation_rejected(self):
        estimator = ChainEstimator(3, support={0: [1]})
        with pytest.raises(ValidationError):
            estimator.add_transition(0, 2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ChainEstimator(0)
        with pytest.raises(ValidationError):
            ChainEstimator(3, support={0: []})
        with pytest.raises(ValidationError):
            ChainEstimator(3, support={0: [9]})
        estimator = ChainEstimator(3)
        with pytest.raises(ValidationError):
            estimator.add_transition(0, 9)
        with pytest.raises(ValidationError):
            estimator.add_transition(0, 1, weight=0.0)
        estimator.add_transition(0, 1)
        with pytest.raises(ValidationError):
            estimator.to_chain(smoothing=-1.0)

    def test_estimated_chain_is_stochastic(self):
        rng = np.random.default_rng(0)
        estimator = ChainEstimator(6)
        for _ in range(50):
            states = rng.integers(0, 6, size=10)
            estimator.add_trajectory(Trajectory(tuple(states)))
        estimator.to_chain().validate()
        estimator.to_chain(smoothing=0.5).validate()


class TestEstimationConvergence:
    def test_recovers_true_chain_from_samples(self):
        """MLE converges to the generating chain (consistency)."""
        rng = np.random.default_rng(1)
        true_chain = random_chain(4, rng, density=0.7)
        initial = StateDistribution.uniform(4)
        trajectories = [
            sample_trajectory(true_chain, initial, horizon=30, rng=rng)
            for _ in range(400)
        ]
        estimated = estimate_chain(trajectories, 4)
        error = np.abs(
            estimated.to_dense() - true_chain.to_dense()
        ).max()
        assert error < 0.05

    def test_error_shrinks_with_more_data(self):
        rng = np.random.default_rng(2)
        true_chain = random_chain(3, rng, density=1.0)
        initial = StateDistribution.uniform(3)

        def estimation_error(n_trajectories, seed):
            local = np.random.default_rng(seed)
            trajectories = [
                sample_trajectory(true_chain, initial, 20, local)
                for _ in range(n_trajectories)
            ]
            estimated = estimate_chain(trajectories, 3)
            return np.abs(
                estimated.to_dense() - true_chain.to_dense()
            ).max()

        small = np.mean([estimation_error(10, s) for s in range(5)])
        large = np.mean([estimation_error(300, s) for s in range(5)])
        assert large < small

    def test_estimated_chain_answers_queries(self):
        """End to end: learn from logs, then query the learned model."""
        from repro import (
            SpatioTemporalWindow,
            ob_exists_probability,
        )

        rng = np.random.default_rng(3)
        true_chain = random_chain(5, rng, density=0.5)
        initial = StateDistribution.point(5, 0)
        trajectories = [
            sample_trajectory(true_chain, initial, 15, rng)
            for _ in range(500)
        ]
        learned = estimate_chain(trajectories, 5, smoothing=0.1)
        window = SpatioTemporalWindow(frozenset({3}), frozenset({2, 3}))
        p_true = ob_exists_probability(true_chain, initial, window)
        p_learned = ob_exists_probability(learned, initial, window)
        assert p_learned == pytest.approx(p_true, abs=0.1)
