"""Tests for trajectories and the possible-world enumeration oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PossibleWorldEnumerator,
    SpatioTemporalWindow,
    StateDistribution,
    Trajectory,
    sample_trajectory,
)
from repro.core.errors import ValidationError

from conftest import random_chain


class TestTrajectory:
    def test_construction(self):
        trajectory = Trajectory((0, 1, 2))
        assert len(trajectory) == 3
        assert trajectory[1] == 1
        assert trajectory.state_at(2) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Trajectory(())

    def test_state_at_out_of_horizon(self):
        with pytest.raises(ValidationError):
            Trajectory((0,)).state_at(1)

    def test_intersects(self):
        window = SpatioTemporalWindow(frozenset({5}), frozenset({1, 2}))
        assert Trajectory((0, 5, 0)).intersects(window)
        assert not Trajectory((5, 0, 0)).intersects(window)

    def test_stays_within(self):
        window = SpatioTemporalWindow(
            frozenset({1, 2}), frozenset({0, 1})
        )
        assert Trajectory((1, 2, 9)).stays_within(window)
        assert not Trajectory((1, 9, 9)).stays_within(window)

    def test_hit_count(self):
        window = SpatioTemporalWindow(
            frozenset({7}), frozenset({0, 1, 2})
        )
        assert Trajectory((7, 0, 7)).hit_count(window) == 2

    def test_times_beyond_horizon_do_not_count(self):
        window = SpatioTemporalWindow(frozenset({0}), frozenset({9}))
        assert Trajectory((0, 0)).hit_count(window) == 0
        assert not Trajectory((0, 0)).intersects(window)

    def test_probability_under(self, paper_chain):
        start = StateDistribution.point(3, 1)
        # path s2 -> s1 -> s3: 1.0 * 0.6 * 1.0
        assert Trajectory((1, 0, 2)).probability_under(
            paper_chain, start
        ) == pytest.approx(0.6)

    def test_probability_under_impossible_path(self, paper_chain):
        start = StateDistribution.point(3, 1)
        assert Trajectory((1, 1)).probability_under(
            paper_chain, start
        ) == 0.0


class TestSampling:
    def test_sampled_paths_are_feasible(self, paper_chain):
        rng = np.random.default_rng(1)
        start = StateDistribution.point(3, 1)
        for _ in range(20):
            trajectory = sample_trajectory(paper_chain, start, 5, rng)
            assert len(trajectory) == 6
            assert trajectory.probability_under(paper_chain, start) > 0

    def test_negative_horizon_rejected(self, paper_chain):
        rng = np.random.default_rng(1)
        with pytest.raises(ValidationError):
            sample_trajectory(
                paper_chain, StateDistribution.point(3, 0), -1, rng
            )


class TestEnumeration:
    def test_probabilities_sum_to_one(self, paper_chain):
        start = StateDistribution.point(3, 1)
        enumerator = PossibleWorldEnumerator(paper_chain, start, 3)
        total = sum(p for _, p in enumerator.worlds())
        assert total == pytest.approx(1.0)

    def test_sum_to_one_random_chain(self):
        rng = np.random.default_rng(3)
        chain = random_chain(4, rng)
        start = StateDistribution.uniform(4)
        enumerator = PossibleWorldEnumerator(chain, start, 4)
        assert sum(p for _, p in enumerator.worlds()) == (
            pytest.approx(1.0)
        )

    def test_each_world_probability_matches_chain(self, paper_chain):
        start = StateDistribution.point(3, 1)
        enumerator = PossibleWorldEnumerator(paper_chain, start, 3)
        for trajectory, probability in enumerator.worlds():
            assert probability == pytest.approx(
                trajectory.probability_under(paper_chain, start)
            )

    def test_exists_matches_paper(self, paper_chain, paper_window):
        start = StateDistribution.point(3, 1)
        enumerator = PossibleWorldEnumerator(paper_chain, start, 3)
        assert enumerator.exists_probability(paper_window) == (
            pytest.approx(0.864)
        )

    def test_ktimes_matches_paper(self, paper_chain, paper_window):
        start = StateDistribution.point(3, 1)
        enumerator = PossibleWorldEnumerator(paper_chain, start, 3)
        assert enumerator.ktimes_distribution(paper_window) == (
            pytest.approx([0.136, 0.672, 0.192])
        )

    def test_forall_complement_identity(self, paper_chain):
        start = StateDistribution.point(3, 1)
        enumerator = PossibleWorldEnumerator(paper_chain, start, 3)
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({2, 3})
        )
        complement_window = window.with_region({2})
        assert enumerator.forall_probability(window) == pytest.approx(
            1.0 - enumerator.exists_probability(complement_window)
        )

    def test_world_limit_guard(self, paper_chain):
        start = StateDistribution.point(3, 1)
        enumerator = PossibleWorldEnumerator(
            paper_chain, start, 3, max_worlds=2
        )
        with pytest.raises(ValidationError):
            list(enumerator.worlds())

    def test_negative_horizon_rejected(self, paper_chain):
        with pytest.raises(ValidationError):
            PossibleWorldEnumerator(
                paper_chain, StateDistribution.point(3, 0), -1
            )


class TestConditionedEnumeration:
    def test_posterior_sums_to_one(self, paper_chain_section6):
        start = StateDistribution.point(3, 0)
        enumerator = PossibleWorldEnumerator(
            paper_chain_section6, start, 3
        )
        conditioned = enumerator.conditioned_on_observations(
            [(3, StateDistribution.point(3, 1))]
        )
        assert sum(w for _, w in conditioned.worlds()) == (
            pytest.approx(1.0)
        )

    def test_observation_eliminates_worlds(self, paper_chain_section6):
        start = StateDistribution.point(3, 0)
        enumerator = PossibleWorldEnumerator(
            paper_chain_section6, start, 3
        )
        conditioned = enumerator.conditioned_on_observations(
            [(3, StateDistribution.point(3, 1))]
        )
        for trajectory, _ in conditioned.worlds():
            assert trajectory[3] == 1

    def test_infeasible_observation(self, paper_chain):
        # from s1 the object is at s3 at t=1 with certainty
        start = StateDistribution.point(3, 0)
        enumerator = PossibleWorldEnumerator(paper_chain, start, 1)
        conditioned = enumerator.conditioned_on_observations(
            [(1, StateDistribution.point(3, 0))]
        )
        with pytest.raises(ValidationError):
            list(conditioned.worlds())

    def test_observation_time_outside_horizon(self, paper_chain):
        start = StateDistribution.point(3, 0)
        enumerator = PossibleWorldEnumerator(paper_chain, start, 2)
        with pytest.raises(ValidationError):
            enumerator.conditioned_on_observations(
                [(5, StateDistribution.point(3, 0))]
            )
