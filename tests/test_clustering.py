"""Tests for chain clustering and the clustered threshold processor."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ClusteredThresholdProcessor,
    MarkovChain,
    SpatioTemporalWindow,
    TrajectoryDatabase,
    UncertainObject,
    cluster_chains,
    ob_exists_probability,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain


def perturbed(base: MarkovChain, rng, epsilon: float) -> MarkovChain:
    dense = base.to_dense()
    n = base.n_states
    for i in range(n):
        row = dense[i]
        mask = row > 0
        row = np.clip(
            row + rng.uniform(-epsilon, epsilon, size=n) * mask,
            1e-6,
            None,
        ) * mask
        dense[i] = row / row.sum()
    return MarkovChain(dense)


class TestClusterChains:
    def test_identical_chains_form_one_cluster(self, paper_chain):
        clusters = cluster_chains(
            {"a": paper_chain, "b": paper_chain}, radius=0.0
        )
        assert len(clusters) == 1
        assert sorted(clusters[0].chain_ids) == ["a", "b"]

    def test_distant_chains_split(self):
        rng = np.random.default_rng(0)
        a = random_chain(4, rng, density=1.0)
        b = random_chain(4, rng, density=1.0)
        clusters = cluster_chains({"a": a, "b": b}, radius=0.01)
        assert len(clusters) == 2

    def test_nearby_chains_merge(self):
        rng = np.random.default_rng(1)
        base = random_chain(4, rng)
        near = perturbed(base, rng, 0.02)
        clusters = cluster_chains(
            {"base": base, "near": near}, radius=0.2
        )
        assert len(clusters) == 1
        assert clusters[0].interval.contains(base)
        assert clusters[0].interval.contains(near)

    def test_deterministic_order(self):
        rng = np.random.default_rng(2)
        chains = {f"c{i}": random_chain(3, rng) for i in range(5)}
        first = cluster_chains(chains, radius=0.1)
        second = cluster_chains(chains, radius=0.1)
        assert [c.chain_ids for c in first] == [
            c.chain_ids for c in second
        ]

    def test_validation(self):
        with pytest.raises(ValidationError):
            cluster_chains({})
        with pytest.raises(ValidationError):
            cluster_chains(
                {"a": MarkovChain.identity(2)}, radius=-1.0
            )


def build_clustered_database(seed=0, n_states=10, per_class=4):
    """Two families of chains, several objects per chain."""
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(n_states)
    family_a = random_chain(n_states, rng)
    family_b = random_chain(n_states, rng)
    for index in range(per_class):
        database.register_chain(
            f"a{index}", perturbed(family_a, rng, 0.03)
        )
        database.register_chain(
            f"b{index}", perturbed(family_b, rng, 0.03)
        )
    counter = 0
    for chain_id in database.chain_ids:
        for _ in range(2):
            database.add(
                UncertainObject.at_state(
                    f"o{counter}",
                    n_states,
                    int(rng.integers(0, n_states)),
                    chain_id=chain_id,
                )
            )
            counter += 1
    return database


class TestClusteredThresholdProcessor:
    WINDOW = SpatioTemporalWindow(frozenset({0, 1}), frozenset({2, 3}))

    def test_matches_exact_evaluation(self):
        database = build_clustered_database()
        processor = ClusteredThresholdProcessor(database, radius=0.15)
        threshold = 0.3
        answer = processor.evaluate(self.WINDOW, threshold)
        expected = set()
        for obj in database:
            chain = database.chain(obj.chain_id)
            p = ob_exists_probability(
                chain, obj.initial.distribution, self.WINDOW
            )
            if p >= threshold:
                expected.add(obj.object_id)
        assert set(answer.accepted) == expected

    def test_matches_exact_at_many_thresholds(self):
        database = build_clustered_database(seed=3)
        processor = ClusteredThresholdProcessor(database, radius=0.15)
        for threshold in (0.05, 0.25, 0.5, 0.9):
            answer = processor.evaluate(self.WINDOW, threshold)
            for obj in database:
                chain = database.chain(obj.chain_id)
                p = ob_exists_probability(
                    chain, obj.initial.distribution, self.WINDOW
                )
                assert (obj.object_id in answer.accepted) == (
                    p >= threshold
                )

    def test_clusters_formed(self):
        database = build_clustered_database()
        processor = ClusteredThresholdProcessor(database, radius=0.15)
        # two chain families -> two clusters (radius separates them)
        assert len(processor.clusters) == 2

    def test_some_clusters_decided_without_refinement(self):
        """An extreme threshold lets bounds reject whole clusters."""
        database = build_clustered_database(seed=4)
        processor = ClusteredThresholdProcessor(database, radius=0.15)
        answer = processor.evaluate(self.WINDOW, threshold=0.999)
        assert answer.clusters_decided >= 1
        assert answer.accepted == ()

    def test_refined_probabilities_are_exact(self):
        database = build_clustered_database(seed=5)
        processor = ClusteredThresholdProcessor(database, radius=0.15)
        answer = processor.evaluate(self.WINDOW, threshold=0.3)
        for object_id, probability in answer.probabilities.items():
            obj = database.get(object_id)
            chain = database.chain(obj.chain_id)
            assert probability == pytest.approx(
                ob_exists_probability(
                    chain, obj.initial.distribution, self.WINDOW
                )
            )

    def test_threshold_validation(self):
        database = build_clustered_database()
        processor = ClusteredThresholdProcessor(database)
        with pytest.raises(QueryError):
            processor.evaluate(self.WINDOW, threshold=0.0)
        with pytest.raises(QueryError):
            processor.evaluate(self.WINDOW, threshold=1.5)

    def test_window_validation(self):
        database = build_clustered_database()
        processor = ClusteredThresholdProcessor(database)
        bad = SpatioTemporalWindow(frozenset({99}), frozenset({1}))
        with pytest.raises(QueryError):
            processor.evaluate(bad, threshold=0.5)
