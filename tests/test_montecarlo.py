"""Tests for the Monte-Carlo baseline (Section VIII-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MonteCarloResult,
    MonteCarloSampler,
    SpatioTemporalWindow,
    StateDistribution,
    ktimes_distribution,
    mc_exists_probability,
    mc_forall_probability,
    mc_ktimes_distribution,
    ob_exists_probability,
    ob_forall_probability,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain, random_distribution


class TestResultContainer:
    def test_standard_error_formula(self):
        result = MonteCarloResult(estimate=0.5, n_samples=100)
        # the paper: sigma = sqrt(p(1-p)/n) = 0.05 at p=0.5, n=100
        assert result.standard_error == pytest.approx(0.05)

    def test_standard_error_extremes(self):
        assert MonteCarloResult(0.0, 100).standard_error == 0.0
        assert MonteCarloResult(1.0, 100).standard_error == 0.0

    def test_confidence_interval_clipped(self):
        low, high = MonteCarloResult(0.99, 10).confidence_interval()
        assert 0.0 <= low <= high <= 1.0


class TestSampling:
    def test_paths_shape(self, paper_chain):
        sampler = MonteCarloSampler(paper_chain, seed=0)
        paths = sampler.sample_paths(
            StateDistribution.point(3, 1), horizon=5, n_samples=64
        )
        assert paths.shape == (64, 6)
        assert (paths[:, 0] == 1).all()

    def test_paths_follow_transitions(self, paper_chain):
        sampler = MonteCarloSampler(paper_chain, seed=1)
        paths = sampler.sample_paths(
            StateDistribution.point(3, 0), horizon=4, n_samples=50
        )
        for path in paths:
            for a, b in zip(path, path[1:]):
                assert paper_chain.transition_probability(
                    int(a), int(b)
                ) > 0

    def test_seed_determinism(self, paper_chain):
        start = StateDistribution.uniform(3)
        a = MonteCarloSampler(paper_chain, seed=7).sample_paths(
            start, 5, 20
        )
        b = MonteCarloSampler(paper_chain, seed=7).sample_paths(
            start, 5, 20
        )
        assert (a == b).all()

    def test_invalid_args(self, paper_chain):
        sampler = MonteCarloSampler(paper_chain, seed=0)
        start = StateDistribution.point(3, 0)
        with pytest.raises(ValidationError):
            sampler.sample_paths(start, 5, 0)
        with pytest.raises(ValidationError):
            sampler.sample_paths(start, -1, 5)
        with pytest.raises(ValidationError):
            sampler.sample_paths(StateDistribution.point(4, 0), 5, 5)


class TestConvergence:
    """MC must converge to the exact matrix-based answers."""

    def test_exists_converges(self, paper_chain, paper_window,
                              paper_start):
        exact = 0.864
        result = mc_exists_probability(
            paper_chain, paper_start, paper_window,
            n_samples=40_000, seed=2,
        )
        assert result.estimate == pytest.approx(exact, abs=0.01)

    def test_forall_converges(self):
        rng = np.random.default_rng(3)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({1, 2})
        )
        exact = ob_forall_probability(chain, initial, window)
        result = mc_forall_probability(
            chain, initial, window, n_samples=40_000, seed=4
        )
        assert result.estimate == pytest.approx(exact, abs=0.01)

    def test_ktimes_converges(self, paper_chain, paper_window,
                              paper_start):
        exact = ktimes_distribution(
            paper_chain, paper_start, paper_window
        )
        estimate = mc_ktimes_distribution(
            paper_chain, paper_start, paper_window,
            n_samples=40_000, seed=5,
        )
        assert np.allclose(estimate, exact, atol=0.01)

    def test_error_shrinks_with_samples(self, paper_chain, paper_window,
                                        paper_start):
        exact = 0.864
        errors = []
        for n_samples in (50, 5_000):
            batch = [
                abs(
                    mc_exists_probability(
                        paper_chain,
                        paper_start,
                        paper_window,
                        n_samples=n_samples,
                        seed=seed,
                    ).estimate
                    - exact
                )
                for seed in range(8)
            ]
            errors.append(float(np.mean(batch)))
        assert errors[1] < errors[0]

    def test_random_instances(self):
        rng = np.random.default_rng(6)
        for trial in range(5):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = SpatioTemporalWindow(
                frozenset({0}), frozenset({1, 2, 3})
            )
            exact = ob_exists_probability(chain, initial, window)
            result = mc_exists_probability(
                chain, initial, window, n_samples=20_000, seed=trial
            )
            assert result.estimate == pytest.approx(exact, abs=0.02)


class TestWindowChecks:
    def test_query_before_start(self, paper_chain, paper_start):
        sampler = MonteCarloSampler(paper_chain, seed=0)
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        with pytest.raises(QueryError):
            sampler.exists_probability(
                paper_start, window, 10, start_time=3
            )

    def test_region_out_of_range(self, paper_chain, paper_start):
        sampler = MonteCarloSampler(paper_chain, seed=0)
        window = SpatioTemporalWindow(frozenset({9}), frozenset({1}))
        with pytest.raises(QueryError):
            sampler.exists_probability(paper_start, window, 10)

    def test_start_time_in_window_counts_t0(self, paper_chain):
        """When t=0 is a query time the initial state can already hit."""
        sampler = MonteCarloSampler(paper_chain, seed=0)
        start = StateDistribution.point(3, 0)
        window = SpatioTemporalWindow(frozenset({0}), frozenset({0}))
        result = sampler.exists_probability(start, window, 100)
        assert result.estimate == 1.0


class TestCdfTable:
    """The vectorised row-CDF table and its grouped fallback."""

    def test_table_built_lazily_once(self, paper_chain):
        sampler = MonteCarloSampler(paper_chain, seed=0)
        assert sampler._cdf_table is None
        sampler.sample_paths(StateDistribution.point(3, 1), 4, 32)
        table = sampler._cdf_table
        assert table is not None
        sampler.sample_paths(StateDistribution.point(3, 1), 4, 32)
        assert sampler._cdf_table is table

    def test_table_rows_end_at_one(self, paper_chain):
        sampler = MonteCarloSampler(paper_chain, seed=0)
        sampler.sample_paths(StateDistribution.point(3, 1), 1, 8)
        cdf, targets = sampler._cdf_table
        assert np.allclose(cdf[:, -1], 1.0)
        assert targets.shape == cdf.shape

    def test_fallback_paths_follow_transitions(
        self, paper_chain, monkeypatch
    ):
        sampler = MonteCarloSampler(paper_chain, seed=3)
        monkeypatch.setattr(sampler, "_CDF_TABLE_MAX_BYTES", 0)
        paths = sampler.sample_paths(
            StateDistribution.point(3, 1), horizon=5, n_samples=40
        )
        assert sampler._cdf_table is None
        for path in paths:
            for a, b in zip(path, path[1:]):
                assert paper_chain.transition_probability(
                    int(a), int(b)
                ) > 0

    def test_fallback_converges_like_table(self, paper_chain):
        start = StateDistribution.point(3, 1)
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({2, 3})
        )
        table = MonteCarloSampler(paper_chain, seed=9).exists_probability(
            start, window, 20_000
        )
        fallback_sampler = MonteCarloSampler(paper_chain, seed=9)
        fallback_sampler._CDF_TABLE_MAX_BYTES = 0
        fallback = fallback_sampler.exists_probability(
            start, window, 20_000
        )
        assert table.estimate == pytest.approx(0.864, abs=0.01)
        assert fallback.estimate == pytest.approx(0.864, abs=0.01)
