"""Tests for UncertainObject and TrajectoryDatabase."""

from __future__ import annotations

import pytest

from repro import (
    LineStateSpace,
    MarkovChain,
    Observation,
    ObservationSet,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import ValidationError

from conftest import random_chain

import numpy as np


def small_chain() -> MarkovChain:
    return MarkovChain([[0.5, 0.5, 0.0], [0.0, 0.5, 0.5], [1.0, 0.0, 0.0]])


class TestUncertainObject:
    def test_at_state(self):
        obj = UncertainObject.at_state("o1", 5, 3)
        assert obj.initial.time == 0
        assert obj.initial.distribution.probability(3) == 1.0
        assert not obj.has_multiple_observations()

    def test_with_distribution(self):
        dist = StateDistribution.uniform(4, [0, 1])
        obj = UncertainObject.with_distribution("o2", dist, time=2)
        assert obj.initial.time == 2
        assert obj.n_states == 4

    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError):
            UncertainObject.at_state("", 3, 0)

    def test_multiple_observations_flag(self):
        observations = ObservationSet.of(
            Observation.precise(0, 3, 0),
            Observation.precise(5, 3, 2),
        )
        obj = UncertainObject("o3", observations)
        assert obj.has_multiple_observations()


class TestTrajectoryDatabase:
    def test_with_chain(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        assert database.n_states == 3
        assert database.chain_ids == ["default"]

    def test_state_space_size_check(self):
        with pytest.raises(ValidationError):
            TrajectoryDatabase(5, state_space=LineStateSpace(4))

    def test_nonpositive_states_rejected(self):
        with pytest.raises(ValidationError):
            TrajectoryDatabase(0)

    def test_register_chain_size_check(self):
        database = TrajectoryDatabase(4)
        with pytest.raises(ValidationError):
            database.register_chain("default", small_chain())

    def test_unknown_chain_lookup(self):
        database = TrajectoryDatabase(3)
        with pytest.raises(ValidationError):
            database.chain("missing")

    def test_add_and_get(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        obj = UncertainObject.at_state("a", 3, 0)
        database.add(obj)
        assert database.get("a") is obj
        assert "a" in database
        assert len(database) == 1

    def test_duplicate_id_rejected(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        database.add(UncertainObject.at_state("a", 3, 0))
        with pytest.raises(ValidationError):
            database.add(UncertainObject.at_state("a", 3, 1))

    def test_unknown_chain_id_rejected(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        obj = UncertainObject.at_state("a", 3, 0, chain_id="bus")
        with pytest.raises(ValidationError):
            database.add(obj)

    def test_wrong_state_count_rejected(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        with pytest.raises(ValidationError):
            database.add(UncertainObject.at_state("a", 4, 0))

    def test_remove(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        database.add(UncertainObject.at_state("a", 3, 0))
        removed = database.remove("a")
        assert removed.object_id == "a"
        assert "a" not in database

    def test_get_missing(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        with pytest.raises(ValidationError):
            database.get("nope")

    def test_add_all_and_iteration(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        objects = [
            UncertainObject.at_state(f"o{i}", 3, i % 3) for i in range(5)
        ]
        database.add_all(objects)
        assert [obj.object_id for obj in database] == [
            f"o{i}" for i in range(5)
        ]
        assert database.object_ids == [f"o{i}" for i in range(5)]

    def test_objects_by_chain(self):
        rng = np.random.default_rng(0)
        database = TrajectoryDatabase.with_chain(small_chain())
        database.register_chain("bus", random_chain(3, rng))
        database.add(UncertainObject.at_state("car1", 3, 0))
        database.add(
            UncertainObject.at_state("bus1", 3, 1, chain_id="bus")
        )
        database.add(
            UncertainObject.at_state("bus2", 3, 2, chain_id="bus")
        )
        groups = database.objects_by_chain()
        assert {k: len(v) for k, v in groups.items()} == {
            "default": 1,
            "bus": 2,
        }

    def test_initial_distributions_filter(self):
        rng = np.random.default_rng(1)
        database = TrajectoryDatabase.with_chain(small_chain())
        database.register_chain("bus", random_chain(3, rng))
        database.add(UncertainObject.at_state("a", 3, 0))
        database.add(UncertainObject.at_state("b", 3, 1, chain_id="bus"))
        assert [
            object_id
            for object_id, _ in database.initial_distributions("bus")
        ] == ["b"]
        assert len(database.initial_distributions()) == 2

    def test_repr(self):
        database = TrajectoryDatabase.with_chain(small_chain())
        assert "n_states=3" in repr(database)
