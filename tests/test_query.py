"""Tests for query window and PST query definitions."""

from __future__ import annotations

import pytest

from repro import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    SpatioTemporalWindow,
)
from repro.core.errors import QueryError


class TestWindow:
    def test_from_ranges(self):
        window = SpatioTemporalWindow.from_ranges(100, 120, 20, 25)
        assert window.region == frozenset(range(100, 121))
        assert window.times == frozenset(range(20, 26))
        assert window.t_start == 20
        assert window.t_end == 25
        assert window.duration == 6

    def test_arbitrary_noncontiguous_sets(self):
        # Section III: any subsets of space and time are allowed
        window = SpatioTemporalWindow(
            frozenset({3, 17, 99}), frozenset({1, 5})
        )
        assert window.contains_time(5)
        assert not window.contains_time(2)

    def test_empty_region_rejected(self):
        with pytest.raises(QueryError):
            SpatioTemporalWindow(frozenset(), frozenset({1}))

    def test_empty_times_rejected(self):
        with pytest.raises(QueryError):
            SpatioTemporalWindow(frozenset({1}), frozenset())

    def test_negative_state_rejected(self):
        with pytest.raises(QueryError):
            SpatioTemporalWindow(frozenset({-1}), frozenset({1}))

    def test_negative_time_rejected(self):
        with pytest.raises(QueryError):
            SpatioTemporalWindow(frozenset({1}), frozenset({-5}))

    def test_inverted_ranges_rejected(self):
        with pytest.raises(QueryError):
            SpatioTemporalWindow.from_ranges(5, 3, 0, 1)
        with pytest.raises(QueryError):
            SpatioTemporalWindow.from_ranges(0, 1, 5, 3)

    def test_with_region(self):
        window = SpatioTemporalWindow.from_ranges(0, 1, 2, 3)
        swapped = window.with_region({7})
        assert swapped.region == frozenset({7})
        assert swapped.times == window.times

    def test_validate_for(self):
        window = SpatioTemporalWindow.from_ranges(0, 10, 0, 1)
        window.validate_for(11)  # fits exactly
        with pytest.raises(QueryError):
            window.validate_for(10)


class TestQueries:
    def test_exists_from_ranges(self):
        query = PSTExistsQuery.from_ranges(0, 5, 1, 2)
        assert query.region == frozenset(range(6))
        assert query.times == frozenset({1, 2})

    def test_forall_complement(self):
        query = PSTForAllQuery.from_ranges(0, 1, 0, 0)
        complement = query.complement_exists(4)
        assert complement.region == frozenset({2, 3})
        assert complement.times == query.times

    def test_forall_complement_whole_space(self):
        query = PSTForAllQuery.from_ranges(0, 3, 0, 0)
        with pytest.raises(QueryError):
            query.complement_exists(4)

    def test_forall_complement_region_too_big(self):
        query = PSTForAllQuery.from_ranges(0, 9, 0, 0)
        with pytest.raises(QueryError):
            query.complement_exists(5)

    def test_ktimes_k_bounds(self):
        window = SpatioTemporalWindow.from_ranges(0, 1, 0, 2)
        PSTKTimesQuery(window, k=0)
        PSTKTimesQuery(window, k=3)
        with pytest.raises(QueryError):
            PSTKTimesQuery(window, k=4)
        with pytest.raises(QueryError):
            PSTKTimesQuery(window, k=-1)

    def test_ktimes_full_distribution_default(self):
        query = PSTKTimesQuery.from_ranges(0, 1, 0, 2)
        assert query.k is None

    def test_queries_are_hashable(self):
        a = PSTExistsQuery.from_ranges(0, 1, 2, 3)
        b = PSTExistsQuery.from_ranges(0, 1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)
