"""Tests for observations and observation sets."""

from __future__ import annotations

import pytest

from repro import Observation, ObservationSet
from repro.core.errors import ObservationError


class TestObservation:
    def test_precise(self):
        obs = Observation.precise(3, 10, 4)
        assert obs.time == 3
        assert obs.is_precise()
        assert obs.distribution.probability(4) == 1.0

    def test_uniform(self):
        obs = Observation.uniform(0, 5, [1, 2])
        assert not obs.is_precise()
        assert obs.distribution.probability(1) == pytest.approx(0.5)

    def test_weighted_normalizes(self):
        obs = Observation.weighted(1, 4, {0: 2.0, 3: 6.0})
        assert obs.distribution.probability(3) == pytest.approx(0.75)

    def test_negative_time_rejected(self):
        with pytest.raises(ObservationError):
            Observation.precise(-1, 3, 0)

    def test_n_states(self):
        assert Observation.precise(0, 7, 0).n_states == 7


class TestObservationSet:
    def test_single(self):
        obs_set = ObservationSet.single(Observation.precise(0, 3, 1))
        assert len(obs_set) == 1
        assert obs_set.first is obs_set.last

    def test_sorted_by_time(self):
        late = Observation.precise(5, 3, 0)
        early = Observation.precise(1, 3, 2)
        obs_set = ObservationSet.of(late, early)
        assert obs_set.times == (1, 5)
        assert obs_set.first.time == 1
        assert obs_set.last.time == 5

    def test_empty_rejected(self):
        with pytest.raises(ObservationError):
            ObservationSet(())

    def test_duplicate_times_rejected(self):
        a = Observation.precise(2, 3, 0)
        b = Observation.precise(2, 3, 1)
        with pytest.raises(ObservationError):
            ObservationSet.of(a, b)

    def test_mixed_state_counts_rejected(self):
        a = Observation.precise(0, 3, 0)
        b = Observation.precise(1, 4, 0)
        with pytest.raises(ObservationError):
            ObservationSet.of(a, b)

    def test_at(self):
        a = Observation.precise(0, 3, 0)
        b = Observation.precise(4, 3, 1)
        obs_set = ObservationSet.of(a, b)
        assert obs_set.at(4) is b
        assert obs_set.at(2) is None

    def test_after(self):
        a = Observation.precise(0, 3, 0)
        b = Observation.precise(2, 3, 1)
        c = Observation.precise(7, 3, 2)
        obs_set = ObservationSet.of(c, a, b)
        assert [o.time for o in obs_set.after(0)] == [2, 7]
        assert obs_set.after(7) == []

    def test_iteration(self):
        a = Observation.precise(0, 3, 0)
        b = Observation.precise(1, 3, 1)
        assert [o.time for o in ObservationSet.of(b, a)] == [0, 1]

    def test_n_states(self):
        obs_set = ObservationSet.single(Observation.precise(0, 9, 0))
        assert obs_set.n_states == 9
