"""Tests for query-based processing (Section V-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PossibleWorldEnumerator,
    QueryBasedEvaluator,
    QueryBasedKTimesEvaluator,
    SpatioTemporalWindow,
    StateDistribution,
    build_absorbing_matrices,
    ktimes_distribution,
    ob_exists_probability,
    qb_exists_probability,
    qb_forall_probability,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain, random_distribution, random_window


class TestPaperExample:
    def test_exists_equals_0_864(self, paper_chain, paper_window,
                                 paper_start):
        assert qb_exists_probability(
            paper_chain, paper_start, paper_window
        ) == pytest.approx(0.864)

    def test_backward_vector_matches_example2(self, paper_chain,
                                              paper_window):
        """The paper computes P(t=0) = (0.96, 0.864, 0.928, 1)."""
        evaluator = QueryBasedEvaluator(paper_chain, paper_window)
        assert np.allclose(
            evaluator.backward_vector, [0.96, 0.864, 0.928, 1.0]
        )

    def test_state_probability_reads_backward_vector(self, paper_chain,
                                                     paper_window):
        evaluator = QueryBasedEvaluator(paper_chain, paper_window)
        assert evaluator.state_probability(0) == pytest.approx(0.96)
        assert evaluator.state_probability(1) == pytest.approx(0.864)
        assert evaluator.state_probability(2) == pytest.approx(0.928)


class TestAgainstObjectBased:
    """OB and QB must agree exactly -- the paper's two views of one sum."""

    def test_random_instances(self):
        rng = np.random.default_rng(7)
        for _ in range(30):
            n = int(rng.integers(2, 7))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=6)
            ob = ob_exists_probability(chain, initial, window)
            qb = qb_exists_probability(chain, initial, window)
            assert qb == pytest.approx(ob, abs=1e-12)

    def test_start_time_inside_window(self):
        rng = np.random.default_rng(8)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = SpatioTemporalWindow(
            frozenset({0, 2}), frozenset({0, 1, 3})
        )
        assert qb_exists_probability(
            chain, initial, window
        ) == pytest.approx(
            ob_exists_probability(chain, initial, window)
        )

    def test_against_enumeration(self):
        rng = np.random.default_rng(9)
        for _ in range(15):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng, sparse=True)
            window = random_window(n, rng, max_time=5)
            expected = PossibleWorldEnumerator(
                chain, initial, window.t_end
            ).exists_probability(window)
            assert qb_exists_probability(
                chain, initial, window
            ) == pytest.approx(expected, abs=1e-10)


class TestBatchEvaluation:
    def test_one_backward_pass_many_objects(self, paper_chain,
                                            paper_window):
        evaluator = QueryBasedEvaluator(paper_chain, paper_window)
        initials = [
            StateDistribution.point(3, 0),
            StateDistribution.point(3, 1),
            StateDistribution.point(3, 2),
        ]
        probabilities = evaluator.probabilities(initials)
        assert probabilities == pytest.approx([0.96, 0.864, 0.928])

    def test_uncertain_initial_is_convex_combination(self, paper_chain,
                                                     paper_window):
        evaluator = QueryBasedEvaluator(paper_chain, paper_window)
        mixed = StateDistribution([0.5, 0.5, 0.0])
        assert evaluator.probability(mixed) == pytest.approx(
            0.5 * 0.96 + 0.5 * 0.864
        )


class TestForAll:
    def test_matches_ob_forall(self):
        rng = np.random.default_rng(10)
        for _ in range(10):
            n = int(rng.integers(3, 6))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=4)
            from repro import ob_forall_probability

            assert qb_forall_probability(
                chain, initial, window
            ) == pytest.approx(
                ob_forall_probability(chain, initial, window),
                abs=1e-12,
            )

    def test_whole_space(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(
            frozenset({0, 1, 2}), frozenset({1})
        )
        assert qb_forall_probability(
            paper_chain, paper_start, window
        ) == 1.0


class TestKTimesEvaluator:
    def test_matches_ct_algorithm(self, paper_chain, paper_window,
                                  paper_start):
        evaluator = QueryBasedKTimesEvaluator(paper_chain, paper_window)
        assert np.allclose(
            evaluator.distribution(paper_start),
            ktimes_distribution(paper_chain, paper_start, paper_window),
        )

    def test_random_instances(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=4)
            evaluator = QueryBasedKTimesEvaluator(chain, window)
            assert np.allclose(
                evaluator.distribution(initial),
                ktimes_distribution(chain, initial, window),
                atol=1e-10,
            )

    def test_start_in_window_footnote3(self):
        rng = np.random.default_rng(12)
        chain = random_chain(3, rng)
        initial = random_distribution(3, rng)
        window = SpatioTemporalWindow(frozenset({0}), frozenset({0, 2}))
        evaluator = QueryBasedKTimesEvaluator(chain, window)
        assert np.allclose(
            evaluator.distribution(initial),
            ktimes_distribution(chain, initial, window),
            atol=1e-10,
        )

    def test_dimension_check(self, paper_chain, paper_window):
        evaluator = QueryBasedKTimesEvaluator(paper_chain, paper_window)
        with pytest.raises(ValidationError):
            evaluator.distribution(StateDistribution.point(5, 0))


class TestValidation:
    def test_region_out_of_range(self, paper_chain):
        window = SpatioTemporalWindow(frozenset({9}), frozenset({1}))
        with pytest.raises(QueryError):
            QueryBasedEvaluator(paper_chain, window)

    def test_query_before_start_time(self, paper_chain, paper_window):
        with pytest.raises(QueryError):
            QueryBasedEvaluator(paper_chain, paper_window, start_time=5)

    def test_negative_start_time(self, paper_chain, paper_window):
        with pytest.raises(QueryError):
            QueryBasedEvaluator(
                paper_chain, paper_window, start_time=-1
            )

    def test_wrong_prebuilt_matrices(self, paper_chain, paper_window):
        matrices = build_absorbing_matrices(paper_chain, {2})
        with pytest.raises(QueryError):
            QueryBasedEvaluator(
                paper_chain, paper_window, matrices=matrices
            )

    def test_probability_dimension_check(self, paper_chain,
                                         paper_window):
        evaluator = QueryBasedEvaluator(paper_chain, paper_window)
        with pytest.raises(ValidationError):
            evaluator.probability(StateDistribution.point(4, 0))

    def test_state_probability_range_check(self, paper_chain,
                                           paper_window):
        evaluator = QueryBasedEvaluator(paper_chain, paper_window)
        with pytest.raises(ValidationError):
            evaluator.state_probability(3)
