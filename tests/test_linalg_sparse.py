"""Unit and property tests for the pure-Python CSR matrix."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DimensionMismatchError, ValidationError
from repro.linalg.sparse import CSRMatrix


def dense_strategy(max_dim: int = 6):
    """Random small dense matrices as nested lists."""
    return st.integers(1, max_dim).flatmap(
        lambda rows: st.integers(1, max_dim).flatmap(
            lambda cols: st.lists(
                st.lists(
                    st.floats(-10, 10, allow_nan=False).map(
                        lambda x: 0.0 if abs(x) < 1.0 else x
                    ),
                    min_size=cols,
                    max_size=cols,
                ),
                min_size=rows,
                max_size=rows,
            )
        )
    )


class TestConstruction:
    def test_from_dense_round_trip(self):
        dense = [[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [3.0, 4.0, 0.0]]
        matrix = CSRMatrix.from_dense(dense)
        assert matrix.to_dense() == dense
        assert matrix.nnz == 4
        assert matrix.shape == (3, 3)

    def test_from_dense_ragged_rejected(self):
        with pytest.raises(DimensionMismatchError):
            CSRMatrix.from_dense([[1.0, 2.0], [1.0]])

    def test_from_coo_sums_duplicates(self):
        matrix = CSRMatrix.from_coo(
            2, 2, [(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]
        )
        assert matrix.get(0, 0) == 3.0
        assert matrix.get(1, 1) == 5.0

    def test_from_coo_drops_cancelling_entries(self):
        matrix = CSRMatrix.from_coo(1, 1, [(0, 0, 1.0), (0, 0, -1.0)])
        assert matrix.nnz == 0

    def test_from_coo_out_of_range(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_coo(2, 2, [(2, 0, 1.0)])

    def test_from_dict(self):
        matrix = CSRMatrix.from_dict(2, 3, {(0, 2): 7.0, (1, 0): -1.0})
        assert matrix.get(0, 2) == 7.0
        assert matrix.get(1, 0) == -1.0
        assert matrix.get(0, 0) == 0.0

    def test_identity(self):
        eye = CSRMatrix.identity(4)
        assert eye.to_dense() == np.eye(4).tolist()

    def test_zeros(self):
        zeros = CSRMatrix.zeros(2, 5)
        assert zeros.nnz == 0
        assert zeros.shape == (2, 5)

    def test_empty_matrix_row_access_raises(self):
        matrix = CSRMatrix.zeros(2, 2)
        with pytest.raises(ValidationError):
            list(matrix.row(5))


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(ValidationError):
            CSRMatrix(2, 2, [0, 0], [], [])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValidationError):
            CSRMatrix(1, 1, [1, 1], [], [])

    def test_indptr_must_not_decrease(self):
        with pytest.raises(ValidationError):
            CSRMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 1.0])

    def test_column_out_of_range(self):
        with pytest.raises(ValidationError):
            CSRMatrix(1, 2, [0, 1], [5], [1.0])

    def test_columns_must_increase_within_row(self):
        with pytest.raises(ValidationError):
            CSRMatrix(1, 3, [0, 2], [1, 1], [1.0, 2.0])

    def test_data_indices_length_mismatch(self):
        with pytest.raises(ValidationError):
            CSRMatrix(1, 2, [0, 1], [0, 1], [1.0])


class TestAlgebra:
    def setup_method(self):
        self.dense = [
            [0.0, 0.0, 1.0],
            [0.6, 0.0, 0.4],
            [0.0, 0.8, 0.2],
        ]
        self.matrix = CSRMatrix.from_dense(self.dense)

    def test_matvec(self):
        x = [1.0, 2.0, 3.0]
        expected = (np.array(self.dense) @ np.array(x)).tolist()
        assert self.matrix.matvec(x) == pytest.approx(expected)

    def test_vecmat(self):
        x = [1.0, 2.0, 3.0]
        expected = (np.array(x) @ np.array(self.dense)).tolist()
        assert self.matrix.vecmat(x) == pytest.approx(expected)

    def test_vecmat_skips_zero_entries(self):
        assert self.matrix.vecmat([0.0, 1.0, 0.0]) == pytest.approx(
            [0.6, 0.0, 0.4]
        )

    def test_matvec_dimension_check(self):
        with pytest.raises(DimensionMismatchError):
            self.matrix.matvec([1.0, 2.0])

    def test_vecmat_dimension_check(self):
        with pytest.raises(DimensionMismatchError):
            self.matrix.vecmat([1.0])

    def test_transpose(self):
        transposed = self.matrix.transpose()
        assert transposed.to_dense() == np.array(self.dense).T.tolist()

    def test_transpose_involution(self):
        assert self.matrix.transpose().transpose() == self.matrix

    def test_matmul(self):
        squared = self.matrix.matmul(self.matrix)
        expected = (np.array(self.dense) @ np.array(self.dense)).tolist()
        assert np.allclose(squared.to_dense(), expected)

    def test_matmul_operator(self):
        assert (self.matrix @ self.matrix).allclose(
            self.matrix.matmul(self.matrix)
        )

    def test_matmul_dimension_check(self):
        other = CSRMatrix.zeros(2, 3)
        with pytest.raises(DimensionMismatchError):
            self.matrix.matmul(other)

    def test_scale(self):
        doubled = self.matrix.scale(2.0)
        assert np.allclose(
            doubled.to_dense(), (2 * np.array(self.dense)).tolist()
        )

    def test_add(self):
        total = self.matrix.add(self.matrix)
        assert total.allclose(self.matrix.scale(2.0))

    def test_add_shape_check(self):
        with pytest.raises(DimensionMismatchError):
            self.matrix.add(CSRMatrix.zeros(2, 2))

    def test_row_sums(self):
        assert self.matrix.row_sums() == pytest.approx([1.0, 1.0, 1.0])

    def test_select_columns(self):
        kept = self.matrix.select_columns([0, 1])
        dense = kept.to_dense()
        assert all(row[2] == 0.0 for row in dense)
        assert dense[1][0] == 0.6
        assert dense[2][1] == 0.8

    def test_drop_columns_complements_select(self):
        dropped = self.matrix.drop_columns([2])
        selected = self.matrix.select_columns([0, 1])
        assert dropped == selected

    def test_select_columns_out_of_range(self):
        with pytest.raises(ValidationError):
            self.matrix.select_columns([7])


class TestComparison:
    def test_allclose_different_sparsity(self):
        a = CSRMatrix.from_dense([[1.0, 0.0], [0.0, 1.0]])
        b = CSRMatrix.from_coo(
            2, 2, [(0, 0, 1.0), (0, 1, 1e-15), (1, 1, 1.0)]
        )
        assert a.allclose(b, tol=1e-12)
        assert not a.allclose(b, tol=1e-16)

    def test_eq_and_hash(self):
        a = CSRMatrix.from_dense([[1.0, 2.0]])
        b = CSRMatrix.from_dense([[1.0, 2.0]])
        assert a == b
        assert hash(a) == hash(b)

    def test_eq_other_type(self):
        assert CSRMatrix.identity(1) != "not a matrix"

    def test_repr(self):
        assert "nnz=1" in repr(CSRMatrix.identity(1))


class TestAgainstNumpyProperties:
    """The pure CSR kernels must agree with numpy on random inputs."""

    @given(dense_strategy())
    @settings(max_examples=60, deadline=None)
    def test_dense_round_trip(self, dense):
        matrix = CSRMatrix.from_dense(dense)
        assert np.allclose(matrix.to_dense(), dense)

    @given(dense_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matvec_matches_numpy(self, dense):
        matrix = CSRMatrix.from_dense(dense)
        x = np.arange(1.0, matrix.ncols + 1.0)
        assert np.allclose(
            matrix.matvec(list(x)), np.array(dense) @ x
        )

    @given(dense_strategy())
    @settings(max_examples=60, deadline=None)
    def test_vecmat_matches_numpy(self, dense):
        matrix = CSRMatrix.from_dense(dense)
        x = np.arange(1.0, matrix.nrows + 1.0)
        assert np.allclose(
            matrix.vecmat(list(x)), x @ np.array(dense)
        )

    @given(dense_strategy())
    @settings(max_examples=60, deadline=None)
    def test_transpose_matches_numpy(self, dense):
        matrix = CSRMatrix.from_dense(dense)
        assert np.allclose(
            matrix.transpose().to_dense(), np.array(dense).T
        )

    @given(dense_strategy(max_dim=5))
    @settings(max_examples=40, deadline=None)
    def test_matmul_matches_numpy(self, dense):
        matrix = CSRMatrix.from_dense(dense)
        square = matrix.transpose().matmul(matrix)
        expected = np.array(dense).T @ np.array(dense)
        assert np.allclose(square.to_dense(), expected)

    @given(dense_strategy())
    @settings(max_examples=40, deadline=None)
    def test_validate_accepts_all_constructed(self, dense):
        matrix = CSRMatrix.from_dense(dense)
        matrix.validate()  # must not raise
