"""Hypothesis property tests over the core query-processing invariants.

Random stochastic matrices, initial distributions and windows are
generated; the central invariants of the paper are asserted:

1. OB == QB == brute-force enumeration (possible-worlds correctness),
2. the for-all complement identity,
3. the k-times distribution is a probability distribution consistent
   with exists/for-all,
4. C(t) == blocked-matrix evaluation,
5. monotonicity: growing the window region or time set can only raise
   the exists-probability.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    MarkovChain,
    PossibleWorldEnumerator,
    SpatioTemporalWindow,
    StateDistribution,
    ktimes_distribution,
    ktimes_distribution_blocked,
    ob_exists_probability,
    ob_forall_probability,
    qb_exists_probability,
)


@st.composite
def chain_strategy(draw, max_states: int = 5):
    """A random row-stochastic chain, 2..max_states states."""
    n = draw(st.integers(2, max_states))
    rows = []
    for _ in range(n):
        weights = draw(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
        total = sum(weights)
        assume(total > 1e-6)
        rows.append([w / total for w in weights])
    return MarkovChain(rows)


@st.composite
def instance_strategy(draw, max_states: int = 5, max_time: int = 5):
    """A (chain, initial, window) triple."""
    chain = draw(chain_strategy(max_states))
    n = chain.n_states
    weights = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    total = sum(weights)
    assume(total > 1e-6)
    initial = StateDistribution(np.asarray(weights) / total)
    region = draw(
        st.sets(st.integers(0, n - 1), min_size=1, max_size=n)
    )
    times = draw(
        st.sets(st.integers(1, max_time), min_size=1, max_size=max_time)
    )
    window = SpatioTemporalWindow(frozenset(region), frozenset(times))
    return chain, initial, window


class TestPossibleWorldsCorrectness:
    @given(instance_strategy())
    @settings(max_examples=60, deadline=None)
    def test_ob_matches_enumeration(self, instance):
        chain, initial, window = instance
        expected = PossibleWorldEnumerator(
            chain, initial, window.t_end
        ).exists_probability(window)
        assert ob_exists_probability(
            chain, initial, window
        ) == pytest.approx(expected, abs=1e-9)

    @given(instance_strategy())
    @settings(max_examples=60, deadline=None)
    def test_qb_matches_ob(self, instance):
        chain, initial, window = instance
        assert qb_exists_probability(
            chain, initial, window
        ) == pytest.approx(
            ob_exists_probability(chain, initial, window), abs=1e-12
        )

    @given(instance_strategy())
    @settings(max_examples=40, deadline=None)
    def test_result_is_probability(self, instance):
        chain, initial, window = instance
        p = ob_exists_probability(chain, initial, window)
        assert -1e-12 <= p <= 1.0 + 1e-12


class TestForAllIdentity:
    @given(instance_strategy())
    @settings(max_examples=40, deadline=None)
    def test_forall_matches_enumeration(self, instance):
        chain, initial, window = instance
        expected = PossibleWorldEnumerator(
            chain, initial, window.t_end
        ).forall_probability(window)
        assert ob_forall_probability(
            chain, initial, window
        ) == pytest.approx(expected, abs=1e-9)

    @given(instance_strategy())
    @settings(max_examples=40, deadline=None)
    def test_forall_le_exists(self, instance):
        chain, initial, window = instance
        forall = ob_forall_probability(chain, initial, window)
        exists = ob_exists_probability(chain, initial, window)
        assert forall <= exists + 1e-10


class TestKTimes:
    @given(instance_strategy())
    @settings(max_examples=50, deadline=None)
    def test_distribution_and_identities(self, instance):
        chain, initial, window = instance
        distribution = ktimes_distribution(chain, initial, window)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-9)
        assert (distribution >= -1e-12).all()
        exists = ob_exists_probability(chain, initial, window)
        assert exists == pytest.approx(
            1.0 - distribution[0], abs=1e-9
        )
        forall = ob_forall_probability(chain, initial, window)
        assert forall == pytest.approx(
            distribution[window.duration], abs=1e-9
        )

    @given(instance_strategy())
    @settings(max_examples=40, deadline=None)
    def test_ct_equals_blocked(self, instance):
        chain, initial, window = instance
        assert np.allclose(
            ktimes_distribution(chain, initial, window),
            ktimes_distribution_blocked(chain, initial, window),
            atol=1e-10,
        )


class TestMonotonicity:
    @given(instance_strategy(max_states=4, max_time=4))
    @settings(max_examples=40, deadline=None)
    def test_larger_region_raises_exists(self, instance):
        chain, initial, window = instance
        assume(len(window.region) < chain.n_states)
        extra = next(
            s
            for s in range(chain.n_states)
            if s not in window.region
        )
        bigger = window.with_region(window.region | {extra})
        assert ob_exists_probability(
            chain, initial, bigger
        ) >= ob_exists_probability(chain, initial, window) - 1e-10

    @given(instance_strategy(max_states=4, max_time=4))
    @settings(max_examples=40, deadline=None)
    def test_more_times_raise_exists(self, instance):
        chain, initial, window = instance
        bigger = SpatioTemporalWindow(
            window.region, window.times | {window.t_end + 1}
        )
        assert ob_exists_probability(
            chain, initial, bigger
        ) >= ob_exists_probability(chain, initial, window) - 1e-10

    @given(instance_strategy(max_states=4, max_time=4))
    @settings(max_examples=40, deadline=None)
    def test_more_times_lower_forall(self, instance):
        chain, initial, window = instance
        bigger = SpatioTemporalWindow(
            window.region, window.times | {window.t_end + 1}
        )
        assert ob_forall_probability(
            chain, initial, bigger
        ) <= ob_forall_probability(chain, initial, window) + 1e-10


class TestBackendAgreement:
    @given(instance_strategy(max_states=4, max_time=4))
    @settings(max_examples=25, deadline=None)
    def test_pure_equals_scipy(self, instance):
        chain, initial, window = instance
        assert ob_exists_probability(
            chain, initial, window, backend="pure"
        ) == pytest.approx(
            ob_exists_probability(chain, initial, window,
                                  backend="scipy"),
            abs=1e-12,
        )


class TestExtensionInvariants:
    @given(instance_strategy(max_states=4, max_time=4))
    @settings(max_examples=30, deadline=None)
    def test_first_passage_mass_and_cdf(self, instance):
        from repro import first_passage_distribution

        chain, initial, window = instance
        result = first_passage_distribution(
            chain, initial, window.region, window.t_end
        )
        assert result.pmf.sum() + result.never_probability == (
            pytest.approx(1.0, abs=1e-9)
        )
        # the CDF at t_end equals the exists query over [0 .. t_end]
        full_window = SpatioTemporalWindow(
            window.region, frozenset(range(0, window.t_end + 1))
        )
        assert result.entry_by(window.t_end) == pytest.approx(
            ob_exists_probability(chain, initial, full_window),
            abs=1e-9,
        )

    @given(instance_strategy(max_states=4, max_time=4))
    @settings(max_examples=30, deadline=None)
    def test_anchored_pattern_equals_exists(self, instance):
        """An explicit unrolled pattern reproduces any exists window."""
        from repro.core.sequence import Pattern, sequence_probability

        chain, initial, window = instance
        dot = Pattern.any()
        region = Pattern.states(window.region)
        # build sum-of-positions pattern: at least one query time in S_q
        alternatives = None
        for query_time in sorted(window.times):
            arm = Pattern.epsilon()
            for position in range(window.t_end + 1):
                arm = arm.then(
                    region if position == query_time else dot
                )
            alternatives = arm if alternatives is None else (
                alternatives.alt(arm)
            )
        probability = sequence_probability(
            chain, initial, alternatives, length=window.t_end
        )
        assert probability == pytest.approx(
            ob_exists_probability(chain, initial, window), abs=1e-9
        )

    @given(instance_strategy(max_states=4, max_time=4))
    @settings(max_examples=30, deadline=None)
    def test_interval_bounds_enclose_exact(self, instance):
        from repro import (
            IntervalMarkovChain,
            bound_exists_probability,
        )

        chain, initial, window = instance
        interval = IntervalMarkovChain.from_chains([chain])
        low, high = bound_exists_probability(interval, initial, window)
        exact = ob_exists_probability(chain, initial, window)
        assert low == pytest.approx(exact, abs=1e-9)
        assert high == pytest.approx(exact, abs=1e-9)
