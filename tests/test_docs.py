"""Documentation stays true: doctests run, links resolve.

Two guarantees:

* every ``>>>`` snippet in ``docs/API.md`` executes and produces the
  output the page shows (doctest);
* every relative markdown link in ``README.md`` and ``docs/*.md``
  points at a file that exists, so refactors cannot silently orphan
  the documentation.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
PAGES = [REPO_ROOT / "README.md"] + DOCS

# [text](target) -- excluding images; target captured up to ) or space
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def test_docs_directory_is_populated():
    names = {page.name for page in DOCS}
    assert {"ARCHITECTURE.md", "API.md", "OPERATIONS.md"} <= names


def test_api_doctests():
    result = doctest.testfile(
        str(REPO_ROOT / "docs" / "API.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert result.attempted > 20, "API.md lost its runnable examples"
    assert result.failed == 0


@pytest.mark.parametrize(
    "page", PAGES, ids=[str(p.relative_to(REPO_ROOT)) for p in PAGES]
)
def test_relative_links_resolve(page: Path):
    broken = []
    for target in _LINK.findall(page.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page anchor
            continue
        if not (page.parent / path).exists():
            broken.append(target)
    assert not broken, f"{page.name}: broken relative links {broken}"
