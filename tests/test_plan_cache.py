"""Tests for the cross-query plan cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarkovChain,
    PlanCache,
    PSTExistsQuery,
    QueryEngine,
    SpatioTemporalWindow,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import ValidationError

from conftest import random_chain, random_distribution

WINDOW = SpatioTemporalWindow(frozenset({0, 1}), frozenset({2, 3}))


def build_database(n_states=8, n_objects=6, seed=0):
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase.with_chain(
        random_chain(n_states, rng, density=0.5)
    )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"o{index}", random_distribution(n_states, rng)
            )
        )
    return database


class TestFingerprint:
    def test_equal_chains_share_fingerprint(self, paper_chain):
        clone = MarkovChain(paper_chain.to_dense())
        assert clone is not paper_chain
        assert clone.fingerprint() == paper_chain.fingerprint()

    def test_different_chains_differ(
        self, paper_chain, paper_chain_section6
    ):
        fingerprints = {
            paper_chain.fingerprint(),
            paper_chain_section6.fingerprint(),
        }
        assert len(fingerprints) == 2

    def test_fingerprint_is_cached(self, paper_chain):
        assert paper_chain.fingerprint() is paper_chain.fingerprint()


class TestConstructionCaching:
    def test_absorbing_hit_returns_same_object(self, paper_chain):
        cache = PlanCache()
        first = cache.absorbing(paper_chain, {0, 1})
        second = cache.absorbing(paper_chain, {0, 1})
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.constructions == {"absorbing": 1}

    def test_equal_value_chain_hits(self, paper_chain):
        cache = PlanCache()
        first = cache.absorbing(paper_chain, {0, 1})
        clone = MarkovChain(paper_chain.to_dense())
        assert cache.absorbing(clone, {0, 1}) is first

    def test_regions_are_distinct_entries(self, paper_chain):
        cache = PlanCache()
        cache.absorbing(paper_chain, {0})
        cache.absorbing(paper_chain, {0, 1})
        assert cache.stats.constructions == {"absorbing": 2}

    def test_doubled_cached_separately(self, paper_chain):
        cache = PlanCache()
        cache.absorbing(paper_chain, {0, 1})
        doubled = cache.doubled(paper_chain, {0, 1})
        assert cache.doubled(paper_chain, {0, 1}) is doubled
        assert cache.stats.constructions == {
            "absorbing": 1,
            "doubled": 1,
        }

    def test_lru_eviction(self, paper_chain):
        cache = PlanCache(maxsize=2)
        first = cache.absorbing(paper_chain, {0})
        cache.absorbing(paper_chain, {1})
        cache.absorbing(paper_chain, {2})  # evicts {0}
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        rebuilt = cache.absorbing(paper_chain, {0})
        assert rebuilt is not first

    def test_clear_keeps_counters(self, paper_chain):
        cache = PlanCache()
        cache.absorbing(paper_chain, {0})
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.total_constructions == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ValidationError):
            PlanCache(maxsize=0)


class TestBackwardVectors:
    def test_one_pass_serves_all_starts(self, paper_chain, paper_window):
        cache = PlanCache()
        vectors = cache.backward_vectors(
            paper_chain, paper_window, [0, 1, 2]
        )
        assert set(vectors) == {0, 1, 2}
        assert cache.stats.constructions == {
            "absorbing": 1,
            "backward": 1,
        }

    def test_repeat_is_all_hits(self, paper_chain, paper_window):
        cache = PlanCache()
        first = cache.backward_vectors(paper_chain, paper_window, [0, 1])
        before = cache.stats.total_constructions
        second = cache.backward_vectors(
            paper_chain, paper_window, [0, 1]
        )
        assert cache.stats.total_constructions == before
        for start in (0, 1):
            assert second[start] is first[start]

    def test_cached_vectors_are_immutable(
        self, paper_chain, paper_window
    ):
        cache = PlanCache()
        vectors = cache.backward_vectors(paper_chain, paper_window, [0])
        with pytest.raises(ValueError):
            vectors[0][0] = 42.0


class TestEngineIntegration:
    def test_repeated_query_constructs_once(self):
        database = build_database()
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)
        first = engine.evaluate(query, method="qb")
        constructions = engine.plan_cache.stats.total_constructions
        assert constructions > 0
        second = engine.evaluate(query, method="qb")
        assert (
            engine.plan_cache.stats.total_constructions == constructions
        )
        assert engine.plan_cache.stats.hits > 0
        assert first.values == second.values

    def test_ob_and_qb_share_absorbing_matrices(self):
        database = build_database(seed=1)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)
        engine.evaluate(query, method="qb")
        engine.evaluate(query, method="ob")
        assert engine.plan_cache.stats.constructions["absorbing"] == 1

    def test_shared_cache_across_engines(self):
        database = build_database(seed=2)
        cache = PlanCache()
        QueryEngine(database, plan_cache=cache).evaluate(
            PSTExistsQuery(WINDOW), method="ob"
        )
        constructions = cache.stats.total_constructions
        QueryEngine(database, plan_cache=cache).evaluate(
            PSTExistsQuery(WINDOW), method="ob"
        )
        assert cache.stats.total_constructions == constructions

    def test_first_passage_uses_cache(self):
        database = build_database(seed=3)
        engine = QueryEngine(database)
        engine.first_passage("o0", {0, 1}, horizon=5)
        constructions = engine.plan_cache.stats.total_constructions
        engine.first_passage("o1", {0, 1}, horizon=5)
        assert (
            engine.plan_cache.stats.total_constructions == constructions
        )

    def test_standalone_entry_points_accept_cache(self, paper_chain):
        from repro import ob_exists_probability, qb_exists_probability

        cache = PlanCache()
        start = StateDistribution.point(3, 1)
        ob = ob_exists_probability(
            paper_chain, start, WINDOW, plan_cache=cache
        )
        qb = qb_exists_probability(
            paper_chain, start, WINDOW, plan_cache=cache
        )
        assert ob == pytest.approx(qb, abs=1e-12)
        assert cache.stats.constructions["absorbing"] == 1
