"""Tests for the MarkovChain substrate."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import MarkovChain, StateDistribution
from repro.core.errors import (
    DimensionMismatchError,
    NotStochasticError,
    ValidationError,
)
from repro.linalg.sparse import CSRMatrix

from conftest import random_chain


class TestConstruction:
    def test_from_dense_list(self, paper_chain):
        assert paper_chain.n_states == 3
        assert paper_chain.nnz == 5

    def test_from_scipy(self):
        chain = MarkovChain(sp.identity(4, format="csc"))
        assert chain.n_states == 4

    def test_from_pure_csr(self):
        pure = CSRMatrix.from_dense([[0.5, 0.5], [1.0, 0.0]])
        chain = MarkovChain(pure)
        assert chain.transition_probability(0, 1) == 0.5

    def test_from_dict(self):
        chain = MarkovChain.from_dict(
            2, {0: {0: 0.5, 1: 0.5}, 1: {0: 1.0}}
        )
        assert chain.transition_probability(1, 0) == 1.0

    def test_identity(self):
        chain = MarkovChain.identity(3)
        assert all(chain.is_absorbing_state(s) for s in range(3))

    def test_non_square_rejected(self):
        with pytest.raises(DimensionMismatchError):
            MarkovChain(np.ones((2, 3)) / 3)

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            MarkovChain([0.5, 0.5])

    def test_row_not_summing_to_one(self):
        with pytest.raises(NotStochasticError):
            MarkovChain([[0.5, 0.4], [0.5, 0.5]])

    def test_negative_entry(self):
        with pytest.raises(NotStochasticError):
            MarkovChain([[1.5, -0.5], [0.5, 0.5]])

    def test_error_names_offending_row(self):
        with pytest.raises(NotStochasticError, match="row 1"):
            MarkovChain([[1.0, 0.0], [0.9, 0.0]])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            MarkovChain(np.zeros((0, 0)))


class TestInspection:
    def test_transition_probability(self, paper_chain):
        assert paper_chain.transition_probability(1, 0) == 0.6
        assert paper_chain.transition_probability(0, 0) == 0.0

    def test_transition_probability_range_check(self, paper_chain):
        with pytest.raises(ValidationError):
            paper_chain.transition_probability(5, 0)

    def test_successors(self, paper_chain):
        assert paper_chain.successors(0) == [2]
        assert paper_chain.successors(1) == [0, 2]
        assert paper_chain.successors(2) == [1, 2]

    def test_successor_distribution(self, paper_chain):
        dist = paper_chain.successor_distribution(2)
        assert dist.probability(1) == pytest.approx(0.8)
        assert dist.probability(2) == pytest.approx(0.2)

    def test_is_absorbing(self):
        chain = MarkovChain([[1.0, 0.0], [0.5, 0.5]])
        assert chain.is_absorbing_state(0)
        assert not chain.is_absorbing_state(1)

    def test_repr(self, paper_chain):
        assert "n_states=3" in repr(paper_chain)


class TestDynamics:
    def test_step_corollary1(self, paper_chain):
        dist = StateDistribution.point(3, 1)
        stepped = paper_chain.step(dist)
        assert stepped.vector == pytest.approx([0.6, 0.0, 0.4])

    def test_step_dimension_check(self, paper_chain):
        with pytest.raises(DimensionMismatchError):
            paper_chain.step(StateDistribution.point(2, 0))

    def test_propagate_corollary2(self, paper_chain):
        # the paper's P(o, 2) = (0, 0.32, 0.68) for start s2
        dist = paper_chain.propagate(StateDistribution.point(3, 1), 2)
        assert dist.vector == pytest.approx([0.0, 0.32, 0.68])

    def test_propagate_zero_steps_is_identity(self, paper_chain):
        start = StateDistribution.point(3, 0)
        assert paper_chain.propagate(start, 0).allclose(start)

    def test_propagate_negative_rejected(self, paper_chain):
        with pytest.raises(ValidationError):
            paper_chain.propagate(StateDistribution.point(3, 0), -1)

    def test_marginals_match_propagate(self, paper_chain):
        start = StateDistribution.point(3, 1)
        marginals = paper_chain.marginals(start, 4)
        assert len(marginals) == 5
        for steps, marginal in enumerate(marginals):
            assert marginal.allclose(paper_chain.propagate(start, steps))

    def test_power_matches_repeated_multiplication(self, paper_chain):
        squared = paper_chain.power(2).toarray()
        dense = paper_chain.to_dense()
        assert np.allclose(squared, dense @ dense)

    def test_power_zero_is_identity(self, paper_chain):
        assert np.allclose(paper_chain.power(0).toarray(), np.eye(3))

    def test_power_negative_rejected(self, paper_chain):
        with pytest.raises(ValidationError):
            paper_chain.power(-2)

    def test_transpose_cached(self, paper_chain):
        first = paper_chain.transpose_matrix()
        second = paper_chain.transpose_matrix()
        assert first is second
        assert np.allclose(first.toarray(), paper_chain.to_dense().T)


class TestReachability:
    def test_reachable_in_exact_steps(self, paper_chain):
        assert paper_chain.reachable_in([1], 1) == frozenset({0, 2})
        assert paper_chain.reachable_in([0], 2) == frozenset({1, 2})

    def test_reachable_within(self, paper_chain):
        assert paper_chain.reachable_within([0], 0) == frozenset({0})
        assert paper_chain.reachable_within([0], 2) == frozenset(
            {0, 1, 2}
        )

    def test_can_reach_immediate(self, paper_chain):
        assert paper_chain.can_reach([0], [0], 0)

    def test_can_reach_with_steps(self, paper_chain):
        assert paper_chain.can_reach([0], [1], 2)
        assert not paper_chain.can_reach([0], [1], 1)

    def test_can_reach_never(self):
        chain = MarkovChain([[1.0, 0.0], [0.0, 1.0]])
        assert not chain.can_reach([0], [1], 100)

    def test_reachability_range_check(self, paper_chain):
        with pytest.raises(ValidationError):
            paper_chain.reachable_within([9], 1)


class TestStationary:
    def test_stationary_fixed_point(self, paper_chain):
        stationary = paper_chain.stationary_distribution()
        stepped = paper_chain.step(stationary)
        assert stationary.allclose(stepped, tol=1e-8)

    def test_stationary_two_state(self):
        chain = MarkovChain([[0.9, 0.1], [0.5, 0.5]])
        stationary = chain.stationary_distribution()
        # solve pi = pi P analytically: pi = (5/6, 1/6)
        assert stationary.vector == pytest.approx(
            [5 / 6, 1 / 6], abs=1e-8
        )

    def test_stationary_periodic_chain(self):
        # a 2-cycle has period 2; Cesaro damping must still converge
        chain = MarkovChain([[0.0, 1.0], [1.0, 0.0]])
        stationary = chain.stationary_distribution()
        assert stationary.vector == pytest.approx([0.5, 0.5], abs=1e-8)


class TestConversions:
    def test_to_pure_round_trip(self, paper_chain):
        pure = paper_chain.to_pure()
        back = MarkovChain(pure)
        assert back == paper_chain

    def test_triples(self, paper_chain):
        triples = set(paper_chain.triples())
        assert (1, 0, 0.6) in triples
        assert len(triples) == paper_chain.nnz

    def test_equality_different_chain(self, paper_chain):
        other = MarkovChain.identity(3)
        assert paper_chain != other
        assert paper_chain != "chain"


class TestRestriction:
    def test_restricted_closed_set_is_exact(self):
        # states {0,1} are closed: restriction must preserve dynamics
        chain = MarkovChain(
            [
                [0.5, 0.5, 0.0],
                [1.0, 0.0, 0.0],
                [0.2, 0.3, 0.5],
            ]
        )
        sub, mapping = chain.restricted([0, 1])
        assert mapping == {0: 0, 1: 1}
        assert np.allclose(
            sub.to_dense(), [[0.5, 0.5], [1.0, 0.0]]
        )

    def test_restricted_renormalises_leaky_rows(self):
        chain = MarkovChain(
            [
                [0.5, 0.25, 0.25],
                [0.5, 0.5, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        sub, _ = chain.restricted([0, 1])
        # row 0 lost 0.25 to state 2; kept mass renormalised
        assert np.allclose(
            sub.to_dense()[0], [0.5 / 0.75, 0.25 / 0.75]
        )

    def test_restricted_dead_row_becomes_absorbing(self):
        chain = MarkovChain(
            [
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [1.0, 0.0, 0.0],
            ]
        )
        sub, mapping = chain.restricted([1])
        assert sub.is_absorbing_state(mapping[1])

    def test_restricted_empty_rejected(self, paper_chain):
        with pytest.raises(ValidationError):
            paper_chain.restricted([])


class TestRandomChains:
    def test_random_chains_validate(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            chain = random_chain(6, rng)
            chain.validate()  # must not raise

    def test_propagation_preserves_mass(self):
        rng = np.random.default_rng(6)
        chain = random_chain(8, rng)
        dist = StateDistribution.uniform(8)
        for steps in (1, 3, 7):
            assert chain.propagate(dist, steps).vector.sum() == (
                pytest.approx(1.0)
            )
