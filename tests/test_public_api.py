"""API-hygiene tests for the top-level package."""

from __future__ import annotations

import pydoc


import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing {name}"

    def test_no_private_names_exported(self):
        private = [
            n for n in repro.__all__
            if n.startswith("_") and n != "__version__"
        ]
        assert not private

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert major.isdigit() and minor.isdigit() and patch.isdigit()

    def test_every_export_has_a_docstring(self):
        undocumented = []
        for name in repro.__all__:
            if name == "__version__":
                continue
            item = getattr(repro, name)
            if isinstance(item, type) or callable(item):
                if not (getattr(item, "__doc__", None) or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_errors_form_one_hierarchy(self):
        for name in (
            "ValidationError",
            "NotStochasticError",
            "DimensionMismatchError",
            "StateSpaceError",
            "QueryError",
            "ObservationError",
            "InfeasibleEvidenceError",
            "BackendError",
            "SerializationError",
        ):
            error_class = getattr(repro, name)
            assert issubclass(error_class, repro.ReproError)

    def test_help_renders(self):
        # pydoc walks the whole public surface; a broken signature or
        # import loop would raise here
        text = pydoc.render_doc(repro)
        assert "Querying Uncertain Spatio-Temporal Data" in text
