"""Cross-backend parity: scipy vs pure vs native at 1e-12.

The native backend is an optimisation layer, never a semantics layer:
whatever combination of predicate (exists / for-all / k-times),
dispatch tier (serial / thread / process) and backend answers a query,
the values must agree with the scipy serial reference to 1e-12 -- the
same tolerance every other execution tier in this repo is held to.
Also covered here:

* the numba-absent fallback path, forced via ``REPRO_DISABLE_NUMBA``
  (the dense-BLAS kernels must be a drop-in for the JIT ones);
* runtime degradation ``native -> scipy`` under
  ``REPRO_NATIVE_FORCE_FAIL``, recorded on ``plan.degradations``;
* streaming ticks on a native-promoted chain stream agreeing with
  batch re-evaluation of every slid window;
* the prewarm regression: compiling/warming the native kernels must
  not change a single planning decision.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    QueryEngine,
    SpatioTemporalWindow,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.markov import MarkovChain
from repro.core.planner import PlanOptions
from repro.exec import dispatch
from repro.linalg import native
from repro.linalg.ops import available_backends

TOLERANCE = 1e-12
N_STATES = 48
WINDOW = SpatioTemporalWindow.from_ranges(8, 18, 4, 7)

QUERIES = [
    PSTExistsQuery(WINDOW),
    PSTForAllQuery(WINDOW),
    PSTKTimesQuery(WINDOW, k=2),
]
DISPATCHES = ["serial", "thread", "process"]


def dense_chain(seed: int, n_states: int = N_STATES) -> MarkovChain:
    """A chain dense enough for the native kernels to be exercised."""
    rng = np.random.default_rng(seed)
    matrix = rng.random((n_states, n_states))
    matrix *= rng.random((n_states, n_states)) < 0.45
    matrix += np.eye(n_states) * 0.05  # no empty rows
    matrix /= matrix.sum(axis=1, keepdims=True)
    return MarkovChain(sp.csr_matrix(matrix))


def build_database(seed: int = 0, n_objects: int = 24):
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase.with_chain(
        dense_chain(seed), chain_id="chain-0"
    )
    for index in range(n_objects):
        database.add(
            UncertainObject.at_state(
                f"obj-{index}",
                N_STATES,
                int(rng.integers(0, N_STATES)),
                int(rng.integers(0, 3)),
                chain_id="chain-0",
            )
        )
    return database


def assert_values_close(result, reference):
    assert set(result.values) == set(reference.values)
    for object_id, expected in reference.values.items():
        got = np.asarray(result.values[object_id], dtype=float)
        want = np.asarray(expected, dtype=float)
        assert got.shape == want.shape
        assert float(np.max(np.abs(got - want))) < TOLERANCE, object_id


class TestRegistry:
    def test_native_backend_registered(self):
        assert "native" in available_backends()

    def test_unknown_backend_option_rejected(self):
        from repro.core.errors import ValidationError

        with pytest.raises(ValidationError):
            PlanOptions(backend="cuda")


class TestBatchParity:
    """Every (query, dispatch, backend) cell against scipy serial."""

    @pytest.fixture(scope="class")
    def database(self):
        return build_database()

    @pytest.fixture(scope="class")
    def references(self, database):
        engine = QueryEngine(database)
        return {
            type(query).__name__: engine.evaluate(
                query,
                options=PlanOptions(backend="scipy", dispatch="serial"),
            )
            for query in QUERIES
        }

    @pytest.mark.parametrize(
        "query", QUERIES, ids=lambda q: type(q).__name__
    )
    @pytest.mark.parametrize("mode", DISPATCHES)
    @pytest.mark.parametrize("backend", ["scipy", "native"])
    def test_backend_dispatch_parity(
        self, database, references, query, mode, backend
    ):
        engine = QueryEngine(database)
        result = engine.evaluate(
            query,
            options=PlanOptions(
                backend=backend, dispatch=mode, max_workers=2
            ),
        )
        assert_values_close(result, references[type(query).__name__])

    @pytest.mark.parametrize(
        "query", QUERIES, ids=lambda q: type(q).__name__
    )
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_pure_backend_parity(self, database, references, query, mode):
        # the pure-python backend cannot publish shared-memory CSR
        # views, so it has no process tier; serial and thread must
        # still agree with the scipy reference
        engine = QueryEngine(database, backend="pure")
        result = engine.evaluate(
            query, options=PlanOptions(dispatch=mode, max_workers=2)
        )
        assert_values_close(result, references[type(query).__name__])

    def test_explain_shows_backend_and_prediction(self, database):
        engine = QueryEngine(database)
        engine.evaluate(
            QUERIES[0], options=PlanOptions(backend="native")
        )
        description = engine.explain(
            QUERIES[0], options=PlanOptions(backend="native")
        ).describe()
        assert "backend=native" in description
        assert "predicted=" in description


class TestNumbaFallbackToggle:
    """REPRO_DISABLE_NUMBA forces the dense-BLAS path everywhere."""

    def test_toggle_reports_fallback_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        status = native.compile_status()
        assert status["numba_disabled"] is True
        assert status["mode"] == "dense-blas"

    @pytest.mark.parametrize(
        "query", QUERIES, ids=lambda q: type(q).__name__
    )
    def test_fallback_parity(self, monkeypatch, query):
        database = build_database(seed=3)
        engine = QueryEngine(database)
        reference = engine.evaluate(
            query, options=PlanOptions(backend="scipy")
        )
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        result = QueryEngine(database).evaluate(
            query, options=PlanOptions(backend="native")
        )
        assert_values_close(result, reference)


class TestRuntimeDegradation:
    """A failing native kernel falls to scipy, recorded on the plan."""

    @pytest.mark.filterwarnings("ignore:degraded native")
    def test_forced_failure_degrades_and_answers(self, monkeypatch):
        database = build_database(seed=4)
        engine = QueryEngine(database)
        reference = engine.evaluate(
            QUERIES[0], options=PlanOptions(backend="scipy")
        )
        monkeypatch.setenv("REPRO_NATIVE_FORCE_FAIL", "1")
        result = QueryEngine(database).evaluate(
            QUERIES[0], options=PlanOptions(backend="native")
        )
        assert_values_close(result, reference)
        assert any(
            "native -> scipy" in event
            for event in result.plan.degradations
        )

    def test_streaming_tick_degrades_and_answers(self, monkeypatch):
        database = build_database(seed=5)
        reference_engine = QueryEngine(database)
        query = PSTKTimesQuery(WINDOW)
        monkeypatch.setenv("REPRO_NATIVE_FORCE_FAIL", "1")
        standing = QueryEngine(database).watch(query, stride=1)
        assert any(
            stream.backend == "native"
            for stream in standing._chains.values()
        )
        result = standing.tick()
        plan = standing.explain()
        assert all(
            group.backend == "scipy" for group in plan.groups
        )
        assert any(
            "native -> scipy" in event for event in plan.degradations
        )
        monkeypatch.delenv("REPRO_NATIVE_FORCE_FAIL")
        reference = reference_engine.evaluate(
            PSTKTimesQuery(result.query.window),
            options=PlanOptions(backend="scipy"),
        )
        assert_values_close(result, reference)


class TestStreamingParity:
    """Native-promoted chain streams tick within 1e-12 of batch."""

    def test_ktimes_ticks_match_batch(self):
        database = build_database(seed=6)
        query = PSTKTimesQuery(WINDOW)
        standing = QueryEngine(database).watch(query, stride=1)
        assert any(
            stream.backend == "native"
            for stream in standing._chains.values()
        )
        reference_engine = QueryEngine(database)
        for _ in range(4):
            result = standing.tick()
            reference = reference_engine.evaluate(
                PSTKTimesQuery(result.query.window),
                options=PlanOptions(backend="scipy"),
            )
            assert_values_close(result, reference)
        assert any(
            group.backend == "native"
            for group in standing.explain().groups
        )

    def test_exists_ticks_match_batch(self):
        database = build_database(seed=7)
        query = PSTExistsQuery(WINDOW)
        standing = QueryEngine(database).watch(query, stride=1)
        reference_engine = QueryEngine(database)
        for _ in range(3):
            result = standing.tick()
            reference = reference_engine.evaluate(
                PSTExistsQuery(result.query.window),
                options=PlanOptions(backend="scipy"),
            )
            assert_values_close(result, reference)


class TestPrewarm:
    """Warming the kernels never changes a planning decision."""

    def test_prewarm_marks_status(self):
        dispatch.prewarm(2, compile_native=True)
        assert native.compile_status()["prewarmed"] is True

    def test_cold_and_warm_plans_identical(self):
        database = build_database(seed=8)
        cold_engine = QueryEngine(database)
        cold = [
            cold_engine.planner.plan(query).describe()
            for query in QUERIES
        ]
        native.prewarm()
        dispatch.prewarm(2, compile_native=True)
        warm_engine = QueryEngine(database)
        warm = [
            warm_engine.planner.plan(query).describe()
            for query in QUERIES
        ]
        assert cold == warm

    def test_prewarm_swallows_forced_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_FORCE_FAIL", "1")
        native.prewarm()  # must not raise
        assert os.environ.get("REPRO_NATIVE_FORCE_FAIL") == "1"


class TestServicePrewarm:
    def test_service_startup_triggers_prewarm(self):
        import asyncio

        native._PREWARMED = False
        database = build_database(seed=9, n_objects=8)
        engine = QueryEngine(database)

        async def main():
            from repro import QueryService

            async with QueryService(engine) as service:
                return await service.submit(PSTExistsQuery(WINDOW))

        result = asyncio.run(main())
        assert result.values
        assert native.compile_status()["prewarmed"] is True
