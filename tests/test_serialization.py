"""Tests for persistence of chains and databases."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    Observation,
    ObservationSet,
    PSTExistsQuery,
    QueryEngine,
    SpatioTemporalWindow,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
    load_chain,
    load_database,
    save_chain,
    save_database,
)
from repro.core.errors import SerializationError

from conftest import random_chain


class TestChainRoundTrip:
    def test_exact_round_trip(self, tmp_path, paper_chain):
        path = tmp_path / "chain.npz"
        save_chain(paper_chain, path)
        loaded = load_chain(path)
        assert loaded == paper_chain

    def test_random_chain_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        chain = random_chain(20, rng)
        path = tmp_path / "chain.npz"
        save_chain(chain, path)
        assert load_chain(path) == chain

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_chain(tmp_path / "nope.npz")

    def test_corrupt_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(SerializationError):
            load_chain(path)


def build_database(seed=0):
    rng = np.random.default_rng(seed)
    n = 6
    database = TrajectoryDatabase(n)
    database.register_chain("default", random_chain(n, rng))
    database.register_chain("fast", random_chain(n, rng))
    database.add(UncertainObject.at_state("a", n, 2))
    database.add(
        UncertainObject.with_distribution(
            "b", StateDistribution.uniform(n, [0, 1, 2]), chain_id="fast"
        )
    )
    database.add(
        UncertainObject(
            "c",
            ObservationSet.of(
                Observation.precise(0, n, 1),
                Observation.uniform(3, n, [3, 4]),
            ),
        )
    )
    return database


class TestDatabaseRoundTrip:
    def test_structure_preserved(self, tmp_path):
        database = build_database()
        save_database(database, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert loaded.n_states == database.n_states
        assert loaded.chain_ids == database.chain_ids
        assert loaded.object_ids == database.object_ids
        assert loaded.get("c").observations.times == (0, 3)
        assert loaded.get("b").chain_id == "fast"

    def test_query_answers_preserved(self, tmp_path):
        database = build_database(seed=1)
        save_database(database, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        window = SpatioTemporalWindow(frozenset({0, 1}), frozenset({2}))
        original = QueryEngine(database).evaluate(
            PSTExistsQuery(window), method="qb"
        )
        reloaded = QueryEngine(loaded).evaluate(
            PSTExistsQuery(window), method="qb"
        )
        for object_id in database.object_ids:
            assert reloaded.values[object_id] == pytest.approx(
                original.values[object_id], abs=1e-12
            )

    def test_observation_distributions_preserved(self, tmp_path):
        database = build_database(seed=2)
        save_database(database, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        for obj in database:
            reloaded = loaded.get(obj.object_id)
            for original_obs, new_obs in zip(
                obj.observations, reloaded.observations
            ):
                assert np.allclose(
                    original_obs.distribution.vector,
                    new_obs.distribution.vector,
                    atol=1e-12,
                )

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SerializationError):
            load_database(tmp_path / "missing")

    def test_corrupt_metadata(self, tmp_path):
        directory = tmp_path / "db"
        directory.mkdir()
        (directory / "meta.json").write_text("{not json")
        with pytest.raises(SerializationError):
            load_database(directory)

    def test_wrong_schema_version(self, tmp_path):
        directory = tmp_path / "db"
        database = build_database()
        save_database(database, directory)
        meta = json.loads((directory / "meta.json").read_text())
        meta["schema_version"] = 999
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(SerializationError):
            load_database(directory)

    def test_save_creates_nested_directories(self, tmp_path):
        database = build_database()
        deep = tmp_path / "a" / "b" / "db"
        save_database(database, deep)
        assert load_database(deep).object_ids == database.object_ids
