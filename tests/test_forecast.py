"""Tests for occupancy forecasting and congestion reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarkovChain,
    StateDistribution,
    congestion_report,
    expected_occupancy,
)
from repro.core.errors import ValidationError

from conftest import random_chain, random_distribution


class TestExpectedOccupancy:
    def test_shape_and_time_zero(self, paper_chain):
        initials = [
            StateDistribution.point(3, 0),
            StateDistribution.point(3, 1),
        ]
        occupancy = expected_occupancy(paper_chain, initials, horizon=4)
        assert occupancy.shape == (5, 3)
        assert occupancy[0] == pytest.approx([1.0, 1.0, 0.0])

    def test_total_count_preserved(self):
        rng = np.random.default_rng(1)
        chain = random_chain(6, rng)
        initials = [random_distribution(6, rng) for _ in range(7)]
        occupancy = expected_occupancy(chain, initials, horizon=5)
        assert np.allclose(occupancy.sum(axis=1), 7.0)

    def test_linearity_in_objects(self, paper_chain):
        a = StateDistribution.point(3, 0)
        b = StateDistribution.point(3, 2)
        combined = expected_occupancy(paper_chain, [a, b], horizon=3)
        separate = expected_occupancy(
            paper_chain, [a], horizon=3
        ) + expected_occupancy(paper_chain, [b], horizon=3)
        assert np.allclose(combined, separate)

    def test_matches_per_object_marginals(self, paper_chain):
        start = StateDistribution.point(3, 1)
        occupancy = expected_occupancy(paper_chain, [start], horizon=2)
        assert occupancy[2] == pytest.approx([0.0, 0.32, 0.68])

    def test_validation(self, paper_chain):
        with pytest.raises(ValidationError):
            expected_occupancy(paper_chain, [], horizon=1)
        with pytest.raises(ValidationError):
            expected_occupancy(
                paper_chain, [StateDistribution.point(3, 0)], horizon=-1
            )
        with pytest.raises(ValidationError):
            expected_occupancy(
                paper_chain, [StateDistribution.point(4, 0)], horizon=1
            )


class TestCongestionReport:
    def test_absorbing_sink_becomes_congested(self):
        # everything flows into state 2 and stays
        chain = MarkovChain(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
            ]
        )
        initials = [StateDistribution.point(3, i % 2) for i in range(10)]
        events = congestion_report(
            chain, initials, horizon=3, threshold=9.5
        )
        assert events
        assert all(event.state == 2 for event in events)
        assert events[0].expected_count == pytest.approx(10.0)

    def test_sorted_by_expected_count(self, paper_chain):
        initials = [StateDistribution.uniform(3) for _ in range(6)]
        events = congestion_report(
            paper_chain, initials, horizon=4, threshold=0.0
        )
        counts = [event.expected_count for event in events]
        assert counts == sorted(counts, reverse=True)

    def test_states_of_interest_filter(self):
        chain = MarkovChain(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
            ]
        )
        initials = [StateDistribution.point(3, 0)] * 5
        events = congestion_report(
            chain, initials, horizon=2, threshold=1.0,
            states_of_interest=[0, 1],
        )
        assert all(event.state in (0, 1) for event in events)

    def test_threshold_validation(self, paper_chain):
        with pytest.raises(ValidationError):
            congestion_report(
                paper_chain,
                [StateDistribution.point(3, 0)],
                horizon=1,
                threshold=-0.5,
            )

    def test_state_of_interest_validation(self, paper_chain):
        with pytest.raises(ValidationError):
            congestion_report(
                paper_chain,
                [StateDistribution.point(3, 0)],
                horizon=1,
                threshold=0.1,
                states_of_interest=[9],
            )
