"""Tests for the temporal-independence (naive) competitor model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarkovChain,
    SpatioTemporalWindow,
    StateDistribution,
    naive_exists_probability,
    naive_forall_probability,
    naive_ktimes_distribution,
    ob_exists_probability,
    region_marginals,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain, random_distribution, random_window


class TestMarginals:
    def test_paper_chain_marginals(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({2, 3})
        )
        marginals = region_marginals(paper_chain, paper_start, window)
        # P(o,2) = (0, 0.32, 0.68): region mass 0.32
        assert marginals[0] == pytest.approx(0.32)

    def test_marginals_are_in_unit_interval(self):
        rng = np.random.default_rng(30)
        chain = random_chain(5, rng)
        initial = random_distribution(5, rng)
        window = random_window(5, rng)
        marginals = region_marginals(chain, initial, window)
        assert ((marginals >= 0) & (marginals <= 1 + 1e-12)).all()
        assert len(marginals) == window.duration

    def test_validation(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        with pytest.raises(ValidationError):
            region_marginals(
                paper_chain, StateDistribution.point(4, 0), window
            )
        with pytest.raises(QueryError):
            region_marginals(
                paper_chain, paper_start, window, start_time=5
            )


class TestBiasDirection:
    """The core claim of Fig. 9(d): independence over-estimates exists."""

    def test_naive_over_estimates_for_sticky_dynamics(self):
        """The paper's Figure 1 argument: with temporal dependence, an
        object that stayed outside the window tends to stay outside; the
        independence model multiplies away that correlation and its
        exists-probability is biased upward.

        A sticky two-state chain makes the effect analytic: start at
        state 0, region {0}, times {1, 2}; exact = 1 - P(X1=1, X2=1)
        = 1 - 0.1*0.9 = 0.91 while naive = 1 - 0.1*0.18 = 0.982.
        """
        chain = MarkovChain([[0.9, 0.1], [0.1, 0.9]])
        initial = StateDistribution.point(2, 0)
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1, 2}))
        exact = ob_exists_probability(chain, initial, window)
        naive = naive_exists_probability(chain, initial, window)
        assert exact == pytest.approx(0.91)
        assert naive == pytest.approx(0.982)
        assert naive > exact

    def test_bias_grows_with_window_length(self):
        """Fig. 9(d): the independence bias grows with the window."""
        chain = MarkovChain([[0.9, 0.1], [0.2, 0.8]])
        initial = StateDistribution.point(2, 1)
        gaps = []
        for length in (1, 2, 3, 4):
            window = SpatioTemporalWindow(
                frozenset({0}), frozenset(range(1, 1 + length))
            )
            exact = ob_exists_probability(chain, initial, window)
            naive = naive_exists_probability(chain, initial, window)
            assert naive >= exact - 1e-12  # never an under-estimate here
            gaps.append(naive - exact)
        assert gaps[0] == pytest.approx(0.0, abs=1e-12)
        # the bias widens while the window grows (until both saturate at 1)
        assert gaps[0] < gaps[1] < gaps[2] < gaps[3]

    def test_pass_through_dynamics_can_under_estimate(self):
        """The bias is not universally upward: a strictly forward-moving
        object visits a single-state region in one contiguous stretch
        (negatively correlated hits), and the naive model then
        *under*-estimates.  Documented counterpoint to Fig. 9(d)."""
        n = 8
        matrix = np.zeros((n, n))
        for i in range(n - 1):
            matrix[i, i] = 0.4
            matrix[i, i + 1] = 0.6
        matrix[n - 1, n - 1] = 1.0
        chain = MarkovChain(matrix)
        initial = StateDistribution.point(n, 0)
        window = SpatioTemporalWindow(
            frozenset({3}), frozenset(range(2, 6))
        )
        exact = ob_exists_probability(chain, initial, window)
        naive = naive_exists_probability(chain, initial, window)
        assert naive < exact

    def test_single_timestamp_has_no_bias(self):
        rng = np.random.default_rng(31)
        for _ in range(10):
            n = int(rng.integers(2, 6))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = SpatioTemporalWindow(
                frozenset({0}), frozenset({3})
            )
            assert naive_exists_probability(
                chain, initial, window
            ) == pytest.approx(
                ob_exists_probability(chain, initial, window)
            )


class TestNaiveForAll:
    def test_product_of_marginals(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({2, 3})
        )
        marginals = region_marginals(paper_chain, paper_start, window)
        assert naive_forall_probability(
            paper_chain, paper_start, window
        ) == pytest.approx(float(np.prod(marginals)))


class TestNaiveKTimes:
    def test_poisson_binomial_sums_to_one(self):
        rng = np.random.default_rng(32)
        chain = random_chain(5, rng)
        initial = random_distribution(5, rng)
        window = random_window(5, rng)
        distribution = naive_ktimes_distribution(chain, initial, window)
        assert distribution.sum() == pytest.approx(1.0)
        assert len(distribution) == window.duration + 1

    def test_matches_brute_force_poisson_binomial(self):
        rng = np.random.default_rng(33)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = SpatioTemporalWindow(
            frozenset({0, 2}), frozenset({1, 2, 3})
        )
        marginals = region_marginals(chain, initial, window)
        # brute-force over the 2^3 independent outcomes
        expected = np.zeros(4)
        for bits in range(8):
            probability = 1.0
            count = 0
            for position, p in enumerate(marginals):
                if bits >> position & 1:
                    probability *= p
                    count += 1
                else:
                    probability *= 1.0 - p
            expected[count] += probability
        assert naive_ktimes_distribution(
            chain, initial, window
        ) == pytest.approx(expected)

    def test_consistency_with_naive_exists(self):
        rng = np.random.default_rng(34)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = random_window(4, rng)
        distribution = naive_ktimes_distribution(chain, initial, window)
        assert naive_exists_probability(
            chain, initial, window
        ) == pytest.approx(1.0 - distribution[0])
