"""Tests for the three workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GridStateSpace
from repro.core.errors import ValidationError
from repro.workloads.icebergs import (
    OceanCurrentField,
    make_iceberg_chain,
    make_iceberg_database,
)
from repro.workloads.road_network import (
    RoadNetworkConfig,
    make_road_database,
    make_road_network,
    make_road_transitions,
    munich_like_config,
    north_america_like_config,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    default_paper_window,
    make_line_chain,
    make_synthetic_database,
)


class TestSyntheticConfig:
    def test_paper_defaults(self):
        config = SyntheticConfig()
        assert config.n_objects == 10_000
        assert config.n_states == 100_000
        assert config.object_spread == 5
        assert config.state_spread == 5
        assert config.max_step == 40

    def test_validation(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(n_objects=0)
        with pytest.raises(ValidationError):
            SyntheticConfig(n_states=1)
        with pytest.raises(ValidationError):
            SyntheticConfig(object_spread=0)
        with pytest.raises(ValidationError):
            SyntheticConfig(state_spread=0)
        with pytest.raises(ValidationError):
            SyntheticConfig(max_step=0)

    def test_spread_exceeding_locality_rejected(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(state_spread=50, max_step=10)


class TestLineChain:
    def test_row_stochastic(self):
        chain = make_line_chain(500, seed=0)
        chain.validate()

    def test_state_spread_out_degree(self):
        for spread in (1, 3, 8):
            chain = make_line_chain(
                300, state_spread=spread, max_step=20, seed=1
            )
            # interior states have exactly `spread` successors
            for state in range(50, 60):
                assert len(chain.successors(state)) == spread

    def test_max_step_locality(self):
        max_step = 10
        chain = make_line_chain(
            200, state_spread=4, max_step=max_step, seed=2
        )
        half = max_step // 2
        for state in range(200):
            for successor in chain.successors(state):
                assert abs(successor - state) <= half

    def test_boundary_states_clipped(self):
        chain = make_line_chain(100, state_spread=5, max_step=40, seed=3)
        for successor in chain.successors(0):
            assert 0 <= successor <= 20

    def test_seed_reproducibility(self):
        a = make_line_chain(100, seed=7)
        b = make_line_chain(100, seed=7)
        assert a == b


class TestSyntheticDatabase:
    def test_sizes(self):
        config = SyntheticConfig(n_objects=25, n_states=500, seed=0)
        database = make_synthetic_database(config)
        assert len(database) == 25
        assert database.n_states == 500
        assert database.state_space is not None

    def test_object_spread(self):
        config = SyntheticConfig(
            n_objects=30, n_states=400, object_spread=5, seed=1
        )
        database = make_synthetic_database(config)
        for obj in database:
            support = obj.initial.distribution.support()
            assert len(support) == 5
            assert max(support) - min(support) == 4  # contiguous block

    def test_default_paper_window(self):
        window = default_paper_window(n_states=1_000)
        assert window.region == frozenset(range(100, 121))
        assert window.times == frozenset(range(20, 26))

    def test_default_window_validates_space(self):
        from repro.core.errors import QueryError

        with pytest.raises(QueryError):
            default_paper_window(n_states=50)


class TestRoadNetwork:
    def test_configs_match_paper_density(self):
        munich = munich_like_config(scale=1.0)
        assert munich.n_nodes == 73_120
        assert munich.n_edges == 93_925
        assert munich.average_degree == pytest.approx(2.57, abs=0.01)
        na = north_america_like_config(scale=1.0)
        assert na.n_nodes == 175_813
        assert na.n_edges == 179_102
        assert na.average_degree == pytest.approx(2.04, abs=0.01)

    def test_generated_graph_size(self):
        config = RoadNetworkConfig("test", 400, 520, seed=0)
        space = make_road_network(config)
        assert space.n_states == 400
        assert space.n_edges() == 2 * 520  # undirected, both directions

    def test_every_node_has_an_edge(self):
        config = RoadNetworkConfig("test", 300, 310, seed=1)
        space = make_road_network(config)
        for state in range(space.n_states):
            assert space.out_neighbors(state)

    def test_positions_exist(self):
        config = RoadNetworkConfig("test", 50, 60, seed=2)
        space = make_road_network(config)
        for state in range(space.n_states):
            x, y = space.location_of(state)
            assert np.isfinite(x) and np.isfinite(y)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RoadNetworkConfig("bad", 1, 5)
        with pytest.raises(ValidationError):
            RoadNetworkConfig("bad", 10, 3)

    def test_transitions_follow_adjacency(self):
        config = RoadNetworkConfig("test", 100, 140, seed=3)
        space = make_road_network(config)
        chain = make_road_transitions(space, seed=4)
        chain.validate()
        for state in range(space.n_states):
            assert set(chain.successors(state)) <= set(
                space.out_neighbors(state)
            ) | {state}

    def test_database(self):
        config = RoadNetworkConfig("test", 200, 260, seed=5)
        database = make_road_database(config, n_objects=40)
        assert len(database) == 40
        for obj in database:
            assert obj.initial.distribution.support_size() >= 1

    def test_database_object_count_capped_at_nodes(self):
        config = RoadNetworkConfig("tiny", 10, 12, seed=6)
        database = make_road_database(config, n_objects=500)
        assert len(database) == 10

    def test_database_rejects_nonpositive_objects(self):
        config = RoadNetworkConfig("test", 20, 25, seed=7)
        with pytest.raises(ValidationError):
            make_road_database(config, n_objects=0)


class TestIcebergs:
    def test_current_field_gyre(self):
        field = OceanCurrentField(
            gyre_center=(0.0, 0.0), gyre_strength=1.0, drift=(0.0, 0.0)
        )
        # at (1, 0) the pure gyre points in +y
        vx, vy = field.velocity(1.0, 0.0)
        assert vx == pytest.approx(0.0)
        assert vy == pytest.approx(1.0)

    def test_chain_is_stochastic(self):
        grid = GridStateSpace(8, 8)
        chain = make_iceberg_chain(grid)
        chain.validate()

    def test_drift_biases_southward(self):
        """With a pure southward current, downward transitions dominate."""
        grid = GridStateSpace(9, 9)
        field = OceanCurrentField(
            gyre_strength=0.0, drift=(0.0, -1.0)
        )
        chain = make_iceberg_chain(grid, field=field, diffusion=0.2)
        center = grid.state_of_cell(4, 4)
        south = grid.state_of_cell(4, 3)
        north = grid.state_of_cell(4, 5)
        assert chain.transition_probability(
            center, south
        ) > chain.transition_probability(center, north)

    def test_parameters_validated(self):
        grid = GridStateSpace(4, 4)
        with pytest.raises(ValidationError):
            make_iceberg_chain(grid, diffusion=0.0)
        with pytest.raises(ValidationError):
            make_iceberg_chain(grid, stay_probability=1.0)

    def test_database(self):
        grid = GridStateSpace(10, 10)
        database = make_iceberg_database(
            grid, n_icebergs=7, sighting_uncertainty=1, seed=0
        )
        assert len(database) == 7
        for obj in database:
            # a radius-1 sighting covers at most 9 cells
            assert 1 <= obj.initial.distribution.support_size() <= 9

    def test_database_validation(self):
        grid = GridStateSpace(4, 4)
        with pytest.raises(ValidationError):
            make_iceberg_database(grid, n_icebergs=0)
        with pytest.raises(ValidationError):
            make_iceberg_database(grid, sighting_uncertainty=-1)

    def test_precise_sightings(self):
        grid = GridStateSpace(6, 6)
        database = make_iceberg_database(
            grid, n_icebergs=3, sighting_uncertainty=0, seed=1
        )
        for obj in database:
            assert obj.initial.distribution.support_size() == 1
