"""Parity tests: batched evaluation must match the per-object paths.

The batched sweeps of :mod:`repro.core.batch` are pure restructurings
of the per-object algorithms, so every probability they produce must
agree with the corresponding single-object function to 1e-12 --
including mixed start times, multi-observation objects, pruned-out
objects, the Monte-Carlo engine path, and the pure-Python backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MonteCarloSampler,
    Observation,
    ObservationSet,
    PSTExistsQuery,
    QueryBasedEvaluator,
    QueryEngine,
    ReachabilityPruner,
    SpatioTemporalWindow,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
    backward_vectors,
    batch_exists_multi,
    batch_ob_exists,
    batch_qb_exists,
    build_absorbing_matrices,
    ob_exists_probability,
    ob_exists_probability_multi,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain, random_distribution, random_window

TOLERANCE = 1e-12


def _setup(seed, n_states=9, n_objects=7, max_start=3):
    rng = np.random.default_rng(seed)
    chain = random_chain(n_states, rng, density=0.5)
    initials = [
        random_distribution(n_states, rng, sparse=bool(i % 2))
        for i in range(n_objects)
    ]
    starts = [int(rng.integers(0, max_start + 1)) for _ in initials]
    window = SpatioTemporalWindow(
        frozenset(
            int(s)
            for s in rng.choice(n_states, size=3, replace=False)
        ),
        frozenset({max_start + 1, max_start + 3}),
    )
    return chain, initials, starts, window


class TestBatchObExists:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_per_object(self, seed):
        chain, initials, starts, window = _setup(seed)
        batched = batch_ob_exists(
            chain, initials, window, start_times=starts
        )
        for probability, initial, start in zip(
            batched, initials, starts
        ):
            assert probability == pytest.approx(
                ob_exists_probability(
                    chain, initial, window, start_time=start
                ),
                abs=TOLERANCE,
            )

    def test_scalar_start_time_broadcast(self, paper_chain, paper_window):
        initials = [
            StateDistribution.point(3, state) for state in range(3)
        ]
        batched = batch_ob_exists(paper_chain, initials, paper_window)
        for probability, initial in zip(batched, initials):
            assert probability == pytest.approx(
                ob_exists_probability(paper_chain, initial, paper_window),
                abs=TOLERANCE,
            )

    def test_paper_answer(self, paper_chain, paper_window, paper_start):
        batched = batch_ob_exists(
            paper_chain, [paper_start], paper_window
        )
        assert batched[0] == pytest.approx(0.864)

    def test_pure_backend_matches_scipy(self):
        chain, initials, starts, window = _setup(11, n_objects=4)
        scipy_result = batch_ob_exists(
            chain, initials, window, start_times=starts
        )
        pure_result = batch_ob_exists(
            chain, initials, window, start_times=starts, backend="pure"
        )
        assert np.allclose(scipy_result, pure_result, atol=TOLERANCE)

    def test_empty_input(self, paper_chain, paper_window):
        assert batch_ob_exists(paper_chain, [], paper_window).shape == (0,)

    def test_start_after_window_rejected(self, paper_chain, paper_window):
        with pytest.raises(QueryError):
            batch_ob_exists(
                paper_chain,
                [StateDistribution.point(3, 0)],
                paper_window,
                start_times=[paper_window.t_start + 1],
            )

    def test_start_count_mismatch_rejected(
        self, paper_chain, paper_window
    ):
        with pytest.raises(ValidationError):
            batch_ob_exists(
                paper_chain,
                [StateDistribution.point(3, 0)],
                paper_window,
                start_times=[0, 0],
            )

    def test_foreign_matrices_rejected(self, paper_chain, paper_window):
        other = build_absorbing_matrices(paper_chain, {2})
        with pytest.raises(QueryError):
            batch_ob_exists(
                paper_chain,
                [StateDistribution.point(3, 0)],
                paper_window,
                matrices=other,
            )


class TestBatchQbExists:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_evaluator(self, seed):
        chain, initials, starts, window = _setup(seed + 100)
        batched = batch_qb_exists(
            chain, initials, window, start_times=starts
        )
        evaluators = {}
        for probability, initial, start in zip(
            batched, initials, starts
        ):
            if start not in evaluators:
                evaluators[start] = QueryBasedEvaluator(
                    chain, window, start_time=start
                )
            assert probability == pytest.approx(
                evaluators[start].probability(initial), abs=TOLERANCE
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_batch_ob(self, seed):
        chain, initials, starts, window = _setup(seed + 200)
        qb = batch_qb_exists(chain, initials, window, start_times=starts)
        ob = batch_ob_exists(chain, initials, window, start_times=starts)
        assert np.allclose(qb, ob, atol=TOLERANCE)

    def test_backward_vectors_bit_identical_to_evaluator(
        self, paper_chain, paper_window
    ):
        matrices = build_absorbing_matrices(
            paper_chain, paper_window.region
        )
        vectors = backward_vectors(matrices, paper_window, [0, 1, 2])
        for start, vector in vectors.items():
            evaluator = QueryBasedEvaluator(
                paper_chain,
                paper_window,
                start_time=start,
                matrices=matrices,
            )
            assert np.array_equal(vector, evaluator.backward_vector)

    def test_backward_vector_at_t_end(self, paper_chain):
        window = SpatioTemporalWindow(frozenset({0}), frozenset({2}))
        matrices = build_absorbing_matrices(paper_chain, window.region)
        vectors = backward_vectors(matrices, window, [2])
        expected = np.zeros(4)
        expected[3] = 1.0
        assert np.array_equal(vectors[2], expected)

    def test_empty_inputs(self, paper_chain, paper_window):
        assert batch_qb_exists(paper_chain, [], paper_window).shape == (0,)
        matrices = build_absorbing_matrices(
            paper_chain, paper_window.region
        )
        assert backward_vectors(matrices, paper_window, []) == {}


class TestBatchMulti:
    def _observation_sets(self, rng, n_states, n_objects):
        sets = []
        for index in range(n_objects):
            first_time = int(rng.integers(0, 2))
            first = Observation(
                first_time, random_distribution(n_states, rng)
            )
            later_time = first_time + int(rng.integers(2, 5))
            later = Observation.uniform(
                later_time,
                n_states,
                [
                    int(s)
                    for s in rng.choice(n_states, 4, replace=False)
                ],
            )
            sets.append(ObservationSet.of(first, later))
        return sets

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_per_object(self, seed):
        rng = np.random.default_rng(seed + 300)
        n_states = 8
        chain = random_chain(n_states, rng, density=0.6)
        observation_sets = self._observation_sets(rng, n_states, 6)
        window = SpatioTemporalWindow(
            frozenset({0, 3, 5}), frozenset({2, 4})
        )
        batched = batch_exists_multi(chain, observation_sets, window)
        for probability, observations in zip(
            batched, observation_sets
        ):
            assert probability == pytest.approx(
                ob_exists_probability_multi(
                    chain, observations, window
                ),
                abs=TOLERANCE,
            )

    def test_observation_after_window_end(self, paper_chain_section6):
        # the per-object result is read at the object's own final time,
        # which here lies beyond t_end
        observations = ObservationSet.of(
            Observation.precise(0, 3, 1),
            Observation.uniform(6, 3, [0, 1]),
        )
        window = SpatioTemporalWindow(frozenset({0}), frozenset({2, 3}))
        batched = batch_exists_multi(
            paper_chain_section6, [observations], window
        )
        assert batched[0] == pytest.approx(
            ob_exists_probability_multi(
                paper_chain_section6, observations, window
            ),
            abs=TOLERANCE,
        )

    def test_empty_input(self, paper_chain, paper_window):
        result = batch_exists_multi(paper_chain, [], paper_window)
        assert result.shape == (0,)


class TestEngineParity:
    def _database(self, seed, n_states=10, n_objects=9):
        rng = np.random.default_rng(seed)
        chain = random_chain(n_states, rng, density=0.4)
        database = TrajectoryDatabase.with_chain(chain)
        for index in range(n_objects):
            if index % 3 == 0:
                observations = ObservationSet.of(
                    Observation.precise(
                        0, n_states, int(rng.integers(0, n_states))
                    ),
                    Observation.uniform(
                        4,
                        n_states,
                        [
                            int(s)
                            for s in rng.choice(
                                n_states, 3, replace=False
                            )
                        ],
                    ),
                )
                database.add(
                    UncertainObject(f"o{index}", observations)
                )
            else:
                database.add(
                    UncertainObject.with_distribution(
                        f"o{index}",
                        random_distribution(n_states, rng),
                        time=int(rng.integers(0, 2)),
                    )
                )
        return database

    @pytest.mark.parametrize("method", ["qb", "ob"])
    def test_engine_matches_per_object_functions(self, method):
        database = self._database(7)
        window = SpatioTemporalWindow(
            frozenset({0, 1, 4}), frozenset({2, 3})
        )
        result = QueryEngine(database).evaluate(
            PSTExistsQuery(window), method=method
        )
        chain = database.chain()
        for obj in database:
            if obj.has_multiple_observations():
                expected = ob_exists_probability_multi(
                    chain, obj.observations, window
                )
            else:
                expected = ob_exists_probability(
                    chain,
                    obj.initial.distribution,
                    window,
                    start_time=obj.initial.time,
                )
            assert result.values[obj.object_id] == pytest.approx(
                expected, abs=TOLERANCE
            )

    def test_pruned_objects_reported_zero(self):
        database = self._database(13)
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({1, 2})
        )
        engine = QueryEngine(database)
        with pytest.warns(DeprecationWarning, match="prune"):
            pruned = engine.evaluate(
                PSTExistsQuery(window), method="ob", prune=True
            )
        plain = engine.evaluate(PSTExistsQuery(window), method="ob")
        surviving = {
            obj.object_id
            for obj in ReachabilityPruner(database).candidates(window)
        }
        for obj in database:
            if obj.object_id in surviving:
                assert pruned.values[obj.object_id] == pytest.approx(
                    plain.values[obj.object_id], abs=TOLERANCE
                )
            else:
                assert pruned.values[obj.object_id] == 0.0

    def test_mc_engine_matches_manual_sampler_loop(self):
        # every object samples its own stream seeded by (base seed +
        # database position), so estimates are reproducible regardless
        # of which other objects a filter stage removed
        database = self._database(17, n_objects=6)
        window = SpatioTemporalWindow(
            frozenset({0, 1, 4}), frozenset({2, 3})
        )
        result = QueryEngine(database).evaluate(
            PSTExistsQuery(window), method="mc", n_samples=64, seed=5
        )
        index = {
            object_id: position
            for position, object_id in enumerate(database.object_ids)
        }
        for chain_id, objects in database.objects_by_chain().items():
            sampler = MonteCarloSampler(database.chain(chain_id))
            for obj in objects:
                sampler.reseed(5 + index[obj.object_id])
                if obj.has_multiple_observations():
                    expected = sampler.exists_probability_multi(
                        obj.observations, window, 64
                    ).estimate
                else:
                    expected = sampler.exists_probability(
                        obj.initial.distribution,
                        window,
                        64,
                        start_time=obj.initial.time,
                    ).estimate
                assert result.values[obj.object_id] == expected

    def test_random_windows_property(self):
        rng = np.random.default_rng(23)
        for _ in range(10):
            n_states = int(rng.integers(4, 12))
            chain = random_chain(n_states, rng)
            window = random_window(n_states, rng)
            initials = [
                random_distribution(n_states, rng) for _ in range(4)
            ]
            qb = batch_qb_exists(chain, initials, window)
            ob = batch_ob_exists(chain, initials, window)
            per_object = [
                ob_exists_probability(chain, initial, window)
                for initial in initials
            ]
            assert np.allclose(qb, per_object, atol=TOLERANCE)
            assert np.allclose(ob, per_object, atol=TOLERANCE)
