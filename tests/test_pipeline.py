"""Tests for the staged filter-refinement pipeline.

The load-bearing properties:

* planned ``method="auto"`` execution matches every forced method to
  1e-12 on mixed single-/multi-observation databases (filters are
  exact-safe, kernels are shared);
* the prefilter + BFS stages never eliminate an object whose true
  probability is non-zero (randomized safety property);
* EXPLAIN stage cardinalities are monotonically non-increasing;
* the shared plan cache survives concurrent hammering.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro import (
    LineStateSpace,
    Observation,
    ObservationSet,
    PlanCache,
    PlanOptions,
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    QueryEngine,
    SpatioTemporalWindow,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import QueryError
from repro.workloads.synthetic import make_line_chain

from conftest import random_chain

NO_FILTERS = PlanOptions(prefilter=False, bfs_prune=False)


def mixed_line_database(
    n_objects=20,
    n_states=200,
    max_step=8,
    seed=0,
    chain_ids=("default",),
    multi_every=4,
):
    """Line-space database with single- and multi-observation objects."""
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        n_states, state_space=LineStateSpace(n_states)
    )
    chains = {}
    for index, chain_id in enumerate(chain_ids):
        chain = make_line_chain(
            n_states, max_step=max_step, seed=seed + index
        )
        chains[chain_id] = chain
        database.register_chain(chain_id, chain)
    for index in range(n_objects):
        chain_id = chain_ids[index % len(chain_ids)]
        state = int(rng.integers(0, n_states))
        if multi_every and index % multi_every == 0:
            # second observation drawn from the chain's own dynamics so
            # evidence is never contradictory
            later = chains[chain_id].propagate(
                StateDistribution.point(n_states, state), 3
            )
            observations = ObservationSet.of(
                Observation.precise(0, n_states, state),
                Observation(3, later),
            )
            database.add(
                UncertainObject(
                    f"o{index}", observations, chain_id=chain_id
                )
            )
        else:
            database.add(
                UncertainObject.at_state(
                    f"o{index}", n_states, state, chain_id=chain_id
                )
            )
    return database


WINDOW = SpatioTemporalWindow.from_ranges(0, 15, 5, 8)


class TestAutoParity:
    def test_auto_matches_forced_qb_and_ob(self):
        database = mixed_line_database(seed=1)
        engine = QueryEngine(database)
        auto = engine.evaluate(PSTExistsQuery(WINDOW))
        for method in ("qb", "ob"):
            forced = engine.evaluate(
                PSTExistsQuery(WINDOW), method=method
            )
            for object_id in database.object_ids:
                assert auto.values[object_id] == pytest.approx(
                    forced.values[object_id], abs=1e-12
                )

    def test_auto_matches_unfiltered_evaluation(self):
        database = mixed_line_database(seed=2)
        engine = QueryEngine(database)
        auto = engine.evaluate(PSTExistsQuery(WINDOW))
        plain = engine.evaluate(
            PSTExistsQuery(WINDOW), method="qb", options=NO_FILTERS
        )
        for object_id in database.object_ids:
            assert auto.values[object_id] == pytest.approx(
                plain.values[object_id], abs=1e-12
            )

    def test_mc_filtered_matches_mc_unfiltered(self):
        # per-object seeding makes the MC path reproduce draw for draw
        # no matter what the filter stages removed
        database = mixed_line_database(seed=3)
        engine = QueryEngine(database)
        filtered = engine.evaluate(
            PSTExistsQuery(WINDOW),
            method="mc",
            seed=7,
            options=PlanOptions(prefilter=True, bfs_prune=True),
        )
        plain = engine.evaluate(
            PSTExistsQuery(WINDOW),
            method="mc",
            seed=7,
            options=NO_FILTERS,
        )
        for object_id in database.object_ids:
            assert (
                filtered.values[object_id] == plain.values[object_id]
            )

    def test_forall_auto_matches_forced(self):
        database = mixed_line_database(seed=4, multi_every=0)
        engine = QueryEngine(database)
        auto = engine.evaluate(PSTForAllQuery(WINDOW))
        forced = engine.evaluate(
            PSTForAllQuery(WINDOW), method="qb", options=NO_FILTERS
        )
        for object_id in database.object_ids:
            assert auto.values[object_id] == pytest.approx(
                forced.values[object_id], abs=1e-12
            )

    def test_ktimes_auto_matches_unfiltered(self):
        database = mixed_line_database(seed=5, multi_every=0)
        engine = QueryEngine(database)
        auto = engine.evaluate(PSTKTimesQuery(WINDOW))
        plain = engine.evaluate(
            PSTKTimesQuery(WINDOW), options=NO_FILTERS
        )
        for object_id in database.object_ids:
            assert np.allclose(
                auto.values[object_id],
                plain.values[object_id],
                atol=1e-12,
            )
            assert auto.values[object_id].sum() == pytest.approx(1.0)

    def test_ktimes_scalar_k_for_pruned_objects(self):
        database = mixed_line_database(seed=6, multi_every=0)
        engine = QueryEngine(database)
        zero_hits = engine.evaluate(PSTKTimesQuery(WINDOW, k=0))
        exists = engine.evaluate(PSTExistsQuery(WINDOW))
        for object_id in database.object_ids:
            assert exists.values[object_id] == pytest.approx(
                1.0 - zero_hits.values[object_id], abs=1e-10
            )

    def test_late_observation_rejected_regardless_of_filters(self):
        # an object observed after the query start is a data error the
        # kernels reject; the filter stages must not mask it by zeroing
        # the object first (the outcome must not depend on whether the
        # planner happened to enable a filter)
        database = mixed_line_database(seed=16, multi_every=0)
        database.add(
            UncertainObject.at_state(
                "late", database.n_states, 0, time=WINDOW.t_end + 1
            )
        )
        engine = QueryEngine(database)
        for options in (
            None,
            NO_FILTERS,
            PlanOptions(prefilter=True, bfs_prune=True),
        ):
            with pytest.raises(QueryError, match="precedes"):
                engine.evaluate(
                    PSTExistsQuery(WINDOW), options=options
                )

    def test_ktimes_multi_observation_rejected_despite_pruning(self):
        database = mixed_line_database(seed=7, multi_every=3)
        engine = QueryEngine(database)
        with pytest.raises(QueryError):
            engine.evaluate(PSTKTimesQuery(WINDOW))

    def test_parallel_groups_match_serial(self):
        database = mixed_line_database(
            n_objects=30, seed=8, chain_ids=("cars", "trucks", "bikes")
        )
        engine = QueryEngine(database)
        serial = engine.evaluate(
            PSTExistsQuery(WINDOW), options=PlanOptions(parallel=False)
        )
        parallel = engine.evaluate(
            PSTExistsQuery(WINDOW),
            options=PlanOptions(parallel=True, max_workers=3),
        )
        assert parallel.plan.parallel
        for object_id in database.object_ids:
            assert serial.values[object_id] == pytest.approx(
                parallel.values[object_id], abs=1e-12
            )


class TestFilterSafety:
    def test_filters_never_drop_nonzero_objects_randomized(self):
        # the ISSUE-2 safety property: across random databases and
        # windows, any object a filter stage zeroed must have an
        # exactly-zero unfiltered probability
        rng = np.random.default_rng(42)
        for round_index in range(8):
            n_states = int(rng.integers(40, 160))
            database = mixed_line_database(
                n_objects=int(rng.integers(6, 18)),
                n_states=n_states,
                max_step=int(rng.integers(2, 12)) * 2,
                seed=int(rng.integers(0, 10_000)),
                multi_every=int(rng.integers(0, 5)),
            )
            low = int(rng.integers(0, n_states - 5))
            high = min(n_states - 1, low + int(rng.integers(1, 8)))
            t_low = int(rng.integers(1, 6))
            window = SpatioTemporalWindow.from_ranges(
                low, high, t_low, t_low + int(rng.integers(0, 4))
            )
            engine = QueryEngine(database)
            filtered = engine.evaluate(
                PSTExistsQuery(window),
                options=PlanOptions(prefilter=True, bfs_prune=True),
            )
            plain = engine.evaluate(
                PSTExistsQuery(window), method="qb", options=NO_FILTERS
            )
            for object_id in database.object_ids:
                assert filtered.values[object_id] == pytest.approx(
                    plain.values[object_id], abs=1e-12
                )
                if plain.values[object_id] > 0.0:
                    assert filtered.values[object_id] > 0.0


class TestExplain:
    def test_stage_counts_monotonically_non_increasing(self):
        rng = np.random.default_rng(11)
        for seed in range(5):
            database = mixed_line_database(
                n_objects=16, seed=seed, multi_every=0
            )
            engine = QueryEngine(database)
            plan = engine.explain(PSTExistsQuery(WINDOW))
            counts = plan.stage_counts()
            assert counts[0] == len(database)
            assert all(
                later <= earlier
                for earlier, later in zip(counts, counts[1:])
            )

    def test_plan_recorded_on_result(self):
        database = mixed_line_database(seed=12)
        engine = QueryEngine(database)
        result = engine.evaluate(PSTExistsQuery(WINDOW))
        assert result.plan is not None
        assert [stage.name for stage in result.plan.stages] == [
            "prefilter",
            "bfs",
            "evaluate",
        ]
        assert all(
            stage.elapsed_seconds >= 0.0
            for stage in result.plan.stages
        )

    def test_trivial_forall_has_no_plan(self):
        database = mixed_line_database(
            seed=13, n_states=50, multi_every=0
        )
        window = SpatioTemporalWindow(
            frozenset(range(50)), frozenset({2})
        )
        result = QueryEngine(database).evaluate(PSTForAllQuery(window))
        assert result.plan is None
        assert all(
            value == pytest.approx(1.0)
            for value in result.values.values()
        )
        with pytest.raises(QueryError):
            QueryEngine(database).explain(PSTForAllQuery(window))

    def test_prune_false_disables_both_stages(self):
        database = mixed_line_database(seed=14)
        engine = QueryEngine(database)
        with pytest.warns(DeprecationWarning):
            result = engine.evaluate(
                PSTExistsQuery(WINDOW), prune=False
            )
        assert not result.plan.use_prefilter
        assert not result.plan.use_bfs
        assert result.plan.stage_counts() == [
            len(database)
        ] * 4  # nothing filtered

    def test_prune_true_enables_bfs_for_every_method(self):
        database = mixed_line_database(seed=15, multi_every=0)
        for method in ("qb", "ob", "mc"):
            engine = QueryEngine(database)  # the warning is per engine
            with pytest.warns(DeprecationWarning):
                result = engine.evaluate(
                    PSTExistsQuery(WINDOW),
                    method=method,
                    prune=True,
                    seed=0,
                )
            assert result.plan.use_bfs

    def test_prune_deprecation_warns_once_per_engine(self):
        database = mixed_line_database(seed=15, multi_every=0)
        engine = QueryEngine(database)
        with pytest.warns(DeprecationWarning, match="PlanOptions"):
            engine.evaluate(PSTExistsQuery(WINDOW), prune=True)
        # a monitoring loop re-passing prune= must not warn again
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.evaluate(PSTExistsQuery(WINDOW), prune=True)
            engine.evaluate(PSTExistsQuery(WINDOW), prune=False)
        # ... but a fresh engine warns anew
        with pytest.warns(DeprecationWarning, match="PlanOptions"):
            QueryEngine(database).evaluate(
                PSTExistsQuery(WINDOW), prune=True
            )


class TestPlanCacheThreadSafety:
    def test_concurrent_mixed_workload(self):
        rng = np.random.default_rng(21)
        chains = [random_chain(12, rng) for _ in range(4)]
        windows = [
            SpatioTemporalWindow(
                frozenset({int(s) for s in rng.choice(12, 3, replace=False)}),
                frozenset({2, 3}),
            )
            for _ in range(4)
        ]
        cache = PlanCache(maxsize=8)
        errors = []

        def hammer(worker: int) -> None:
            try:
                local = np.random.default_rng(worker)
                for _ in range(40):
                    chain = chains[int(local.integers(0, len(chains)))]
                    window = windows[
                        int(local.integers(0, len(windows)))
                    ]
                    matrices = cache.absorbing(chain, window.region)
                    assert matrices.region == window.region
                    cache.backward_vectors(chain, window, [0, 1])
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8
        assert cache.stats.hits > 0
