"""Shared fixtures and strategy helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarkovChain,
    SpatioTemporalWindow,
    StateDistribution,
)


@pytest.fixture
def paper_chain() -> MarkovChain:
    """The running-example chain of Sections V-A / V-B (0.6 / 0.4 row)."""
    return MarkovChain(
        [
            [0.0, 0.0, 1.0],
            [0.6, 0.0, 0.4],
            [0.0, 0.8, 0.2],
        ]
    )


@pytest.fixture
def paper_chain_section6() -> MarkovChain:
    """The Section VI example chain (0.5 / 0.5 row)."""
    return MarkovChain(
        [
            [0.0, 0.0, 1.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.8, 0.2],
        ]
    )


@pytest.fixture
def paper_window() -> SpatioTemporalWindow:
    """The running-example window: S = {s1, s2}, T = {2, 3}.

    State indices are zero-based here, so the paper's {s1, s2} is {0, 1}.
    """
    return SpatioTemporalWindow(frozenset({0, 1}), frozenset({2, 3}))


@pytest.fixture
def paper_start() -> StateDistribution:
    """The running-example start: observed at s2 (index 1) at t = 0."""
    return StateDistribution.point(3, 1)


def random_chain(
    n_states: int, rng: np.random.Generator, density: float = 0.6
) -> MarkovChain:
    """A random row-stochastic chain for property tests.

    Each row gets at least one non-zero entry; entry positions follow a
    Bernoulli(density) mask.
    """
    matrix = np.zeros((n_states, n_states))
    for i in range(n_states):
        mask = rng.random(n_states) < density
        if not mask.any():
            mask[rng.integers(0, n_states)] = True
        weights = rng.random(n_states) * mask
        matrix[i] = weights / weights.sum()
    return MarkovChain(matrix)


def random_distribution(
    n_states: int, rng: np.random.Generator, sparse: bool = False
) -> StateDistribution:
    """A random distribution; optionally with small support."""
    if sparse:
        support_size = int(rng.integers(1, max(2, n_states // 2)))
        support = rng.choice(n_states, size=support_size, replace=False)
        weights = np.zeros(n_states)
        weights[support] = rng.random(support_size) + 1e-3
    else:
        weights = rng.random(n_states) + 1e-3
    return StateDistribution(weights / weights.sum())


def random_window(
    n_states: int, rng: np.random.Generator, max_time: int = 6
) -> SpatioTemporalWindow:
    """A random non-empty window within the given horizon."""
    region_size = int(rng.integers(1, n_states))
    region = rng.choice(n_states, size=region_size, replace=False)
    n_times = int(rng.integers(1, max_time))
    times = rng.choice(
        np.arange(1, max_time + 1), size=n_times, replace=False
    )
    return SpatioTemporalWindow(
        frozenset(int(s) for s in region),
        frozenset(int(t) for t in times),
    )
