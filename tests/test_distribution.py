"""Tests for StateDistribution, including Lemma 1 fusion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StateDistribution
from repro.core.errors import (
    DimensionMismatchError,
    InfeasibleEvidenceError,
    ValidationError,
)


class TestConstruction:
    def test_point(self):
        dist = StateDistribution.point(4, 2)
        assert dist.probability(2) == 1.0
        assert dist.support() == (2,)

    def test_point_out_of_range(self):
        with pytest.raises(ValidationError):
            StateDistribution.point(3, 3)

    def test_uniform_over_support(self):
        dist = StateDistribution.uniform(5, [1, 3])
        assert dist.probability(1) == pytest.approx(0.5)
        assert dist.probability(3) == pytest.approx(0.5)
        assert dist.probability(0) == 0.0

    def test_uniform_over_everything(self):
        dist = StateDistribution.uniform(4)
        assert dist.vector == pytest.approx([0.25] * 4)

    def test_uniform_bad_state(self):
        with pytest.raises(ValidationError):
            StateDistribution.uniform(3, [5])

    def test_from_dict_normalizes(self):
        dist = StateDistribution.from_dict(
            3, {0: 2.0, 2: 2.0}, normalize=True
        )
        assert dist.probability(0) == pytest.approx(0.5)

    def test_from_dict_accumulates_duplicate_free_weights(self):
        dist = StateDistribution.from_dict(2, {0: 0.25, 1: 0.75})
        assert dist.probability(1) == pytest.approx(0.75)

    def test_unnormalized_rejected(self):
        with pytest.raises(ValidationError):
            StateDistribution([0.5, 0.2])

    def test_negative_mass_rejected(self):
        with pytest.raises(ValidationError):
            StateDistribution([1.5, -0.5])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            StateDistribution([[0.5, 0.5]])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            StateDistribution([])

    def test_zero_mass_normalize_rejected(self):
        with pytest.raises(InfeasibleEvidenceError):
            StateDistribution([0.0, 0.0], normalize=True)

    def test_vector_is_read_only(self):
        dist = StateDistribution.point(2, 0)
        with pytest.raises(ValueError):
            dist.vector[0] = 0.5


class TestInspection:
    def test_probability_of_region(self):
        dist = StateDistribution([0.2, 0.3, 0.5])
        assert dist.probability_of([0, 2]) == pytest.approx(0.7)
        assert dist.probability_of([]) == 0.0

    def test_probability_out_of_range(self):
        with pytest.raises(ValidationError):
            StateDistribution.point(2, 0).probability(9)

    def test_support_and_size(self):
        dist = StateDistribution([0.0, 0.4, 0.0, 0.6])
        assert dist.support() == (1, 3)
        assert dist.support_size() == 2

    def test_mode(self):
        assert StateDistribution([0.2, 0.5, 0.3]).mode() == 1

    def test_entropy_point_is_zero(self):
        assert StateDistribution.point(5, 1).entropy() == 0.0

    def test_entropy_uniform(self):
        dist = StateDistribution.uniform(8)
        assert dist.entropy() == pytest.approx(3.0)

    def test_items_and_to_dict(self):
        dist = StateDistribution([0.0, 1.0])
        assert dict(dist.items()) == {1: 1.0}
        assert dist.to_dict() == {1: 1.0}

    def test_repr_truncates(self):
        dist = StateDistribution.uniform(20)
        assert "..." in repr(dist)


class TestFusion:
    """Lemma 1: independent observations fuse by product + normalise."""

    def test_paper_style_fusion(self):
        # prior (0, 0.16, 0.04, 0.4, 0, 0.4) fused with obs
        # (0, 0.5, 0, 0, 0.5, 0) must give a point mass (paper Sec. VI)
        prior = StateDistribution(
            [0.0, 0.16, 0.04, 0.4, 0.0, 0.4], normalize=True
        )
        observation = StateDistribution(
            [0.0, 0.5, 0.0, 0.0, 0.5, 0.0]
        )
        fused = prior.fuse(observation)
        assert fused.probability(1) == pytest.approx(1.0)

    def test_fusion_with_uniform_is_identity(self):
        prior = StateDistribution([0.2, 0.3, 0.5])
        uniform = StateDistribution.uniform(3)
        assert prior.fuse(uniform).allclose(prior)

    def test_fusion_commutative(self):
        a = StateDistribution([0.5, 0.25, 0.25])
        b = StateDistribution([0.1, 0.6, 0.3])
        assert a.fuse(b).allclose(b.fuse(a))

    def test_fusion_multiple_observations(self):
        a = StateDistribution([0.5, 0.5, 0.0])
        b = StateDistribution([0.0, 0.5, 0.5])
        c = StateDistribution.uniform(3)
        fused = a.fuse(b, c)
        assert fused.probability(1) == pytest.approx(1.0)

    def test_contradictory_observations(self):
        a = StateDistribution.point(3, 0)
        b = StateDistribution.point(3, 2)
        with pytest.raises(InfeasibleEvidenceError):
            a.fuse(b)

    def test_fusion_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            StateDistribution.point(3, 0).fuse(
                StateDistribution.point(4, 0)
            )

    @given(
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=8),
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_fusion_matches_bayes_rule(self, prior_w, likelihood_w):
        n = min(len(prior_w), len(likelihood_w))
        prior = StateDistribution(np.asarray(prior_w[:n]), normalize=True)
        likelihood = StateDistribution(
            np.asarray(likelihood_w[:n]), normalize=True
        )
        fused = prior.fuse(likelihood)
        expected = prior.vector * likelihood.vector
        expected /= expected.sum()
        assert np.allclose(fused.vector, expected)


class TestOperations:
    def test_restrict(self):
        dist = StateDistribution([0.2, 0.3, 0.5])
        restricted = dist.restrict([1, 2])
        assert restricted.probability(0) == 0.0
        assert restricted.probability(2) == pytest.approx(0.5 / 0.8)

    def test_restrict_to_zero_mass(self):
        dist = StateDistribution([1.0, 0.0])
        with pytest.raises(InfeasibleEvidenceError):
            dist.restrict([1])

    def test_restrict_out_of_range(self):
        with pytest.raises(ValidationError):
            StateDistribution.point(2, 0).restrict([5])

    def test_total_variation_distance(self):
        a = StateDistribution([1.0, 0.0])
        b = StateDistribution([0.0, 1.0])
        assert a.total_variation_distance(b) == pytest.approx(1.0)
        assert a.total_variation_distance(a) == 0.0

    def test_total_variation_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            StateDistribution.point(2, 0).total_variation_distance(
                StateDistribution.point(3, 0)
            )

    def test_sample_respects_support(self):
        rng = np.random.default_rng(0)
        dist = StateDistribution([0.0, 0.5, 0.5, 0.0])
        samples = {dist.sample(rng) for _ in range(50)}
        assert samples <= {1, 2}

    def test_equality_and_hash(self):
        a = StateDistribution([0.5, 0.5])
        b = StateDistribution([0.5, 0.5])
        assert a == b
        assert hash(a) == hash(b)
        assert a != "something else"
