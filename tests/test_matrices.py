"""Tests for the augmented-matrix constructions (Sections V-A, VI, VII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    build_absorbing_matrices,
    build_doubled_matrices,
    build_ktimes_block_matrices,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain


def to_array(matrix) -> np.ndarray:
    if hasattr(matrix, "toarray"):
        return matrix.toarray()
    return np.asarray(matrix.to_dense())


class TestAbsorbingMatrices:
    """The Section V-A construction, checked against Example 1 verbatim."""

    def test_paper_example_m_minus(self, paper_chain):
        matrices = build_absorbing_matrices(paper_chain, {0, 1})
        expected = [
            [0.0, 0.0, 1.0, 0.0],
            [0.6, 0.0, 0.4, 0.0],
            [0.0, 0.8, 0.2, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
        assert np.allclose(to_array(matrices.m_minus), expected)

    def test_paper_example_m_plus(self, paper_chain):
        matrices = build_absorbing_matrices(paper_chain, {0, 1})
        expected = [
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.4, 0.6],
            [0.0, 0.0, 0.2, 0.8],
            [0.0, 0.0, 0.0, 1.0],
        ]
        assert np.allclose(to_array(matrices.m_plus), expected)

    def test_both_matrices_stochastic(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            chain = random_chain(6, rng)
            region = {0, 3}
            matrices = build_absorbing_matrices(chain, region)
            for matrix in (matrices.m_minus, matrices.m_plus):
                sums = to_array(matrix).sum(axis=1)
                assert np.allclose(sums, 1.0)

    def test_top_is_absorbing(self, paper_chain):
        matrices = build_absorbing_matrices(paper_chain, {0})
        for matrix in (matrices.m_minus, matrices.m_plus):
            row = to_array(matrix)[matrices.top_index]
            expected = np.zeros(matrices.size)
            expected[matrices.top_index] = 1.0
            assert np.allclose(row, expected)

    def test_m_plus_region_columns_are_zero(self, paper_chain):
        matrices = build_absorbing_matrices(paper_chain, {0, 1})
        dense = to_array(matrices.m_plus)
        assert np.allclose(dense[:, 0], 0.0)
        assert np.allclose(dense[:, 1], 0.0)

    def test_matrix_for_target_time(self, paper_chain):
        matrices = build_absorbing_matrices(paper_chain, {0})
        times = frozenset({2, 3})
        assert matrices.matrix_for_target_time(2, times) is (
            matrices.m_plus
        )
        assert matrices.matrix_for_target_time(1, times) is (
            matrices.m_minus
        )

    def test_transposed_cached(self, paper_chain):
        matrices = build_absorbing_matrices(paper_chain, {0})
        first = matrices.transposed()
        second = matrices.transposed()
        assert first is second
        assert np.allclose(
            to_array(first[0]), to_array(matrices.m_minus).T
        )

    def test_extend_initial_plain(self, paper_chain):
        matrices = build_absorbing_matrices(paper_chain, {0, 1})
        extended = matrices.extend_initial(
            np.array([0.0, 1.0, 0.0]), 0, frozenset({2, 3})
        )
        assert np.allclose(extended, [0.0, 1.0, 0.0, 0.0])

    def test_extend_initial_start_inside_window(self, paper_chain):
        # the special case: t=0 in T moves region mass to TOP
        matrices = build_absorbing_matrices(paper_chain, {0, 1})
        extended = matrices.extend_initial(
            np.array([0.3, 0.2, 0.5]), 0, frozenset({0, 2})
        )
        assert np.allclose(extended, [0.0, 0.0, 0.5, 0.5])

    def test_extend_initial_shape_check(self, paper_chain):
        matrices = build_absorbing_matrices(paper_chain, {0})
        with pytest.raises(ValidationError):
            matrices.extend_initial(np.zeros(5), 0, frozenset({1}))

    def test_empty_region_rejected(self, paper_chain):
        with pytest.raises(QueryError):
            build_absorbing_matrices(paper_chain, set())

    def test_region_out_of_range_rejected(self, paper_chain):
        with pytest.raises(QueryError):
            build_absorbing_matrices(paper_chain, {7})

    def test_pure_backend_matches_scipy(self, paper_chain):
        scipy_m = build_absorbing_matrices(
            paper_chain, {0, 1}, backend="scipy"
        )
        pure_m = build_absorbing_matrices(
            paper_chain, {0, 1}, backend="pure"
        )
        assert np.allclose(
            to_array(scipy_m.m_plus), to_array(pure_m.m_plus)
        )
        assert np.allclose(
            to_array(scipy_m.m_minus), to_array(pure_m.m_minus)
        )


class TestDoubledMatrices:
    """The Section VI construction, checked against the paper's matrices."""

    def test_paper_m_minus(self, paper_chain_section6):
        matrices = build_doubled_matrices(paper_chain_section6, {0})
        m = paper_chain_section6.to_dense()
        dense = to_array(matrices.m_minus)
        assert np.allclose(dense[:3, :3], m)
        assert np.allclose(dense[3:, 3:], m)
        assert np.allclose(dense[:3, 3:], 0.0)
        assert np.allclose(dense[3:, :3], 0.0)

    def test_paper_m_plus(self, paper_chain_section6):
        """The Section VI example's M+ verbatim.

        The example's query region is {s1, s2} (indices {0, 1}): the
        printed M+ redirects transitions into s1 *and* s2 to the shadow
        block (e.g. row s3 sends 0.8 to the shadow copy of s2).
        """
        matrices = build_doubled_matrices(paper_chain_section6, {0, 1})
        expected = [
            [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.5, 0.5, 0.0, 0.0],
            [0.0, 0.0, 0.2, 0.0, 0.8, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            [0.0, 0.0, 0.0, 0.5, 0.0, 0.5],
            [0.0, 0.0, 0.0, 0.0, 0.8, 0.2],
        ]
        assert np.allclose(to_array(matrices.m_plus), expected)

    def test_doubled_matrices_stochastic(self):
        rng = np.random.default_rng(1)
        chain = random_chain(5, rng)
        matrices = build_doubled_matrices(chain, {1, 2})
        for matrix in (matrices.m_minus, matrices.m_plus):
            assert np.allclose(to_array(matrix).sum(axis=1), 1.0)

    def test_extend_initial(self, paper_chain_section6):
        matrices = build_doubled_matrices(paper_chain_section6, {0})
        extended = matrices.extend_initial(
            np.array([1.0, 0.0, 0.0]), 0, frozenset({1, 2})
        )
        assert np.allclose(extended, [1, 0, 0, 0, 0, 0])

    def test_extend_initial_start_in_window(self, paper_chain_section6):
        matrices = build_doubled_matrices(paper_chain_section6, {0})
        extended = matrices.extend_initial(
            np.array([1.0, 0.0, 0.0]), 0, frozenset({0, 1})
        )
        # mass inside the region moves to the shadow block
        assert np.allclose(extended, [0, 0, 0, 1, 0, 0])

    def test_tile_observation(self, paper_chain_section6):
        matrices = build_doubled_matrices(paper_chain_section6, {0})
        tiled = matrices.tile_observation(np.array([0.0, 0.5, 0.5]))
        assert np.allclose(tiled, [0.0, 0.5, 0.5, 0.0, 0.5, 0.5])

    def test_tile_observation_shape_check(self, paper_chain_section6):
        matrices = build_doubled_matrices(paper_chain_section6, {0})
        with pytest.raises(ValidationError):
            matrices.tile_observation(np.zeros(6))

    def test_hit_probability(self, paper_chain_section6):
        matrices = build_doubled_matrices(paper_chain_section6, {0})
        vector = np.array([0.1, 0.2, 0.0, 0.3, 0.0, 0.4])
        assert matrices.hit_probability(vector) == pytest.approx(0.7)


class TestKTimesBlockMatrices:
    def test_shapes(self, paper_chain):
        m_minus, m_plus = build_ktimes_block_matrices(
            paper_chain, {0, 1}, 2
        )
        assert to_array(m_minus).shape == (9, 9)
        assert to_array(m_plus).shape == (9, 9)

    def test_stochastic(self, paper_chain):
        m_minus, m_plus = build_ktimes_block_matrices(
            paper_chain, {0, 1}, 3
        )
        assert np.allclose(to_array(m_minus).sum(axis=1), 1.0)
        assert np.allclose(to_array(m_plus).sum(axis=1), 1.0)

    def test_m_minus_is_block_diagonal(self, paper_chain):
        m_minus, _ = build_ktimes_block_matrices(paper_chain, {0}, 2)
        dense = to_array(m_minus)
        m = paper_chain.to_dense()
        for block in range(3):
            sl = slice(3 * block, 3 * block + 3)
            assert np.allclose(dense[sl, sl], m)
        assert np.allclose(dense[0:3, 3:6], 0.0)

    def test_m_plus_shifts_region_mass_up_one_block(self, paper_chain):
        _, m_plus = build_ktimes_block_matrices(paper_chain, {0}, 2)
        dense = to_array(m_plus)
        # block (0, 1) holds exactly the transitions into state 0
        assert dense[3 * 0 + 1, 3 * 1 + 0] == pytest.approx(0.6)
        # the diagonal of block 0 has the region column zeroed
        assert dense[3 * 0 + 1, 0] == 0.0

    def test_last_block_saturates(self, paper_chain):
        _, m_plus = build_ktimes_block_matrices(paper_chain, {0}, 1)
        dense = to_array(m_plus)
        # the final block keeps the full chain (count cannot grow past |T|)
        assert np.allclose(dense[3:, 3:], paper_chain.to_dense())

    def test_zero_query_times_rejected(self, paper_chain):
        with pytest.raises(QueryError):
            build_ktimes_block_matrices(paper_chain, {0}, 0)
