"""Shared-memory process dispatch: parity, rehydration, publication.

The load-bearing properties:

* thread-pool, process-pool and serial dispatch agree to 1e-12 on
  randomized multi-chain workloads -- including after mid-run
  ``append_observation`` mutations (which turn objects into
  multi-observation Section VI cases);
* CSR matrices survive the shared-memory publish/attach roundtrip
  bit-for-bit, with no pickling of the payload arrays;
* a worker-side :class:`~repro.core.plan_cache.PlanCache` keyed by
  content fingerprint serves rehydrated matrices as hits -- no
  same-address-space assumption, no reconstruction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Observation,
    PSTExistsQuery,
    PSTForAllQuery,
    QueryEngine,
    SpatioTemporalWindow,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.matrices import build_absorbing_matrices
from repro.core.plan_cache import PlanCache
from repro.core.planner import PlanOptions
from repro.core.state_space import LineStateSpace
from repro.exec import dispatch
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

N_STATES = 300
WINDOW = SpatioTemporalWindow.from_ranges(80, 110, 8, 11)

pytestmark = pytest.mark.skipif(
    not dispatch.process_dispatch_available(),
    reason="process dispatch needs scipy",
)


def build_database(seed: int, n_objects: int = 60, n_chains: int = 3):
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        N_STATES, state_space=LineStateSpace(N_STATES)
    )
    for index in range(n_chains):
        database.register_chain(
            f"chain-{index}", make_line_chain(N_STATES, rng=rng)
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(N_STATES, 5, rng),
                time=int(rng.integers(0, 5)),
                chain_id=f"chain-{index % n_chains}",
            )
        )
    return database


class TestSharedMemoryRoundtrip:
    def test_csr_roundtrip_is_exact(self):
        chain = make_line_chain(N_STATES, rng=np.random.default_rng(1))
        segments = []
        try:
            handle = dispatch.publish_csr(chain.matrix, segments)
            attached = dispatch.attach_csr(handle)
            assert (attached != chain.matrix).nnz == 0
            np.testing.assert_array_equal(
                attached.data, chain.matrix.data
            )
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_attached_matrix_is_zero_copy(self):
        chain = make_line_chain(N_STATES, rng=np.random.default_rng(2))
        segments = []
        try:
            handle = dispatch.publish_csr(chain.matrix, segments)
            attached = dispatch.attach_csr(handle)
            # the arrays view the shared segment, they do not own data
            assert not attached.data.flags["OWNDATA"]
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()


class TestPlanCacheRehydration:
    def test_adopt_hits_by_fingerprint_without_construction(self):
        """A rehydrated artefact is a cache hit, never a rebuild."""
        chain = make_line_chain(N_STATES, rng=np.random.default_rng(3))
        matrices = build_absorbing_matrices(chain, WINDOW.region)
        fingerprint = chain.fingerprint()

        worker_cache = PlanCache()
        worker_cache.adopt(
            "absorbing", fingerprint, WINDOW.region, None, matrices
        )
        assert worker_cache.stats.total_constructions == 0

        # an equal-by-value chain (fresh object, same content) hits
        clone = make_line_chain(N_STATES, rng=np.random.default_rng(3))
        assert clone is not chain
        assert (
            worker_cache.absorbing(clone, WINDOW.region, None)
            is matrices
        )
        assert worker_cache.stats.hits == 1
        assert worker_cache.stats.total_constructions == 0

    def test_lookup_fingerprint_miss_is_none(self):
        cache = PlanCache()
        assert (
            cache.lookup_fingerprint(
                "absorbing", "no-such", WINDOW.region, None
            )
            is None
        )
        assert cache.stats.misses == 0  # adoption lookups never count

    def test_worker_rehydrates_from_shared_memory(self):
        """End to end: publish, attach, adopt, evaluate -- in process.

        Runs the worker entry point in this process (the fork path
        executes the same function) and asserts the worker cache
        answered from adopted artefacts with zero constructions of
        absorbing matrices.
        """
        chain = make_line_chain(N_STATES, rng=np.random.default_rng(4))
        matrices = build_absorbing_matrices(chain, WINDOW.region)
        import scipy.sparse as sp

        rng = np.random.default_rng(5)
        initials = sp.csr_matrix(
            np.eye(N_STATES)[rng.integers(0, N_STATES, size=8)]
        )
        segments = []
        try:
            minus_t, plus_t = matrices.transposed()
            task = dispatch._ShardTask(
                fingerprint=chain.fingerprint(),
                chain=dispatch.publish_csr(chain.matrix, segments),
                m_minus=dispatch.publish_csr(
                    matrices.m_minus, segments
                ),
                m_plus=dispatch.publish_csr(matrices.m_plus, segments),
                m_minus_t=dispatch.publish_csr(minus_t, segments),
                m_plus_t=dispatch.publish_csr(plus_t, segments),
                initials=dispatch.publish_csr(initials, segments),
                row_lo=0,
                row_hi=8,
                starts=(0,) * 8,
                region=tuple(sorted(WINDOW.region)),
                times=tuple(sorted(WINDOW.times)),
                method="qb",
                backend=None,
            )
            dispatch._WORKER_CACHE = None  # fresh worker state
            lo, hi, values, timings, elapsed = (
                dispatch._evaluate_shard(task)
            )
            assert elapsed > 0.0
            worker_cache = dispatch._worker_cache()
            assert (
                worker_cache.stats.constructions.get("absorbing", 0)
                == 0
            )
            # parity against the ordinary serial kernel
            from repro import StateDistribution
            from repro.core.batch import batch_qb_exists

            expected = batch_qb_exists(
                chain,
                [
                    StateDistribution(row)
                    for row in initials.toarray()
                ],
                WINDOW,
                matrices=matrices,
            )
            np.testing.assert_allclose(values, expected, atol=1e-12)
            assert "backward_sweep" in timings
        finally:
            dispatch._WORKER_CACHE = None
            for segment in segments:
                segment.close()
                segment.unlink()


class TestDispatchParity:
    @pytest.mark.parametrize("method", ["auto", "qb", "ob"])
    def test_modes_agree_on_randomized_workloads(self, method):
        database = build_database(seed=11)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)
        results = {
            mode: engine.evaluate(
                query,
                method=method,
                options=PlanOptions(dispatch=mode, max_workers=2),
            )
            for mode in ("serial", "thread", "process")
        }
        for mode in ("thread", "process"):
            assert results[mode].plan.dispatch == mode
            for object_id in database.object_ids:
                assert results[mode].values[object_id] == pytest.approx(
                    results["serial"].values[object_id], abs=1e-12
                )

    def test_parity_survives_append_observation(self):
        """Mid-run mutations (objects turning multi) keep parity."""
        database = build_database(seed=23)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)
        rng = np.random.default_rng(7)
        for round_index in range(3):
            # re-sight a few objects: they become Section VI multis
            for _ in range(4):
                object_id = f"obj-{int(rng.integers(0, 60))}"
                obj = database.get(object_id)
                last = obj.observations.last.time
                # a broad (always-feasible) re-sighting still forces
                # the Section VI doubled-space path for this object
                database.append_observation(
                    object_id,
                    Observation.uniform(
                        last + 1 + round_index,
                        N_STATES,
                        range(N_STATES),
                    ),
                )
            serial = engine.evaluate(
                query, options=PlanOptions(dispatch="serial")
            )
            process = engine.evaluate(
                query,
                options=PlanOptions(dispatch="process", max_workers=2),
            )
            thread = engine.evaluate(
                query,
                options=PlanOptions(dispatch="thread", max_workers=2),
            )
            for object_id in database.object_ids:
                assert process.values[object_id] == pytest.approx(
                    serial.values[object_id], abs=1e-12
                )
                assert thread.values[object_id] == pytest.approx(
                    serial.values[object_id], abs=1e-12
                )

    def test_seeded_mc_exists_rides_pool_bit_exact(self):
        """Seeded MC singles shard into the pool with identical
        per-object seed streams: parity is bit-exact, not 1e-12."""
        database = build_database(seed=47, n_objects=24)
        engine = QueryEngine(database)
        query = PSTExistsQuery(WINDOW)
        serial = engine.evaluate(
            query,
            method="mc",
            options=PlanOptions(
                dispatch="serial", n_samples=64, seed=123
            ),
        )
        process = engine.evaluate(
            query,
            method="mc",
            options=PlanOptions(
                dispatch="process", max_workers=2,
                n_samples=64, seed=123,
            ),
        )
        for object_id in database.object_ids:
            assert (
                process.values[object_id]
                == serial.values[object_id]
            )

    def test_forall_complement_rides_process_dispatch(self):
        database = build_database(seed=31, n_objects=30)
        engine = QueryEngine(database)
        query = PSTForAllQuery(WINDOW)
        serial = engine.evaluate(
            query, options=PlanOptions(dispatch="serial")
        )
        process = engine.evaluate(
            query, options=PlanOptions(dispatch="process", max_workers=2)
        )
        for object_id in database.object_ids:
            assert process.values[object_id] == pytest.approx(
                serial.values[object_id], abs=1e-12
            )

    def test_process_mode_fills_group_elapsed(self):
        database = build_database(seed=61, n_objects=24)
        engine = QueryEngine(database)
        result = engine.evaluate(
            PSTExistsQuery(WINDOW),
            options=PlanOptions(dispatch="process", max_workers=2),
        )
        for group in result.plan.groups:
            assert group.elapsed_seconds is not None
            assert group.elapsed_seconds >= 0.0
        assert any(
            group.elapsed_seconds > 0.0
            for group in result.plan.groups
        )

    def test_single_qb_group_does_not_auto_pick_process(self):
        """A lone QB group cannot shard: auto dispatch must not pay
        fork/publication for zero parallelism, even when the
        estimated cost clears the process threshold."""
        from repro.core.planner import CostModel, QueryPlanner

        database = build_database(
            seed=71, n_objects=80, n_chains=1
        )
        planner = QueryPlanner(
            database,
            cost_model=CostModel(
                process_min_cost=0.0, parallel_min_objects=1
            ),
        )
        plan = planner.plan(
            PSTExistsQuery(WINDOW), PlanOptions(method="qb")
        )
        assert plan.dispatch != "process"

    def test_explain_surfaces_dispatch_and_operators(self):
        database = build_database(seed=41, n_objects=24)
        engine = QueryEngine(database)
        plan = engine.explain(
            PSTExistsQuery(WINDOW),
            options=PlanOptions(dispatch="process", max_workers=2),
        )
        assert plan.dispatch == "process"
        assert plan.operator_seconds  # timing hooks populated
        rendered = plan.describe()
        assert "process x" in rendered
        assert "operators:" in rendered
        evaluate_stage = [
            stage for stage in plan.stages if stage.name == "evaluate"
        ][0]
        assert "process" in evaluate_stage.detail
