"""Out-of-core sharded store: parity, recovery, residency, doctor.

The load-bearing properties:

* the store facade answers every query kind (qb/ob/mc exists, exact
  and MC k-times, for-all) identically (1e-12; in practice bit-exact)
  to the in-RAM database it was created from -- across serial, thread
  and process dispatch, where process dispatch takes the store-scatter
  path over zero-copy shard workers;
* the journal + snapshot format survives restarts: appends, adds and
  removes made after the snapshot replay on reopen, and ``snapshot()``
  folds the overlay into fresh slabs without changing any answer;
* shard workers attach the memory-mapped slabs once and serve every
  later query warm (``fresh_attaches == 0``), and a killed or
  poisoned worker degrades shard -> parent without changing answers;
* the slab pool keeps resident mapped bytes under the configured cap
  by LRU-unmapping cold slabs;
* ``store_health`` / ``sweep_stale_snapshots`` (the ``repro-bench
  doctor --store`` plumbing) report and reclaim stale generations.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import (
    Observation,
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    QueryEngine,
    SpatioTemporalWindow,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.planner import PlanOptions
from repro.core.state_space import LineStateSpace
from repro.core.streaming import StreamingQueryEngine
from repro.exec import dispatch
from repro.exec.faults import FaultInjector, FaultSpec
from repro.store.sharded import (
    ShardedTrajectoryStore,
    attach_shard,
    store_health,
    sweep_stale_snapshots,
)
from repro.store.slabs import SlabPool
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

N_STATES = 120
WINDOW = SpatioTemporalWindow.from_ranges(30, 45, 6, 9)

pytestmark = pytest.mark.skipif(
    not dispatch.process_dispatch_available(),
    reason="store scatter needs process dispatch (scipy)",
)


def build_database(
    seed: int, n_objects: int = 36, n_chains: int = 2
) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        N_STATES, state_space=LineStateSpace(N_STATES)
    )
    for index in range(n_chains):
        database.register_chain(
            f"chain-{index}", make_line_chain(N_STATES, rng=rng)
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(N_STATES, 5, rng),
                time=int(rng.integers(0, 5)),
                chain_id=f"chain-{index % n_chains}",
            )
        )
    return database


def feasible_observation(database, object_id: str, time: int):
    """A precise observation consistent with the trajectory model."""
    obj = database.get(object_id)
    chain = database.chain(obj.chain_id)
    vector = np.asarray(
        obj.initial.distribution.vector, dtype=float
    )
    for _ in range(time - obj.initial.time):
        vector = vector @ chain.matrix
    state = int(np.argmax(vector))
    return Observation.precise(time, N_STATES, state)


def assert_parity(expect, got, bound=1e-12):
    assert set(expect) == set(got)
    for object_id in expect:
        delta = np.max(
            np.abs(
                np.asarray(expect[object_id], dtype=float)
                - np.asarray(got[object_id], dtype=float)
            )
        )
        assert delta <= bound, (object_id, delta)


@pytest.fixture
def database():
    return build_database(11)


@pytest.fixture
def store(tmp_path, database):
    return ShardedTrajectoryStore.create(
        tmp_path / "store", database, shards_per_chain=4
    )


class TestStoreParity:
    """Store vs in-RAM across query kinds and dispatch modes."""

    @pytest.mark.parametrize(
        "mode", ["serial", "thread", "process"]
    )
    @pytest.mark.parametrize(
        "query,kwargs",
        [
            (PSTExistsQuery(WINDOW), {"method": "qb"}),
            (PSTExistsQuery(WINDOW), {"method": "ob"}),
            (PSTForAllQuery(WINDOW), {}),
            (PSTKTimesQuery(WINDOW, k=2), {}),
            (PSTKTimesQuery(WINDOW), {}),
        ],
        ids=["qb", "ob", "forall", "ktimes-k", "ktimes-dist"],
    )
    def test_exact_kinds(self, database, store, query, kwargs, mode):
        expect = QueryEngine(database).evaluate(
            query, options=PlanOptions(parallel=False, **kwargs)
        ).values
        options = (
            PlanOptions(parallel=False, **kwargs)
            if mode == "serial"
            else PlanOptions(dispatch=mode, max_workers=2, **kwargs)
        )
        result = QueryEngine(store).evaluate(query, options=options)
        assert_parity(expect, result.values)
        if mode == "process":
            assert result.plan.store_stats is not None
            assert result.plan.store_stats["shards"] == 8

    @pytest.mark.parametrize(
        "mode", ["serial", "thread", "process"]
    )
    @pytest.mark.parametrize(
        "query", [PSTExistsQuery(WINDOW), PSTKTimesQuery(WINDOW, k=1)],
        ids=["exists", "ktimes"],
    )
    def test_seeded_mc(self, database, store, query, mode):
        kwargs = dict(
            method="mc", allow_approximate=True, n_samples=40, seed=7
        )
        expect = QueryEngine(database).evaluate(
            query, options=PlanOptions(parallel=False, **kwargs)
        ).values
        options = (
            PlanOptions(parallel=False, **kwargs)
            if mode == "serial"
            else PlanOptions(dispatch=mode, max_workers=2, **kwargs)
        )
        got = QueryEngine(store).evaluate(query, options=options).values
        # seeded MC streams are positional-stable, so parity is exact
        assert_parity(expect, got, bound=0.0)

    def test_multi_observation_parity(self, tmp_path):
        database = build_database(5)
        for object_id in list(database.object_ids)[::4]:
            database.append_observation(
                object_id,
                feasible_observation(database, object_id, 6),
            )
        store = ShardedTrajectoryStore.create(
            tmp_path / "multi", database, shards_per_chain=3
        )
        assert store.overlay_object_ids() == frozenset()
        expect = QueryEngine(database).evaluate(
            PSTExistsQuery(WINDOW), options=PlanOptions(parallel=False)
        ).values
        got = QueryEngine(store).evaluate(
            PSTExistsQuery(WINDOW),
            options=PlanOptions(dispatch="process", max_workers=2),
        ).values
        assert_parity(expect, got)


class TestJournalAndRestart:
    def test_mutations_replay_on_reopen(self, tmp_path, database):
        store = ShardedTrajectoryStore.create(
            tmp_path / "store", database, shards_per_chain=4
        )
        rng = np.random.default_rng(3)
        store.append_observation(
            "obj-1", feasible_observation(database, "obj-1", 6)
        )
        store.add(
            UncertainObject.with_distribution(
                "obj-new",
                make_object_distribution(N_STATES, 5, rng),
                time=1,
                chain_id="chain-0",
            )
        )
        store.remove("obj-2")
        reopened = ShardedTrajectoryStore(tmp_path / "store")
        assert set(reopened.object_ids) == set(store.object_ids)
        assert "obj-new" in reopened
        assert "obj-2" not in reopened
        assert len(reopened.get("obj-1").observations) == 2
        expect = QueryEngine(store).evaluate(
            PSTExistsQuery(WINDOW), options=PlanOptions(parallel=False)
        ).values
        got = QueryEngine(reopened).evaluate(
            PSTExistsQuery(WINDOW),
            options=PlanOptions(dispatch="process", max_workers=2),
        ).values
        assert_parity(expect, got)

    def test_snapshot_folds_overlay(self, tmp_path, database):
        store = ShardedTrajectoryStore.create(
            tmp_path / "store", database, shards_per_chain=4
        )
        store.append_observation(
            "obj-3", feasible_observation(database, "obj-3", 6)
        )
        assert "obj-3" in store.overlay_object_ids()
        before = QueryEngine(store).evaluate(
            PSTExistsQuery(WINDOW), options=PlanOptions(parallel=False)
        ).values
        generation = store.generation
        token = store.fusion_token
        store.snapshot()
        assert store.generation == generation + 1
        assert store.fusion_token != token
        assert store.overlay_object_ids() == frozenset()
        after = QueryEngine(store).evaluate(
            PSTExistsQuery(WINDOW),
            options=PlanOptions(dispatch="process", max_workers=2),
        ).values
        assert_parity(before, after)

    def test_journal_offsets_tracked_per_shard(self, store, database):
        store.append_observation(
            "obj-1", feasible_observation(database, "obj-1", 6)
        )
        report = store_health(store.path)
        assert report["journal_records"] >= 1
        assert report["shard_journal_offsets"]


class TestStreamingTicks:
    def test_ticks_match_batch_and_autosnapshot(
        self, tmp_path, database, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_AUTOSNAPSHOT", "1")
        store = ShardedTrajectoryStore.create(
            tmp_path / "store", database, shards_per_chain=4
        )
        generation = store.generation
        streaming = StreamingQueryEngine(store)
        standing = streaming.watch(PSTExistsQuery(WINDOW), stride=1)
        batch = QueryEngine(store)
        for tick in range(3):
            if tick == 1:
                store.append_observation(
                    "obj-0",
                    feasible_observation(database, "obj-0", 5),
                )
            result = standing.tick()
            expect = batch.evaluate(
                result.query, options=PlanOptions(parallel=False)
            ).values
            assert_parity(expect, result.values)
        # the overlay crossed the (1-record) threshold after the tick
        # committed, so the store folded it into a new generation
        assert store.generation > generation
        assert store.overlay_object_ids() == frozenset()


class TestShardWorkers:
    def test_warm_queries_attach_nothing(self, store):
        if not hasattr(os, "fork"):
            pytest.skip("fork inheritance requires a fork platform")
        # map every shard in the parent, then drain the pool so the
        # next one forks *after* the mappings exist: workers inherit
        # the parent's shard views zero-copy and never attach fresh
        for entry in store.store_shards():
            attach_shard(
                str(store.path), store.generation, entry["shard_id"]
            )
        dispatch.shutdown()
        groups = [("chain-0", "qb", None), ("chain-1", "qb", None)]
        for _ in range(2):
            _values, _seconds, stats = dispatch.run_store_shards(
                store, groups, WINDOW, "exists", max_workers=2
            )
            assert stats["fresh_attaches"] == 0

    def test_attach_shard_is_cached_per_process(self, store):
        shard_id = store.store_shards()[0]["shard_id"]
        first, _ = attach_shard(
            str(store.path), store.generation, shard_id
        )
        second, fresh = attach_shard(
            str(store.path), store.generation, shard_id
        )
        assert second is first
        assert fresh is False

    def test_killed_worker_recovers_exactly(self, database, store):
        shard_id = store.store_shards()[0]["shard_id"]
        faults = FaultInjector(
            FaultSpec(
                site="worker:store-shard",
                action="kill",
                match={"shard_id": shard_id, "attempt": 0},
            )
        )
        expect = QueryEngine(database).evaluate(
            PSTExistsQuery(WINDOW), options=PlanOptions(parallel=False)
        ).values
        result = QueryEngine(store).evaluate(
            PSTExistsQuery(WINDOW),
            options=PlanOptions(
                dispatch="process", max_workers=2, faults=faults
            ),
        )
        assert_parity(expect, result.values)
        assert any(
            "rebuilt" in event for event in result.plan.degradations
        )

    def test_poisoned_shard_degrades_to_parent(self, database, store):
        shard_id = store.store_shards()[0]["shard_id"]
        faults = FaultInjector(
            FaultSpec(
                site="worker:store-shard",
                action="raise",
                match={"shard_id": shard_id},
                times=None,  # every worker attempt fails
            )
        )
        expect = QueryEngine(database).evaluate(
            PSTExistsQuery(WINDOW), options=PlanOptions(parallel=False)
        ).values
        result = QueryEngine(store).evaluate(
            PSTExistsQuery(WINDOW),
            options=PlanOptions(
                dispatch="process", max_workers=2, faults=faults
            ),
        )
        assert_parity(expect, result.values)
        assert result.plan.store_stats["parent_fallbacks"] == 1
        assert any(
            "degraded to parent" in event
            for event in result.plan.degradations
        )


class TestSlabResidency:
    def test_pool_keeps_resident_bytes_under_cap(self, store):
        slabs = [
            entry
            for shard in store.store_shards()
            for entry in [
                store.path
                / f"snapshot-{store.generation:06d}"
                / shard["shard_id"]
                / "obs_weights.npy"
            ]
        ]
        sizes = [path.stat().st_size for path in slabs]
        cap = max(sizes) + min(sizes)  # forces eviction churn
        pool = SlabPool(cap_bytes=cap)
        for path in slabs * 2:
            view = pool.map(path)
            assert view.size > 0
            assert pool.mapped_bytes() <= cap
        stats = pool.stats()
        assert stats["evictions"] > 0
        assert stats["high_water_bytes"] <= cap

    def test_ram_cap_env(self, monkeypatch):
        from repro.store.slabs import ram_cap_bytes

        monkeypatch.setenv("REPRO_STORE_RAM_CAP", "1048576")
        assert ram_cap_bytes() == 1048576
        monkeypatch.setenv("REPRO_STORE_RAM_CAP", "64m")
        assert ram_cap_bytes() == 64 * 1024 * 1024


class TestDoctor:
    def test_health_and_sweep(self, tmp_path, database):
        store = ShardedTrajectoryStore.create(
            tmp_path / "store", database, shards_per_chain=4
        )
        store.append_observation(
            "obj-1", feasible_observation(database, "obj-1", 6)
        )
        store.snapshot()  # leaves generation 1 on disk as stale
        report = store_health(store.path)
        assert report["shards"] == 8
        assert report["objects"] == 36
        assert report["slab_bytes"] > 0
        assert report["stale_snapshots"] == ["snapshot-000001"]
        removed, freed = sweep_stale_snapshots(store.path)
        assert removed == 1
        assert freed > 0
        assert store_health(store.path)["stale_snapshots"] == []
        # the swept store still answers queries
        values = QueryEngine(store).evaluate(
            PSTExistsQuery(WINDOW), options=PlanOptions(parallel=False)
        ).values
        assert len(values) == 36

    def test_doctor_cli_reports_store(self, tmp_path, database, capsys):
        from repro.bench.cli import main

        store = ShardedTrajectoryStore.create(
            tmp_path / "store", database, shards_per_chain=4
        )
        code = main(["doctor", "--store", str(store.path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "store         :" in out
        assert "8 holding 36 object(s)" in out
