"""Tests for object-based query processing (Section V-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarkovChain,
    PossibleWorldEnumerator,
    SpatioTemporalWindow,
    StateDistribution,
    build_absorbing_matrices,
    ob_exists_probability,
    ob_forall_probability,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain, random_distribution, random_window


class TestPaperExample:
    def test_exists_equals_0_864(self, paper_chain, paper_window, paper_start):
        assert ob_exists_probability(
            paper_chain, paper_start, paper_window
        ) == pytest.approx(0.864)

    def test_intermediate_vectors(self, paper_chain, paper_window):
        """Walk the paper's Example 1 step by step.

        Note: the paper prints P(o,2) = (0, 0, 0.64, 0.36), but its own
        Section V-A prose derives P(o,2) = (0, 0.32, 0.68) -- a 32% true-hit
        lower bound with 68% remaining at s3 -- and only (0.68, 0.32)
        leads to the printed final result 0.864.  The printed intermediate
        is a typo; we assert the self-consistent values.
        """
        matrices = build_absorbing_matrices(paper_chain, paper_window.region)
        vector = matrices.extend_initial(
            np.array([0.0, 1.0, 0.0]), 0, paper_window.times
        )
        assert np.allclose(vector, [0, 1, 0, 0])
        vector = vector @ matrices.m_minus  # t=1 not in T
        assert np.allclose(vector, [0.6, 0, 0.4, 0])
        vector = vector @ matrices.m_plus  # t=2 in T
        assert np.allclose(vector, [0, 0, 0.68, 0.32])
        vector = vector @ matrices.m_plus  # t=3 in T
        assert np.allclose(vector, [0, 0, 0.136, 0.864])

    def test_lower_bound_after_first_query_time(self, paper_chain, paper_start):
        # P(o,2) gives the 32% lower bound the paper derives
        window = SpatioTemporalWindow(frozenset({0, 1}), frozenset({2}))
        assert ob_exists_probability(
            paper_chain, paper_start, window
        ) == pytest.approx(0.32)

    def test_pure_backend_same_answer(self, paper_chain, paper_window, paper_start):
        assert ob_exists_probability(
            paper_chain, paper_start, paper_window, backend="pure"
        ) == pytest.approx(0.864)


class TestAgainstEnumeration:
    def test_random_instances(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            n = int(rng.integers(2, 6))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng, sparse=True)
            window = random_window(n, rng, max_time=5)
            expected = PossibleWorldEnumerator(
                chain, initial, window.t_end
            ).exists_probability(window)
            actual = ob_exists_probability(chain, initial, window)
            assert actual == pytest.approx(expected, abs=1e-10)

    def test_start_time_inside_window(self):
        rng = np.random.default_rng(43)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = SpatioTemporalWindow(
            frozenset({1, 2}), frozenset({0, 2})
        )
        expected = PossibleWorldEnumerator(
            chain, initial, window.t_end
        ).exists_probability(window)
        assert ob_exists_probability(
            chain, initial, window
        ) == pytest.approx(expected)

    def test_noncontiguous_region_and_times(self):
        rng = np.random.default_rng(44)
        chain = random_chain(6, rng)
        initial = random_distribution(6, rng)
        window = SpatioTemporalWindow(
            frozenset({0, 5}), frozenset({1, 4})
        )
        expected = PossibleWorldEnumerator(
            chain, initial, 4
        ).exists_probability(window)
        assert ob_exists_probability(
            chain, initial, window
        ) == pytest.approx(expected)


class TestForAll:
    def test_complement_identity_paper_chain(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(
            frozenset({1, 2}), frozenset({1, 2})
        )
        expected = PossibleWorldEnumerator(
            paper_chain, paper_start, 2
        ).forall_probability(window)
        assert ob_forall_probability(
            paper_chain, paper_start, window
        ) == pytest.approx(expected)

    def test_whole_space_region_is_certain(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(
            frozenset({0, 1, 2}), frozenset({1, 2, 3})
        )
        assert ob_forall_probability(
            paper_chain, paper_start, window
        ) == pytest.approx(1.0)

    def test_random_instances(self):
        rng = np.random.default_rng(45)
        for _ in range(15):
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=4)
            expected = PossibleWorldEnumerator(
                chain, initial, window.t_end
            ).forall_probability(window)
            assert ob_forall_probability(
                chain, initial, window
            ) == pytest.approx(expected, abs=1e-10)


class TestEarlyTermination:
    def test_threshold_returns_lower_bound(self, paper_chain, paper_start,
                                           paper_window):
        # stop as soon as P(TOP) >= 0.3: after t=2 it is 0.32 (the paper's
        # "lower bound of 32%" in Section V-A)
        result = ob_exists_probability(
            paper_chain,
            paper_start,
            paper_window,
            stop_at_probability=0.3,
        )
        assert result == pytest.approx(0.32)
        assert result <= 0.864

    def test_threshold_not_reached_gives_exact(self, paper_chain,
                                               paper_start, paper_window):
        result = ob_exists_probability(
            paper_chain,
            paper_start,
            paper_window,
            stop_at_probability=0.99,
        )
        assert result == pytest.approx(0.864)


class TestPruning:
    def test_pruned_matches_unpruned(self):
        rng = np.random.default_rng(46)
        for _ in range(10):
            n = int(rng.integers(3, 7))
            chain = random_chain(n, rng, density=0.35)
            initial = random_distribution(n, rng, sparse=True)
            window = random_window(n, rng, max_time=4)
            unpruned = ob_exists_probability(chain, initial, window)
            pruned = ob_exists_probability(
                chain, initial, window, prune=True
            )
            assert pruned == pytest.approx(unpruned, abs=1e-10)

    def test_unreachable_region_returns_zero(self):
        # two disconnected components
        chain = MarkovChain(
            [
                [0.5, 0.5, 0.0, 0.0],
                [1.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.3, 0.7],
                [0.0, 0.0, 1.0, 0.0],
            ]
        )
        initial = StateDistribution.point(4, 0)
        window = SpatioTemporalWindow(frozenset({2, 3}), frozenset({5}))
        assert ob_exists_probability(
            chain, initial, window, prune=True
        ) == 0.0


class TestValidation:
    def test_dimension_mismatch(self, paper_chain, paper_window):
        with pytest.raises(ValidationError):
            ob_exists_probability(
                paper_chain, StateDistribution.point(5, 0), paper_window
            )

    def test_query_before_observation(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        with pytest.raises(QueryError):
            ob_exists_probability(
                paper_chain, paper_start, window, start_time=2
            )

    def test_region_out_of_range(self, paper_chain, paper_start):
        window = SpatioTemporalWindow(frozenset({9}), frozenset({1}))
        with pytest.raises(QueryError):
            ob_exists_probability(paper_chain, paper_start, window)

    def test_wrong_prebuilt_matrices(self, paper_chain, paper_start,
                                     paper_window):
        matrices = build_absorbing_matrices(paper_chain, {2})
        with pytest.raises(QueryError):
            ob_exists_probability(
                paper_chain, paper_start, paper_window, matrices=matrices
            )

    def test_negative_start_time(self, paper_chain, paper_start,
                                 paper_window):
        with pytest.raises(QueryError):
            ob_exists_probability(
                paper_chain, paper_start, paper_window, start_time=-1
            )


class TestLaterObservationStart:
    def test_start_time_shifts_window_semantics(self, paper_chain):
        """Observation at t=1 with window T={3,4} equals the t=0 case
        with T={2,3} (homogeneous chain: only elapsed steps matter)."""
        start = StateDistribution.point(3, 1)
        shifted = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({3, 4})
        )
        assert ob_exists_probability(
            paper_chain, start, shifted, start_time=1
        ) == pytest.approx(0.864)
