"""The operator layer: one kernel implementation for every caller.

The load-bearing properties: each operator reproduces the legacy
per-path implementations bit-for-bit (the batched kernels, per-object
fallbacks, and streaming ladder are all thin schedules over the same
operators now), and the per-call timing hooks account every call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Observation,
    ObservationSet,
    SpatioTemporalWindow,
    StateDistribution,
)
from repro.core.errors import InfeasibleEvidenceError, QueryError
from repro.core.matrices import (
    build_absorbing_matrices,
    build_doubled_matrices,
)
from repro.core.plan_cache import PlanCache
from repro.exec.operators import (
    BACKWARD_SWEEP,
    BUILD_ABSORBING,
    FORWARD_SWEEP,
    LADDER_EXTEND,
    POSTERIOR_COLLAPSE,
    ExecutionContext,
    OperatorStats,
    SweepSchedule,
)
from repro.workloads.synthetic import make_line_chain

N_STATES = 60
WINDOW = SpatioTemporalWindow.from_ranges(20, 30, 6, 9)


@pytest.fixture(scope="module")
def chain():
    return make_line_chain(N_STATES, rng=np.random.default_rng(5))


@pytest.fixture(scope="module")
def matrices(chain):
    return build_absorbing_matrices(chain, WINDOW.region)


class TestTimingHooks:
    def test_every_call_recorded(self, chain, matrices):
        context = ExecutionContext()
        for _ in range(3):
            BACKWARD_SWEEP(
                (matrices, WINDOW, [0]),
                chain,
                WINDOW.region,
                context=context,
            )
        stats = context.timings["backward_sweep"]
        assert stats.calls == 3
        assert stats.seconds > 0.0

    def test_no_context_is_fine(self, chain, matrices):
        result = BACKWARD_SWEEP(
            (matrices, WINDOW, [0]), chain, WINDOW.region
        )
        assert 0 in result

    def test_merge_folds_worker_tuples(self):
        context = ExecutionContext()
        context.record("forward_sweep", 0.5)
        context.merge({"forward_sweep": (2, 0.25), "mc_sample": (1, 0.1)})
        assert context.timings["forward_sweep"].calls == 3
        assert context.timings["forward_sweep"].seconds == pytest.approx(
            0.75
        )
        assert context.timings["mc_sample"] == OperatorStats(1, 0.1)

    def test_serializable_roundtrip(self):
        context = ExecutionContext()
        context.record("ladder_extend", 0.125)
        other = ExecutionContext()
        other.merge(context.serializable_timings())
        assert other.timings == context.timings


class TestBuildMatrices:
    def test_resolves_through_plan_cache(self, chain):
        cache = PlanCache()
        context = ExecutionContext(plan_cache=cache)
        first = BUILD_ABSORBING(
            None, chain, WINDOW.region, None, context=context
        )
        second = BUILD_ABSORBING(
            None, chain, WINDOW.region, None, context=context
        )
        assert first is second
        assert cache.stats.constructions["absorbing"] == 1

    def test_prebuilt_region_mismatch_raises(self, chain, matrices):
        with pytest.raises(QueryError):
            BUILD_ABSORBING(
                matrices, chain, frozenset({0, 1}), None
            )


class TestForwardSweep:
    def test_matches_backward_answer(self, chain, matrices):
        """Forward (OB) and backward (QB) operators agree exactly."""
        initial = StateDistribution.point(N_STATES, 3)
        schedule = SweepSchedule(
            n_rows=1,
            first=0,
            last=WINDOW.t_end,
            times=WINDOW.times,
            activations={0: [(0, initial.vector)]},
            harvests={WINDOW.t_end: [0]},
            read="top",
            read_offset=matrices.top_index,
        )
        forward = FORWARD_SWEEP(
            (matrices, schedule), chain, WINDOW.region
        )
        backward = BACKWARD_SWEEP(
            (matrices, WINDOW, [0]), chain, WINDOW.region
        )
        extended = matrices.extend_initial(
            np.asarray(initial.vector, dtype=float), 0, WINDOW.times
        )
        assert forward[0] == pytest.approx(
            float(extended @ backward[0]), abs=1e-12
        )

    def test_stop_threshold_returns_lower_bound(self, chain, matrices):
        initial = StateDistribution.point(N_STATES, 25)
        base_schedule = dict(
            n_rows=1,
            first=0,
            last=WINDOW.t_end,
            times=WINDOW.times,
            activations={0: [(0, initial.vector)]},
            harvests={WINDOW.t_end: [0]},
            read="top",
            read_offset=matrices.top_index,
        )
        exact = FORWARD_SWEEP(
            (matrices, SweepSchedule(**base_schedule)),
            chain,
            WINDOW.region,
        )[0]
        assert exact > 0.05
        bounded = FORWARD_SWEEP(
            (
                matrices,
                SweepSchedule(**base_schedule, stop_threshold=0.05),
            ),
            chain,
            WINDOW.region,
        )[0]
        assert 0.05 <= bounded <= exact + 1e-12

    def test_infeasible_fusion_raises(self, chain):
        doubled = build_doubled_matrices(chain, WINDOW.region)
        start = np.zeros(N_STATES, dtype=float)
        start[0] = 1.0
        contradiction = np.zeros(N_STATES, dtype=float)
        contradiction[N_STATES - 1] = 1.0  # unreachable in 1 step
        schedule = SweepSchedule(
            n_rows=1,
            first=0,
            last=2,
            times=WINDOW.times,
            activations={0: [(0, start)]},
            fusions={1: [(
                0, doubled.tile_observation(contradiction)
            )]},
            harvests={2: [0]},
            read="tail",
            read_offset=doubled.n_states,
        )
        with pytest.raises(InfeasibleEvidenceError):
            FORWARD_SWEEP((doubled, schedule), chain, WINDOW.region)


class TestLadderExtend:
    def test_rungs_are_repeated_products(self, chain, matrices):
        base = np.zeros(matrices.size, dtype=float)
        base[matrices.top_index] = 1.0
        rungs = LADDER_EXTEND(
            (matrices.m_minus, base, 3), chain, WINDOW.region
        )
        assert len(rungs) == 3
        expected = base
        for rung in rungs:
            expected = matrices.m_minus @ expected
            np.testing.assert_allclose(rung, expected, atol=0)


class TestPosteriorCollapse:
    def test_matches_fresh_filtering_when_resumed(self, chain):
        observations = ObservationSet.of(
            Observation.precise(0, N_STATES, 10),
            Observation.uniform(3, N_STATES, range(8, 16)),
            Observation.uniform(6, N_STATES, range(10, 20)),
        )
        t_fresh, fresh = POSTERIOR_COLLAPSE(
            (observations, None), chain, WINDOW.region
        )
        prefix = ObservationSet.of(*observations.observations[:2])
        t_mid, mid = POSTERIOR_COLLAPSE(
            (prefix, None), chain, WINDOW.region
        )
        t_resumed, resumed = POSTERIOR_COLLAPSE(
            (observations, (t_mid, mid)), chain, WINDOW.region
        )
        assert t_fresh == t_resumed == 6
        np.testing.assert_allclose(resumed, fresh, atol=1e-14)
