"""Tests for probabilistic nearest-neighbour queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    GridStateSpace,
    LineStateSpace,
    MarkovChain,
    MonteCarloSampler,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
    nearest_neighbor_probabilities,
)
from repro.core.errors import QueryError

from conftest import random_chain


def line_database(chain, positions, n_states):
    database = TrajectoryDatabase.with_chain(
        chain, state_space=LineStateSpace(n_states)
    )
    for index, state in enumerate(positions):
        database.add(
            UncertainObject.at_state(f"o{index}", n_states, state)
        )
    return database


class TestDeterministicCases:
    def test_certain_objects_at_time_zero(self):
        n = 10
        chain = MarkovChain.identity(n)
        database = line_database(chain, [1, 5, 9], n)
        result = nearest_neighbor_probabilities(database, (4.9,), 0)
        assert result["o1"] == pytest.approx(1.0)  # state 5 is closest
        assert result["o0"] == pytest.approx(0.0)
        assert result["o2"] == pytest.approx(0.0)

    def test_exact_tie_split_evenly(self):
        n = 10
        chain = MarkovChain.identity(n)
        database = line_database(chain, [3, 7], n)
        result = nearest_neighbor_probabilities(database, (5.0,), 0)
        assert result["o0"] == pytest.approx(0.5)
        assert result["o1"] == pytest.approx(0.5)

    def test_three_way_tie(self):
        grid = GridStateSpace(3, 3)
        chain = MarkovChain.identity(9)
        database = TrajectoryDatabase.with_chain(chain, state_space=grid)
        # three corners equidistant from the centre cell's centre
        for index, (x, y) in enumerate([(0, 0), (2, 2), (0, 2)]):
            database.add(
                UncertainObject.at_state(
                    f"o{index}", 9, grid.state_of_cell(x, y)
                )
            )
        center = grid.location_of(grid.state_of_cell(1, 1))
        result = nearest_neighbor_probabilities(database, center, 0)
        for probability in result.values():
            assert probability == pytest.approx(1 / 3)

    def test_single_object_is_always_nn(self):
        n = 5
        rng = np.random.default_rng(0)
        chain = random_chain(n, rng)
        database = line_database(chain, [2], n)
        result = nearest_neighbor_probabilities(database, (0.0,), 3)
        assert result["o0"] == pytest.approx(1.0)


class TestProbabilisticProperties:
    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(1)
        n = 12
        chain = random_chain(n, rng, density=0.4)
        database = line_database(chain, [0, 4, 8, 11], n)
        for time in (0, 2, 5):
            result = nearest_neighbor_probabilities(
                database, (6.0,), time
            )
            assert sum(result.values()) == pytest.approx(1.0)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(2)
        n = 8
        chain = random_chain(n, rng, density=0.5)
        database = line_database(chain, [1, 6], n)
        time = 3
        exact = nearest_neighbor_probabilities(database, (3.0,), time)

        sampler_a = MonteCarloSampler(chain, seed=10)
        sampler_b = MonteCarloSampler(chain, seed=11)
        n_samples = 40_000
        paths_a = sampler_a.sample_paths(
            StateDistribution.point(n, 1), time, n_samples
        )
        paths_b = sampler_b.sample_paths(
            StateDistribution.point(n, 6), time, n_samples
        )
        dist_a = np.abs(paths_a[:, time] - 3.0)
        dist_b = np.abs(paths_b[:, time] - 3.0)
        wins_a = (dist_a < dist_b).mean() + 0.5 * (dist_a == dist_b).mean()
        assert exact["o0"] == pytest.approx(float(wins_a), abs=0.02)

    def test_closer_distribution_wins_more(self):
        """With a *local* chain the initially closer object stays the
        likelier nearest neighbour."""
        from repro.workloads.synthetic import make_line_chain

        n = 20
        chain = make_line_chain(n, state_spread=3, max_step=4, seed=3)
        database = line_database(chain, [2, 17], n)
        result = nearest_neighbor_probabilities(database, (3.0,), 2)
        assert result["o0"] > result["o1"]


class TestValidation:
    def test_empty_database(self):
        chain = MarkovChain.identity(3)
        database = TrajectoryDatabase.with_chain(
            chain, state_space=LineStateSpace(3)
        )
        with pytest.raises(QueryError):
            nearest_neighbor_probabilities(database, (0.0,), 0)

    def test_missing_state_space(self):
        chain = MarkovChain.identity(3)
        database = TrajectoryDatabase.with_chain(chain)
        database.add(UncertainObject.at_state("a", 3, 0))
        with pytest.raises(QueryError):
            nearest_neighbor_probabilities(database, (0.0,), 0)

    def test_negative_time(self):
        chain = MarkovChain.identity(3)
        database = line_database(chain, [0], 3)
        with pytest.raises(QueryError):
            nearest_neighbor_probabilities(database, (0.0,), -1)

    def test_object_observed_after_query_time(self):
        chain = MarkovChain.identity(3)
        database = TrajectoryDatabase.with_chain(
            chain, state_space=LineStateSpace(3)
        )
        database.add(UncertainObject.at_state("late", 3, 0, time=5))
        with pytest.raises(QueryError):
            nearest_neighbor_probabilities(database, (0.0,), 2)

    def test_dimension_mismatch(self):
        chain = MarkovChain.identity(3)
        database = line_database(chain, [0], 3)
        with pytest.raises(QueryError):
            nearest_neighbor_probabilities(database, (0.0, 1.0), 0)
