"""Tests for interval Markov chains and cluster bounds (Section V-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    IntervalMarkovChain,
    MarkovChain,
    SpatioTemporalWindow,
    StateDistribution,
    bound_exists_probability,
    ob_exists_probability,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain, random_distribution, random_window


def perturbed_chain(
    base: MarkovChain, rng: np.random.Generator, epsilon: float
) -> MarkovChain:
    """A chain close to ``base``: same sparsity, jittered rows."""
    dense = base.to_dense()
    n = base.n_states
    for i in range(n):
        row = dense[i]
        mask = row > 0
        noise = rng.uniform(-epsilon, epsilon, size=n) * mask
        row = np.clip(row + noise, 1e-6, None) * mask
        dense[i] = row / row.sum()
    return MarkovChain(dense)


class TestIntervalChain:
    def test_from_single_chain_is_degenerate(self, paper_chain):
        interval = IntervalMarkovChain.from_chains([paper_chain])
        assert interval.width() == 0.0
        assert interval.contains(paper_chain)

    def test_from_chains_encloses_all(self):
        rng = np.random.default_rng(0)
        base = random_chain(5, rng)
        chains = [base] + [
            perturbed_chain(base, rng, 0.05) for _ in range(4)
        ]
        interval = IntervalMarkovChain.from_chains(chains)
        for chain in chains:
            assert interval.contains(chain)
        assert interval.width() <= 0.2

    def test_contains_rejects_outsider(self):
        rng = np.random.default_rng(1)
        base = random_chain(4, rng, density=1.0)
        interval = IntervalMarkovChain.from_chains([base])
        other = random_chain(4, rng, density=1.0)
        assert not interval.contains(other)

    def test_contains_rejects_wrong_size(self, paper_chain):
        interval = IntervalMarkovChain.from_chains([paper_chain])
        assert not interval.contains(MarkovChain.identity(4))

    def test_merge(self):
        rng = np.random.default_rng(2)
        a = random_chain(4, rng)
        b = random_chain(4, rng)
        merged = IntervalMarkovChain.from_chains([a]).merge(
            IntervalMarkovChain.from_chains([b])
        )
        assert merged.contains(a)
        assert merged.contains(b)

    def test_merge_size_mismatch(self, paper_chain):
        a = IntervalMarkovChain.from_chains([paper_chain])
        b = IntervalMarkovChain.from_chains([MarkovChain.identity(4)])
        with pytest.raises(ValidationError):
            a.merge(b)

    def test_empty_chain_list_rejected(self):
        with pytest.raises(ValidationError):
            IntervalMarkovChain.from_chains([])

    def test_mixed_sizes_rejected(self, paper_chain):
        with pytest.raises(ValidationError):
            IntervalMarkovChain.from_chains(
                [paper_chain, MarkovChain.identity(4)]
            )

    def test_inverted_bounds_rejected(self, paper_chain):
        with pytest.raises(ValidationError):
            IntervalMarkovChain(
                paper_chain.matrix * 2.0, paper_chain.matrix
            )


class TestExistsBounds:
    def test_degenerate_interval_is_exact(self, paper_chain,
                                          paper_window, paper_start):
        interval = IntervalMarkovChain.from_chains([paper_chain])
        low, high = bound_exists_probability(
            interval, paper_start, paper_window
        )
        assert low == pytest.approx(0.864, abs=1e-9)
        assert high == pytest.approx(0.864, abs=1e-9)

    def test_bounds_enclose_every_member_chain(self):
        """Soundness: every member's exact value lies in the bounds."""
        rng = np.random.default_rng(3)
        for trial in range(10):
            n = int(rng.integers(3, 6))
            base = random_chain(n, rng)
            chains = [base] + [
                perturbed_chain(base, rng, 0.08) for _ in range(3)
            ]
            interval = IntervalMarkovChain.from_chains(chains)
            initial = random_distribution(n, rng)
            window = random_window(n, rng, max_time=4)
            low, high = bound_exists_probability(
                interval, initial, window
            )
            assert 0.0 <= low <= high <= 1.0
            for chain in chains:
                exact = ob_exists_probability(chain, initial, window)
                assert low - 1e-9 <= exact <= high + 1e-9

    def test_start_time_inside_window(self, paper_chain):
        interval = IntervalMarkovChain.from_chains([paper_chain])
        window = SpatioTemporalWindow(
            frozenset({1}), frozenset({0, 2})
        )
        initial = StateDistribution.point(3, 1)
        low, high = bound_exists_probability(interval, initial, window)
        exact = ob_exists_probability(paper_chain, initial, window)
        assert low == pytest.approx(exact, abs=1e-9)
        assert high == pytest.approx(exact, abs=1e-9)

    def test_validation(self, paper_chain, paper_window):
        interval = IntervalMarkovChain.from_chains([paper_chain])
        with pytest.raises(ValidationError):
            bound_exists_probability(
                interval, StateDistribution.point(5, 0), paper_window
            )
        with pytest.raises(QueryError):
            bound_exists_probability(
                interval,
                StateDistribution.point(3, 0),
                paper_window,
                start_time=5,
            )
        out_of_range = SpatioTemporalWindow(
            frozenset({9}), frozenset({1})
        )
        with pytest.raises(QueryError):
            bound_exists_probability(
                interval, StateDistribution.point(3, 0), out_of_range
            )

    def test_wider_interval_gives_looser_bounds(self):
        rng = np.random.default_rng(4)
        base = random_chain(4, rng)
        tight = IntervalMarkovChain.from_chains(
            [base, perturbed_chain(base, rng, 0.02)]
        )
        loose = tight.merge(
            IntervalMarkovChain.from_chains(
                [perturbed_chain(base, rng, 0.2)]
            )
        )
        initial = random_distribution(4, rng)
        window = SpatioTemporalWindow(frozenset({0}), frozenset({2, 3}))
        tight_low, tight_high = bound_exists_probability(
            tight, initial, window
        )
        loose_low, loose_high = bound_exists_probability(
            loose, initial, window
        )
        assert loose_low <= tight_low + 1e-12
        assert loose_high >= tight_high - 1e-12
