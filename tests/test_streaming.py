"""Streaming engine: incremental sliding windows vs batch re-evaluation.

The load-bearing property: a standing query advanced N ticks
incrementally must return, at every tick, exactly what an independent
batch ``evaluate()`` of that tick's window returns (within 1e-12) --
including ticks where objects arrive, are re-sighted
(``append_observation``), and leave mid-stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Observation,
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    QueryEngine,
    SpatioTemporalWindow,
    StreamingQueryEngine,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import QueryError
from repro.core.state_space import LineStateSpace
from repro.workloads.monitoring import (
    MonitoringConfig,
    make_monitoring_workload,
)
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

N_STATES = 400
WINDOW = SpatioTemporalWindow.from_ranges(100, 120, 10, 13)


def build_database(
    seed: int, n_objects: int = 40, n_chains: int = 2
) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        N_STATES, state_space=LineStateSpace(N_STATES)
    )
    for index in range(n_chains):
        database.register_chain(
            f"chain-{index}", make_line_chain(N_STATES, rng=rng)
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(N_STATES, 5, rng),
                time=int(rng.integers(0, 5)),
                chain_id=f"chain-{index % n_chains}",
            )
        )
    return database


def shifted(window: SpatioTemporalWindow, offset: int):
    return SpatioTemporalWindow(
        window.region, frozenset(t + offset for t in window.times)
    )


def assert_tick_parity(result, reference, database):
    assert set(result.values) == set(reference.values)
    for object_id in database.object_ids:
        assert result.values[object_id] == pytest.approx(
            reference.values[object_id], abs=1e-12
        )


class TestSlidingParity:
    @pytest.mark.parametrize("stride", [1, 2, 5])
    def test_n_ticks_equal_n_evaluates(self, stride):
        database = build_database(seed=1)
        engine = QueryEngine(database)
        standing = engine.watch(PSTExistsQuery(WINDOW), stride=stride)
        reference = QueryEngine(database)
        for tick in range(6):
            result = standing.tick()
            expected = reference.evaluate(
                PSTExistsQuery(shifted(WINDOW, tick * stride))
            )
            assert_tick_parity(result, expected, database)
            assert result.method == "streaming"
            assert result.query.window == shifted(
                WINDOW, tick * stride
            )

    def test_forall_parity(self):
        database = build_database(seed=2, n_objects=25)
        query = PSTForAllQuery(
            SpatioTemporalWindow.from_ranges(0, 300, 6, 8)
        )
        standing = QueryEngine(database).watch(query, stride=2)
        reference = QueryEngine(database)
        for tick in range(4):
            result = standing.tick()
            expected = reference.evaluate(
                PSTForAllQuery(shifted(query.window, tick * 2))
            )
            assert_tick_parity(result, expected, database)
            # the result's query keeps the *original* region, not the
            # complement the engine evaluates internally
            assert result.query.window.region == query.region

    def test_parity_with_mid_stream_mutations(self):
        database = build_database(seed=3)
        engine = QueryEngine(database)
        standing = engine.watch(PSTExistsQuery(WINDOW))
        reference = QueryEngine(database)
        rng = np.random.default_rng(5)
        for tick in range(8):
            if tick == 2:  # a new object enters, observed "now"
                database.append_observation(
                    "late-arrival",
                    Observation.uniform(
                        tick, N_STATES, range(104, 109)
                    ),
                    chain_id="chain-0",
                )
            if tick == 5:  # an existing object is re-sighted
                database.append_observation(
                    "obj-0",
                    Observation.uniform(
                        tick, N_STATES, range(N_STATES)
                    ),
                )
                database.remove("obj-7")
            if tick == 7:  # a second re-sighting of the same object
                database.append_observation(
                    "obj-0",
                    Observation.uniform(
                        tick, N_STATES, range(N_STATES)
                    ),
                )
            result = standing.tick()
            expected = reference.evaluate(
                PSTExistsQuery(shifted(WINDOW, tick))
            )
            assert_tick_parity(result, expected, database)
        assert "late-arrival" in result.values
        assert "obj-7" not in result.values

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_monitoring_scenarios(self, seed):
        """The full generator: arrivals, re-sightings, departures."""
        rng = np.random.default_rng(seed)
        config = MonitoringConfig(
            n_objects=30,
            n_states=300,
            n_chains=int(rng.integers(1, 3)),
            n_ticks=6,
            stride=int(rng.integers(1, 4)),
            window_low=80,
            window_high=110,
            window_lead=int(rng.integers(4, 9)),
            window_duration=int(rng.integers(2, 5)),
            arrivals_per_tick=int(rng.integers(0, 3)),
            resightings_per_tick=int(rng.integers(0, 3)),
            departures_per_tick=int(rng.integers(0, 2)),
            seed=seed * 101,
        )
        workload = make_monitoring_workload(config)
        standing = QueryEngine(workload.database).watch(
            workload.query, stride=config.stride
        )
        reference = QueryEngine(workload.database)
        for tick in range(config.n_ticks):
            workload.apply(tick)
            result = standing.tick()
            expected = reference.evaluate(
                PSTExistsQuery(workload.window_at(tick))
            )
            assert_tick_parity(result, expected, workload.database)

    def test_backfilled_observation_invalidates_posterior(self):
        """A sighting inserted *below* an already-filtered one must be
        folded in, not shadowed by the cached posterior."""
        database = build_database(seed=30)
        # a probe sitting on the window region, so its probability is
        # O(0.1) and a stale posterior is far outside the tolerance
        database.add(
            UncertainObject.with_distribution(
                "probe",
                Observation.uniform(
                    0, N_STATES, range(100, 121)
                ).distribution,
                chain_id="chain-0",
            )
        )
        standing = QueryEngine(database).watch(PSTExistsQuery(WINDOW))
        reference = QueryEngine(database)
        for tick in range(6):
            if tick == 1:  # re-sighting at t=6 -> posterior cached
                database.append_observation(
                    "probe",
                    Observation.uniform(6, N_STATES, range(N_STATES)),
                )
            if tick == 3:  # backfill at t=5, below the cached time:
                # informative (half the prior support) but feasible
                database.append_observation(
                    "probe",
                    Observation.uniform(5, N_STATES, range(0, 111)),
                )
            result = standing.tick()
            expected = reference.evaluate(
                PSTExistsQuery(shifted(WINDOW, tick))
            )
            assert_tick_parity(result, expected, database)

    def test_journal_truncation_forces_resync(self, monkeypatch):
        from repro.database import uncertain_db

        monkeypatch.setattr(uncertain_db, "_JOURNAL_LIMIT", 8)
        database = build_database(seed=31)
        standing = QueryEngine(database).watch(PSTExistsQuery(WINDOW))
        reference = QueryEngine(database)
        standing.tick()
        synced = standing._synced_version
        for index in range(20):  # overflow the bounded journal
            database.add(
                UncertainObject.at_state(
                    f"burst-{index}",
                    N_STATES,
                    105 + index % 5,
                    chain_id="chain-0",
                )
            )
        assert database.changes_since(synced) is None
        result = standing.tick()
        expected = reference.evaluate(
            PSTExistsQuery(shifted(WINDOW, 1))
        )
        assert_tick_parity(result, expected, database)

    def test_chain_replacement_rebuilds(self):
        database = build_database(seed=6, n_chains=1)
        standing = QueryEngine(database).watch(PSTExistsQuery(WINDOW))
        reference = QueryEngine(database)
        standing.tick()
        database.register_chain(
            "chain-0",
            make_line_chain(N_STATES, seed=999),
        )
        result = standing.tick()
        expected = reference.evaluate(
            PSTExistsQuery(shifted(WINDOW, 1))
        )
        assert_tick_parity(result, expected, database)


class TestStreamingPlan:
    def test_streaming_stage_reported(self):
        database = build_database(seed=7)
        standing = QueryEngine(database).watch(
            PSTExistsQuery(WINDOW), stride=3
        )
        result = standing.tick()
        plan = result.plan
        assert plan is standing.explain()
        names = [stage.name for stage in plan.stages]
        assert names == ["streaming", "evaluate"]
        streaming = plan.stages[0]
        assert streaming.candidates_in == len(database)
        assert 0 <= streaming.candidates_out <= len(database)
        assert "tick 0" in streaming.detail
        assert "stride 3" in streaming.detail
        assert plan.requested_method == "streaming"
        assert "streaming" in plan.describe()

    def test_candidates_grow_with_horizon(self):
        database = build_database(seed=8)
        standing = QueryEngine(database).watch(PSTExistsQuery(WINDOW))
        counts = []
        for _ in range(6):
            result = standing.tick()
            counts.append(result.plan.stages[0].candidates_out)
        # the horizon only grows, so BFS thresholds only ever admit
        # more objects (no mutations in this run)
        assert counts == sorted(counts)

    def test_explain_before_tick_raises(self):
        database = build_database(seed=9)
        standing = QueryEngine(database).watch(PSTExistsQuery(WINDOW))
        with pytest.raises(QueryError):
            standing.explain()

    def test_ktimes_standing_query_matches_batch(self):
        database = build_database(seed=10)
        engine = QueryEngine(database)
        standing = engine.watch(PSTKTimesQuery(WINDOW))
        fresh = QueryEngine(database)
        for _ in range(4):
            result = standing.tick()
            scratch = fresh.evaluate(result.query)
            for object_id in database.object_ids:
                assert np.asarray(
                    result.values[object_id]
                ) == pytest.approx(
                    np.asarray(scratch.values[object_id]), abs=1e-12
                )

    def test_ktimes_standing_query_rejects_multis(self):
        database = build_database(seed=10)
        rng = np.random.default_rng(0)
        first = database.get(database.object_ids[0])
        database.append_observation(
            first.object_id,
            Observation(
                WINDOW.t_start - 2,
                make_object_distribution(N_STATES, 5, rng),
            ),
        )
        with pytest.raises(QueryError, match="multiple observations"):
            QueryEngine(database).watch(PSTKTimesQuery(WINDOW))

    def test_bad_stride_rejected(self):
        database = build_database(seed=11)
        with pytest.raises(QueryError, match="stride"):
            QueryEngine(database).watch(PSTExistsQuery(WINDOW), stride=0)

    def test_shares_engine_plan_cache(self):
        database = build_database(seed=12, n_chains=1)
        engine = QueryEngine(database)
        engine.evaluate(PSTExistsQuery(WINDOW))
        built = engine.plan_cache.stats.total_constructions
        standing = engine.watch(PSTExistsQuery(WINDOW))
        standing.tick()
        # the standing query reuses the batch engine's absorbing
        # matrices; only backward artefacts may be added
        constructions = engine.plan_cache.stats.constructions
        assert constructions.get("absorbing", 0) == 1
        assert engine.plan_cache.stats.total_constructions <= built + 1

    def test_standalone_streaming_engine(self):
        database = build_database(seed=13)
        streaming = StreamingQueryEngine(database)
        standing = streaming.watch(PSTExistsQuery(WINDOW))
        result = standing.tick()
        assert len(result) == len(database)


class TestOnlineAppends:
    def test_version_and_journal(self):
        database = build_database(seed=14, n_objects=2, n_chains=1)
        version = database.version
        database.append_observation(
            "fresh",
            Observation.precise(0, N_STATES, 50),
            chain_id="chain-0",
        )
        database.append_observation(
            "fresh", Observation.precise(3, N_STATES, 60)
        )
        database.remove("fresh")
        changes = database.changes_since(version)
        assert [c.op for c in changes] == ["add", "observe", "remove"]
        assert all(c.object_id == "fresh" for c in changes)
        assert database.changes_since(database.version) == []

    def test_append_makes_multi_observation(self):
        database = build_database(seed=15, n_objects=3, n_chains=1)
        updated = database.append_observation(
            "obj-0", Observation.uniform(9, N_STATES, range(N_STATES))
        )
        assert updated.has_multiple_observations()
        assert database.get("obj-0").observations.last.time == 9

    def test_append_validates_state_count(self):
        database = build_database(seed=16, n_objects=2, n_chains=1)
        with pytest.raises(Exception):
            database.append_observation(
                "obj-0", Observation.precise(9, N_STATES + 1, 0)
            )

    def test_prefilter_patched_incrementally(self):
        database = build_database(seed=17, n_chains=1)
        prefilter = database.geometric_prefilter("chain-0")
        assert prefilter is not None
        window = shifted(WINDOW, 0)
        before = set(prefilter.candidate_ids(window, 0))

        database.add(
            UncertainObject.with_distribution(
                "inside",
                make_object_distribution(
                    N_STATES, 5, np.random.default_rng(0)
                ),
                chain_id="chain-0",
            )
        )
        database.add(
            UncertainObject.at_state(
                "right-there", N_STATES, 110, chain_id="chain-0"
            )
        )
        # the same prefilter object is patched, not rebuilt
        assert database.geometric_prefilter("chain-0") is prefilter
        after = set(prefilter.candidate_ids(window, 0))
        assert "right-there" in after
        assert before <= after | {"right-there", "inside"}

        database.remove("right-there")
        assert "right-there" not in set(
            prefilter.candidate_ids(window, 0)
        )

    def test_prefilter_matches_fresh_rebuild(self):
        """Patched probes equal a from-scratch STR build."""
        rng = np.random.default_rng(18)
        database = build_database(seed=18, n_chains=1)
        prefilter = database.geometric_prefilter("chain-0")
        for index in range(20):
            database.add(
                UncertainObject.with_distribution(
                    f"new-{index}",
                    make_object_distribution(N_STATES, 5, rng),
                    chain_id="chain-0",
                )
            )
        for index in range(0, 20, 3):
            database.remove(f"new-{index}")
        window = shifted(WINDOW, 3)
        patched = set(prefilter.candidate_ids(window, 0))
        prefilter.rebuild()
        rebuilt = set(prefilter.candidate_ids(window, 0))
        assert patched == rebuilt

    def test_min_levels_serves_every_horizon(self):
        database = build_database(seed=19, n_chains=1)
        engine = QueryEngine(database)
        levels = engine.pruner.min_levels("chain-0", WINDOW.region)
        assert levels.shape == (N_STATES,)
        assert all(levels[state] == 0 for state in WINDOW.region)
        for obj in database:
            steps = engine.pruner.min_steps(obj, WINDOW.region)
            horizon = WINDOW.t_end - obj.initial.time
            assert engine.pruner.can_satisfy(obj, WINDOW) == (
                steps <= horizon
            )


class TestLadderEviction:
    """The backward ladder must stay memory-bounded as ticks accumulate.

    Before eviction the ladder grew by ``stride`` rungs per tick for
    the lifetime of the standing query; now rungs no live start time
    can reference are dropped after every tick, so the footprint is
    bounded by the live gap *spread* -- independent of tick count --
    while per-tick cost stays ``O(stride)`` sparse products and values
    stay bit-identical to batch re-evaluation.
    """

    @staticmethod
    def total_rungs(standing) -> int:
        return sum(
            len(stream.rel) for stream in standing._chains.values()
        )

    def test_memory_bounded_over_many_ticks(self):
        database = build_database(seed=51, n_chains=1)
        engine = QueryEngine(database)
        replan = QueryEngine(database)
        standing = engine.watch(PSTExistsQuery(WINDOW), stride=1)

        n_ticks = 60
        # start times span [0, 5); gaps per tick span the same spread
        spread = 5
        bound = spread + standing.stride + 2
        for tick in range(n_ticks):
            result = standing.tick()
            assert self.total_rungs(standing) <= bound
            if tick % 20 == 0:  # parity spot checks stay exact
                reference = replan.evaluate(
                    PSTExistsQuery(shifted(WINDOW, tick))
                )
                assert_tick_parity(result, reference, database)
        # without eviction the ladder would hold >= n_ticks rungs
        assert self.total_rungs(standing) < n_ticks

    def test_departures_shrink_the_ladder(self):
        database = build_database(seed=52, n_chains=1)
        engine = QueryEngine(database)
        standing = engine.watch(PSTExistsQuery(WINDOW), stride=1)
        for _ in range(10):
            standing.tick()
        before = self.total_rungs(standing)
        # leave a single object: one live gap, ladder collapses
        for object_id in list(database.object_ids)[1:]:
            database.remove(object_id)
        for _ in range(3):
            standing.tick()
        after = self.total_rungs(standing)
        assert after <= min(before, standing.stride + 2)

    def test_eviction_reports_in_explain(self):
        database = build_database(seed=53, n_chains=1)
        engine = QueryEngine(database)
        standing = engine.watch(PSTExistsQuery(WINDOW), stride=2)
        for _ in range(4):
            standing.tick()
        detail = standing.explain().stages[0].detail
        assert "rungs" in detail and "evicted" in detail

    def test_arrival_below_retained_range_recomputes_exactly(self):
        """A fresh arrival whose gap precedes every retained rung is
        answered by a direct backward pass -- same values as batch."""
        database = build_database(seed=54, n_chains=1)
        engine = QueryEngine(database)
        replan = QueryEngine(database)
        standing = engine.watch(PSTExistsQuery(WINDOW), stride=1)
        for _ in range(12):
            standing.tick()
        # observe a new object *now*: its gap is far below the old
        # objects' (whose observations are ~17 ticks stale)
        rng = np.random.default_rng(99)
        new_start = standing.window.t_start - 1
        database.add(
            UncertainObject.with_distribution(
                "late-arrival",
                make_object_distribution(N_STATES, 5, rng),
                time=int(new_start),
                chain_id="chain-0",
            )
        )
        result = standing.tick()  # evaluates the offset-12 window
        reference = replan.evaluate(
            PSTExistsQuery(shifted(WINDOW, 12))
        )
        assert_tick_parity(result, reference, database)
