"""Tests for the QueryEngine facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Observation,
    ObservationSet,
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    QueryEngine,
    SpatioTemporalWindow,
    StateDistribution,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import QueryError, ValidationError

from conftest import random_chain


def build_database(n_states=12, n_objects=8, seed=0, multi=False):
    rng = np.random.default_rng(seed)
    chain = random_chain(n_states, rng, density=0.4)
    database = TrajectoryDatabase.with_chain(chain)
    for index in range(n_objects):
        if multi and index % 3 == 0:
            observations = ObservationSet.of(
                Observation.precise(
                    0, n_states, int(rng.integers(0, n_states))
                ),
                Observation.uniform(
                    4,
                    n_states,
                    [int(s) for s in rng.choice(n_states, 4, replace=False)],
                ),
            )
            database.add(UncertainObject(f"o{index}", observations))
        else:
            database.add(
                UncertainObject.at_state(
                    f"o{index}", n_states, int(rng.integers(0, n_states))
                )
            )
    return database


WINDOW = SpatioTemporalWindow(frozenset({0, 1, 2}), frozenset({2, 3}))


class TestMethodsAgree:
    def test_qb_equals_ob_exists(self):
        database = build_database()
        engine = QueryEngine(database)
        qb = engine.evaluate(PSTExistsQuery(WINDOW), method="qb")
        ob = engine.evaluate(PSTExistsQuery(WINDOW), method="ob")
        for object_id in database.object_ids:
            assert qb.values[object_id] == pytest.approx(
                ob.values[object_id], abs=1e-12
            )

    def test_qb_equals_ob_forall(self):
        database = build_database(seed=1)
        engine = QueryEngine(database)
        qb = engine.evaluate(PSTForAllQuery(WINDOW), method="qb")
        ob = engine.evaluate(PSTForAllQuery(WINDOW), method="ob")
        for object_id in database.object_ids:
            assert qb.values[object_id] == pytest.approx(
                ob.values[object_id], abs=1e-12
            )

    def test_mc_converges_to_exact(self):
        database = build_database(n_objects=3, seed=2)
        engine = QueryEngine(database)
        exact = engine.evaluate(PSTExistsQuery(WINDOW), method="qb")
        estimate = engine.evaluate(
            PSTExistsQuery(WINDOW), method="mc", n_samples=20_000, seed=0
        )
        for object_id in database.object_ids:
            assert estimate.values[object_id] == pytest.approx(
                exact.values[object_id], abs=0.02
            )

    def test_multi_observation_objects_handled_in_both(self):
        database = build_database(seed=3, multi=True)
        engine = QueryEngine(database)
        qb = engine.evaluate(PSTExistsQuery(WINDOW), method="qb")
        ob = engine.evaluate(PSTExistsQuery(WINDOW), method="ob")
        for object_id in database.object_ids:
            assert qb.values[object_id] == pytest.approx(
                ob.values[object_id], abs=1e-12
            )


class TestKTimes:
    def test_full_distribution(self):
        database = build_database(seed=4)
        engine = QueryEngine(database)
        result = engine.evaluate(PSTKTimesQuery(WINDOW), method="ob")
        for distribution in result.values.values():
            assert distribution.shape == (WINDOW.duration + 1,)
            assert distribution.sum() == pytest.approx(1.0)

    def test_single_k(self):
        database = build_database(seed=5)
        engine = QueryEngine(database)
        full = engine.evaluate(PSTKTimesQuery(WINDOW), method="ob")
        single = engine.evaluate(
            PSTKTimesQuery(WINDOW, k=1), method="ob"
        )
        for object_id in database.object_ids:
            assert single.values[object_id] == pytest.approx(
                float(full.values[object_id][1])
            )

    def test_consistency_with_exists(self):
        database = build_database(seed=6)
        engine = QueryEngine(database)
        ktimes = engine.evaluate(
            PSTKTimesQuery(WINDOW, k=0), method="qb"
        )
        exists = engine.evaluate(PSTExistsQuery(WINDOW), method="qb")
        for object_id in database.object_ids:
            assert exists.values[object_id] == pytest.approx(
                1.0 - ktimes.values[object_id], abs=1e-10
            )

    def test_mc_ktimes(self):
        database = build_database(n_objects=2, seed=7)
        engine = QueryEngine(database)
        exact = engine.evaluate(PSTKTimesQuery(WINDOW), method="ob")
        estimate = engine.evaluate(
            PSTKTimesQuery(WINDOW), method="mc", n_samples=20_000, seed=1
        )
        for object_id in database.object_ids:
            assert np.allclose(
                estimate.values[object_id],
                exact.values[object_id],
                atol=0.02,
            )

    def test_ktimes_multi_observation_rejected(self):
        database = build_database(seed=8, multi=True)
        engine = QueryEngine(database)
        with pytest.raises(QueryError):
            engine.evaluate(PSTKTimesQuery(WINDOW), method="ob")


class TestPruneOption:
    def test_prune_preserves_answers(self):
        database = build_database(seed=9)
        engine = QueryEngine(database)
        plain = engine.evaluate(PSTExistsQuery(WINDOW), method="ob")
        with pytest.warns(DeprecationWarning, match="prune"):
            pruned = engine.evaluate(
                PSTExistsQuery(WINDOW), method="ob", prune=True
            )
        for object_id in database.object_ids:
            assert pruned.values[object_id] == pytest.approx(
                plain.values[object_id], abs=1e-12
            )


class TestMultipleChains:
    def test_per_class_chains(self):
        rng = np.random.default_rng(10)
        n = 10
        database = TrajectoryDatabase(n)
        database.register_chain("cars", random_chain(n, rng))
        database.register_chain("buses", random_chain(n, rng))
        database.add(
            UncertainObject.at_state("c1", n, 0, chain_id="cars")
        )
        database.add(
            UncertainObject.at_state("b1", n, 0, chain_id="buses")
        )
        engine = QueryEngine(database)
        window = SpatioTemporalWindow(frozenset({1, 2}), frozenset({2}))
        result = engine.evaluate(PSTExistsQuery(window), method="qb")
        # same start state, different models -> different answers
        from repro import qb_exists_probability

        assert result.values["c1"] == pytest.approx(
            qb_exists_probability(
                database.chain("cars"),
                StateDistribution.point(n, 0),
                window,
            )
        )
        assert result.values["b1"] == pytest.approx(
            qb_exists_probability(
                database.chain("buses"),
                StateDistribution.point(n, 0),
                window,
            )
        )


class TestMixedObservationTimes:
    def test_objects_observed_at_different_times(self):
        rng = np.random.default_rng(11)
        n = 8
        chain = random_chain(n, rng)
        database = TrajectoryDatabase.with_chain(chain)
        database.add(UncertainObject.at_state("t0", n, 2, time=0))
        database.add(UncertainObject.at_state("t1", n, 2, time=1))
        window = SpatioTemporalWindow(frozenset({0}), frozenset({3}))
        engine = QueryEngine(database)
        result = engine.evaluate(PSTExistsQuery(window), method="qb")
        from repro import ob_exists_probability

        assert result.values["t1"] == pytest.approx(
            ob_exists_probability(
                chain, StateDistribution.point(n, 2), window, start_time=1
            )
        )
        assert result.values["t0"] != result.values["t1"]


class TestResultContainer:
    def test_above_and_top(self):
        database = build_database(seed=12)
        engine = QueryEngine(database)
        result = engine.evaluate(PSTExistsQuery(WINDOW), method="qb")
        above = result.above(0.2)
        assert all(value >= 0.2 for value in above.values())
        top = result.top(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_probability_lookup(self):
        database = build_database(seed=13)
        engine = QueryEngine(database)
        result = engine.evaluate(PSTExistsQuery(WINDOW), method="qb")
        assert result.probability("o0") == result.values["o0"]
        with pytest.raises(ValidationError):
            result.probability("missing")

    def test_len_and_elapsed(self):
        database = build_database(seed=14)
        engine = QueryEngine(database)
        result = engine.evaluate(PSTExistsQuery(WINDOW), method="qb")
        assert len(result) == len(database)
        assert result.elapsed_seconds >= 0.0


class TestExtensionQueries:
    def test_first_passage_delegates(self):
        from repro import first_passage_distribution

        database = build_database(seed=20)
        engine = QueryEngine(database)
        obj = database.get("o0")
        chain = database.chain(obj.chain_id)
        via_engine = engine.first_passage("o0", {0, 1}, horizon=5)
        direct = first_passage_distribution(
            chain, obj.initial.distribution, {0, 1}, 5
        )
        assert np.allclose(via_engine.pmf, direct.pmf)

    def test_nearest_neighbor_delegates(self):
        from repro import LineStateSpace

        rng = np.random.default_rng(21)
        n = 10
        chain = random_chain(n, rng)
        database = TrajectoryDatabase.with_chain(
            chain, state_space=LineStateSpace(n)
        )
        database.add(UncertainObject.at_state("a", n, 1))
        database.add(UncertainObject.at_state("b", n, 8))
        engine = QueryEngine(database)
        result = engine.nearest_neighbor((2.0,), time=0)
        assert result["a"] == pytest.approx(1.0)

    def test_sequence_probabilities(self):
        from repro.core.sequence import Pattern

        database = build_database(seed=22)
        engine = QueryEngine(database)
        pattern = Pattern.any().plus()
        values = engine.sequence_probabilities(pattern, length=3)
        assert set(values) == set(database.object_ids)
        assert all(
            value == pytest.approx(1.0) for value in values.values()
        )


class TestValidation:
    def test_unknown_method(self):
        database = build_database()
        engine = QueryEngine(database)
        with pytest.raises(QueryError):
            engine.evaluate(PSTExistsQuery(WINDOW), method="magic")

    def test_window_out_of_range(self):
        database = build_database(n_states=5)
        engine = QueryEngine(database)
        window = SpatioTemporalWindow(frozenset({99}), frozenset({1}))
        with pytest.raises(QueryError):
            engine.evaluate(PSTExistsQuery(window))

    def test_forall_whole_space_trivial(self):
        database = build_database(n_states=4, seed=15)
        engine = QueryEngine(database)
        window = SpatioTemporalWindow(
            frozenset(range(4)), frozenset({1, 2})
        )
        result = engine.evaluate(PSTForAllQuery(window), method="qb")
        assert all(
            value == pytest.approx(1.0)
            for value in result.values.values()
        )
