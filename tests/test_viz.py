"""Tests for the ASCII visualisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GridStateSpace, StateDistribution
from repro.core.errors import ValidationError
from repro.viz import (
    render_bar_chart,
    render_distribution_support,
    render_grid,
    render_series,
)


class TestRenderGrid:
    def test_dimensions(self):
        grid = GridStateSpace(4, 3)
        text = render_grid(grid, np.zeros(12))
        lines = text.split("\n")
        assert len(lines) == 3
        assert all(len(line) == 8 for line in lines)  # 2 chars per cell

    def test_title_line(self):
        grid = GridStateSpace(2, 2)
        text = render_grid(grid, np.zeros(4), title="Ocean")
        assert text.startswith("Ocean\n")

    def test_highlight_cells(self):
        grid = GridStateSpace(3, 3)
        text = render_grid(grid, np.zeros(9), highlight=[4])
        assert "[]" in text

    def test_peak_cell_uses_densest_glyph(self):
        grid = GridStateSpace(3, 1)
        values = np.array([0.0, 0.0, 1.0])
        line = render_grid(grid, values)
        assert line.endswith("@@")

    def test_y_axis_points_up(self):
        grid = GridStateSpace(1, 2)
        values = np.zeros(2)
        values[grid.state_of_cell(0, 1)] = 1.0  # the "top" cell
        lines = render_grid(grid, values).split("\n")
        assert lines[0] == "@@"   # printed first
        assert lines[1] == "  "

    def test_all_zero_grid(self):
        grid = GridStateSpace(2, 2)
        text = render_grid(grid, np.zeros(4))
        assert set(text.replace("\n", "")) == {" "}

    def test_shape_validation(self):
        grid = GridStateSpace(2, 2)
        with pytest.raises(ValidationError):
            render_grid(grid, np.zeros(5))


class TestRenderBarChart:
    def test_basic(self):
        text = render_bar_chart(["a", "bb"], [1.0, 0.5], width=10)
        lines = text.split("\n")
        assert lines[0].startswith(" a | " + "#" * 10)
        assert "bb | " + "#" * 5 in lines[1]

    def test_title(self):
        text = render_bar_chart(["x"], [1.0], title="T")
        assert text.startswith("T\n")

    def test_zero_values(self):
        text = render_bar_chart(["x"], [0.0])
        assert "#" not in text

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_width_validation(self):
        with pytest.raises(ValidationError):
            render_bar_chart(["a"], [1.0], width=0)


class TestRenderSeries:
    def test_blocks_per_curve(self):
        text = render_series(
            [1, 2], {"OB": [0.5, 0.6], "QB": [0.1, 0.2]}, title="S"
        )
        assert text.startswith("S\n")
        assert "-- OB" in text
        assert "-- QB" in text


class TestRenderDistributionSupport:
    def test_truncates(self):
        dist = StateDistribution.uniform(30)
        text = render_distribution_support(dist, limit=3)
        assert text.count("s") == 3
        assert "..." in text

    def test_sorted_by_mass(self):
        dist = StateDistribution([0.1, 0.7, 0.2])
        text = render_distribution_support(dist)
        assert text.index("s1") < text.index("s2") < text.index("s0")
