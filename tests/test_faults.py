"""Fault injection: every recovery path lands on the exact answer.

The load-bearing property mirrors the dispatch parity suite: whatever
the supervisor has to survive -- killed workers, hung workers, vanished
or corrupted shared-memory segments, poisoned streaming ticks -- the
query still returns values within 1e-12 of the serial reference, and
the recovery (pool rebuild, per-shard retry, tier degradation,
transactional rollback) is visible on ``plan.degradations`` /
``StandingQuery.error`` rather than silent.

Faults are driven deterministically through
:class:`repro.FaultInjector` (see :mod:`repro.exec.faults`), never by
timing races.
"""

from __future__ import annotations

import os
import subprocess

import numpy as np
import pytest

from repro import (
    DegradedExecutionWarning,
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
    PlanOptions,
    PSTExistsQuery,
    QuarantinedQueryError,
    QueryEngine,
    SpatioTemporalWindow,
    SupervisorPolicy,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.errors import ValidationError
from repro.core.state_space import LineStateSpace
from repro.core.streaming import StreamingQueryEngine
from repro.exec import dispatch
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

N_STATES = 300
WINDOW = SpatioTemporalWindow.from_ranges(80, 110, 8, 11)

needs_processes = pytest.mark.skipif(
    not dispatch.process_dispatch_available(),
    reason="shared-memory process dispatch unavailable",
)
needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="janitor inspects /dev/shm (Linux POSIX shm)",
)


def build_database(
    seed: int, n_objects: int = 60, n_chains: int = 3
) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        N_STATES, state_space=LineStateSpace(N_STATES)
    )
    for index in range(n_chains):
        database.register_chain(
            f"chain-{index}", make_line_chain(N_STATES, rng=rng)
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(N_STATES, 5, rng),
                time=int(rng.integers(0, 5)),
                chain_id=f"chain-{index % n_chains}",
            )
        )
    return database


def serial_reference(database, query):
    return QueryEngine(database).evaluate(
        query, options=PlanOptions(dispatch="serial")
    )


def assert_parity(result, reference):
    assert set(result.values) == set(reference.values)
    for object_id, expected in reference.values.items():
        assert result.values[object_id] == pytest.approx(
            expected, abs=1e-12
        )


def shifted(window: SpatioTemporalWindow, offset: int):
    return SpatioTemporalWindow(
        window.region, frozenset(t + offset for t in window.times)
    )


def fast_policy(**overrides) -> SupervisorPolicy:
    settings = dict(max_retries=3, backoff_seconds=0.01)
    settings.update(overrides)
    return SupervisorPolicy(**settings)


def process_options(faults=None, policy=None) -> PlanOptions:
    return PlanOptions(
        dispatch="process",
        max_workers=2,
        supervisor=policy or fast_policy(),
        faults=faults,
    )


# ----------------------------------------------------------------------
# supervised dispatch: kills, hangs, lost and corrupted segments
# ----------------------------------------------------------------------
@needs_processes
class TestSupervisedDispatch:
    def test_worker_kill_recovers_via_pool_rebuild(self):
        database = build_database(seed=11)
        query = PSTExistsQuery(WINDOW)
        reference = serial_reference(database, query)
        faults = FaultInjector(
            FaultSpec(
                site="worker:shard",
                action="kill",
                match={"row_lo": 0, "attempt": 0},
            )
        )
        result = QueryEngine(database).evaluate(
            query, options=process_options(faults=faults)
        )
        assert_parity(result, reference)
        assert any(
            "worker pool rebuilt" in event
            for event in result.plan.degradations
        )
        assert any(
            "worker crash" in event
            for event in result.plan.degradations
        )

    def test_persistent_kills_degrade_to_exact_lower_tier(self):
        database = build_database(seed=12)
        query = PSTExistsQuery(WINDOW)
        reference = serial_reference(database, query)
        # no attempt filter and times=None: every attempt dies, so the
        # supervisor must exhaust retries and fall back to a tier that
        # still computes the exact kernels
        faults = FaultInjector(
            FaultSpec(
                site="worker:shard",
                action="kill",
                match={"row_lo": 0},
                times=None,
            )
        )
        with pytest.warns(DegradedExecutionWarning):
            result = QueryEngine(database).evaluate(
                query,
                options=process_options(
                    faults=faults, policy=fast_policy(max_retries=1)
                ),
            )
        assert_parity(result, reference)
        assert any(
            event.startswith("degraded process ->")
            for event in result.plan.degradations
        )
        assert any(
            "WorkerCrashError" in event
            for event in result.plan.degradations
        )
        # explain() surfaces the same events
        assert "degraded" in result.plan.describe()

    def test_next_query_after_kill_gets_a_fresh_pool(self):
        database = build_database(seed=13)
        query = PSTExistsQuery(WINDOW)
        reference = serial_reference(database, query)
        engine = QueryEngine(database)
        faults = FaultInjector(
            FaultSpec(
                site="worker:shard",
                action="kill",
                match={"row_lo": 0},
                times=None,
            )
        )
        with pytest.warns(DegradedExecutionWarning):
            engine.evaluate(
                query,
                options=process_options(
                    faults=faults, policy=fast_policy(max_retries=1)
                ),
            )
        # the very next process-dispatch query must transparently
        # rebuild the broken pool and run clean
        clean = engine.evaluate(query, options=process_options())
        assert_parity(clean, reference)
        assert clean.plan.degradations == []

    def test_hung_worker_times_out_and_retry_succeeds(self):
        database = build_database(seed=14)
        query = PSTExistsQuery(WINDOW)
        reference = serial_reference(database, query)
        # first attempts sleep far past the deadline; the supervisor
        # abandons them, rebuilds the pool and the retries run clean
        faults = FaultInjector(
            FaultSpec(
                site="worker:shard",
                action="delay",
                delay_seconds=6.0,
                match={"row_lo": 0, "attempt": 0},
            )
        )
        policy = fast_policy(timeout_seconds=2.0)
        result = QueryEngine(database).evaluate(
            query, options=process_options(faults=faults, policy=policy)
        )
        assert_parity(result, reference)
        assert any(
            "deadline" in event for event in result.plan.degradations
        )

    def test_unlinked_segment_degrades_then_recovers(self):
        database = build_database(seed=15)
        query = PSTExistsQuery(WINDOW)
        reference = serial_reference(database, query)
        engine = QueryEngine(database)
        faults = FaultInjector(
            FaultSpec(
                site="dispatch:published",
                action="unlink",
                match={"kind": "stack"},
            )
        )
        with pytest.warns(DegradedExecutionWarning):
            result = engine.evaluate(
                query, options=process_options(faults=faults)
            )
        assert_parity(result, reference)
        assert any(
            "SegmentLostError" in event
            for event in result.plan.degradations
        )
        # the publication cache was dropped, so the next process query
        # republishes and runs clean
        clean = engine.evaluate(query, options=process_options())
        assert_parity(clean, reference)
        assert clean.plan.degradations == []

    def test_corrupted_segment_caught_by_checksum(self):
        database = build_database(seed=16)
        query = PSTExistsQuery(WINDOW)
        reference = serial_reference(database, query)
        engine = QueryEngine(database)
        faults = FaultInjector(
            FaultSpec(
                site="dispatch:published",
                action="corrupt",
                match={"kind": "chain"},
            )
        )
        with pytest.warns(DegradedExecutionWarning):
            result = engine.evaluate(
                query,
                options=process_options(
                    faults=faults,
                    policy=fast_policy(verify_segments=True),
                ),
            )
        # without verification the workers would compute garbage from
        # the flipped bits; the checksum turns that into a clean
        # degradation to an exact tier instead
        assert_parity(result, reference)
        assert any(
            "SegmentLostError" in event
            for event in result.plan.degradations
        )
        clean = engine.evaluate(query, options=process_options())
        assert_parity(clean, reference)
        assert clean.plan.degradations == []

    def test_transient_worker_fault_retried_in_place(self):
        database = build_database(seed=17)
        query = PSTExistsQuery(WINDOW)
        reference = serial_reference(database, query)
        faults = FaultInjector(
            FaultSpec(
                site="worker:shard",
                action="raise",
                match={"row_lo": 0, "attempt": 0},
                message="flaky shard",
            )
        )
        result = QueryEngine(database).evaluate(
            query, options=process_options(faults=faults)
        )
        assert_parity(result, reference)
        # a raise from a healthy pool retries just that shard -- no
        # pool rebuild, no tier degradation
        assert any(
            "retried after worker fault" in event
            for event in result.plan.degradations
        )
        assert not any(
            event.startswith("degraded")
            for event in result.plan.degradations
        )

    def test_shutdown_is_idempotent_and_recoverable(self):
        database = build_database(seed=18)
        query = PSTExistsQuery(WINDOW)
        reference = serial_reference(database, query)
        engine = QueryEngine(database)
        assert_parity(
            engine.evaluate(query, options=process_options()),
            reference,
        )
        dispatch.shutdown()
        dispatch.shutdown()  # second call must be a no-op, not a crash
        assert dispatch.memory_stats()["session_bytes"] == 0
        # and the dispatch layer comes back up on demand
        result = engine.evaluate(query, options=process_options())
        assert_parity(result, reference)


# ----------------------------------------------------------------------
# transactional streaming ticks
# ----------------------------------------------------------------------
class TestTransactionalTicks:
    def test_poisoned_tick_rolls_back_then_retries_clean(self):
        database = build_database(seed=21, n_objects=30, n_chains=2)
        engine = QueryEngine(database)
        faults = FaultInjector(
            FaultSpec(
                site="streaming:commit",
                action="raise",
                match={"tick": 0},
                message="poisoned commit",
            )
        )
        standing = engine.watch(PSTExistsQuery(WINDOW), faults=faults)
        window_before = standing.window
        with pytest.raises(InjectedFaultError):
            standing.tick()
        # all-or-nothing: the failed tick left no trace but the error
        assert standing.ticks == 0
        assert standing.window == window_before
        assert not standing.quarantined
        assert "poisoned commit" in standing.error
        # the retry (spec disarmed after one firing) commits and
        # matches an independent batch evaluation of the same window
        result = standing.tick()
        assert standing.ticks == 1
        assert standing.error is None
        assert_parity(
            result,
            QueryEngine(database).evaluate(PSTExistsQuery(WINDOW)),
        )

    def test_rollback_covers_the_journal_sync(self):
        database = build_database(seed=22, n_objects=25, n_chains=2)
        engine = QueryEngine(database)
        faults = FaultInjector(
            FaultSpec(
                site="streaming:commit",
                action="raise",
                match={"tick": 0},
            )
        )
        standing = engine.watch(PSTExistsQuery(WINDOW), faults=faults)
        # a mutation lands after registration; the poisoned tick syncs
        # it, fails, and must roll the sync back too
        rng = np.random.default_rng(99)
        database.add(
            UncertainObject.with_distribution(
                "late-arrival",
                make_object_distribution(N_STATES, 5, rng),
                time=2,
                chain_id="chain-0",
            )
        )
        with pytest.raises(InjectedFaultError):
            standing.tick()
        # the retry re-reads the journal and sees the new object
        result = standing.tick()
        assert "late-arrival" in result.values
        assert_parity(
            result,
            QueryEngine(database).evaluate(PSTExistsQuery(WINDOW)),
        )

    def test_quarantine_after_repeated_failures_and_reset(self):
        database = build_database(seed=23, n_objects=20, n_chains=2)
        engine = QueryEngine(database)
        faults = FaultInjector(
            FaultSpec(
                site="streaming:tick",
                action="raise",
                times=3,
                message="boom",
            )
        )
        standing = engine.watch(
            PSTExistsQuery(WINDOW), faults=faults, quarantine_after=3
        )
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                standing.tick()
        assert standing.quarantined
        assert "boom" in standing.error
        with pytest.raises(QuarantinedQueryError):
            standing.tick()
        # reset rebuilds from the database and revives the query
        standing.reset()
        assert not standing.quarantined
        assert standing.error is None
        result = standing.tick()
        assert_parity(
            result,
            QueryEngine(database).evaluate(PSTExistsQuery(WINDOW)),
        )

    def test_tick_all_isolates_the_poisoned_query(self):
        database = build_database(seed=24, n_objects=20, n_chains=2)
        streaming = StreamingQueryEngine(database)
        healthy = streaming.watch(PSTExistsQuery(WINDOW))
        poisoned = streaming.watch(
            PSTExistsQuery(WINDOW),
            faults=FaultInjector(
                FaultSpec(site="streaming:tick", times=None)
            ),
            quarantine_after=1,
        )
        reference = QueryEngine(database)
        first = streaming.tick_all()
        assert first[1] is None
        assert poisoned.quarantined
        assert_parity(
            first[0], reference.evaluate(PSTExistsQuery(WINDOW))
        )
        # the quarantined query is skipped, the healthy one advances
        second = streaming.tick_all()
        assert second[1] is None
        assert healthy.ticks == 2
        assert_parity(
            second[0],
            reference.evaluate(PSTExistsQuery(shifted(WINDOW, 1))),
        )

    def test_journal_overflow_forces_resync(self, monkeypatch):
        import repro.database.uncertain_db as udb

        monkeypatch.setattr(udb, "_JOURNAL_LIMIT", 4)
        database = build_database(seed=25, n_objects=20, n_chains=2)
        engine = QueryEngine(database)
        standing = engine.watch(PSTExistsQuery(WINDOW))
        standing.tick()
        assert standing.resyncs == 0
        # push the bounded journal far past what the standing query
        # has seen: the incremental sync can no longer catch up
        rng = np.random.default_rng(7)
        for index in range(6):
            database.add(
                UncertainObject.with_distribution(
                    f"churn-{index}",
                    make_object_distribution(N_STATES, 5, rng),
                    time=1,
                    chain_id="chain-0",
                )
            )
            database.remove(f"churn-{index}")
        result = standing.tick()
        assert standing.resyncs == 1
        assert_parity(
            result,
            QueryEngine(database).evaluate(
                PSTExistsQuery(shifted(WINDOW, 1))
            ),
        )


# ----------------------------------------------------------------------
# shared-memory janitor + doctor
# ----------------------------------------------------------------------
def _fake_orphan(pid: int, seq: int = 0, size: int = 4096) -> str:
    """Plant a ``repro-*`` segment file owned by ``pid`` in /dev/shm."""
    path = os.path.join("/dev/shm", f"repro-deadbeef-{pid}-{seq}")
    with open(path, "wb") as handle:
        handle.write(b"\0" * size)
    return path


def _dead_pid() -> int:
    """A PID guaranteed to belong to no live process (just reaped)."""
    child = subprocess.Popen(["sleep", "0"])
    child.wait()
    return child.pid


@needs_dev_shm
class TestJanitor:
    def test_sweep_reclaims_segments_of_dead_sessions(self):
        path = _fake_orphan(_dead_pid())
        name = os.path.basename(path)
        try:
            infos = {
                info.name: info for info in dispatch.list_segments()
            }
            assert name in infos
            assert not infos[name].alive
            swept = dispatch.sweep_orphans()
            assert name in {info.name for info in swept}
            assert not os.path.exists(path)
            assert dispatch.memory_stats()["orphan_bytes"] == 0
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_live_sessions_are_never_swept(self):
        path = _fake_orphan(os.getpid(), seq=1)
        name = os.path.basename(path)
        try:
            infos = {
                info.name: info for info in dispatch.list_segments()
            }
            assert infos[name].alive
            swept = dispatch.sweep_orphans()
            assert name not in {info.name for info in swept}
            assert os.path.exists(path)
        finally:
            os.unlink(path)

    @needs_processes
    def test_pool_startup_sweeps_leftovers_of_crashed_session(self):
        # simulate a crashed parent: its segment survives in /dev/shm,
        # its PID is gone; building a fresh pool must sweep it
        path = _fake_orphan(_dead_pid())
        try:
            dispatch.shutdown()  # force the next query to build a pool
            database = build_database(
                seed=31, n_objects=20, n_chains=2
            )
            query = PSTExistsQuery(WINDOW)
            result = QueryEngine(database).evaluate(
                query, options=process_options()
            )
            assert_parity(result, serial_reference(database, query))
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_doctor_sweeps_and_reports_zero_leaked_bytes(self, capsys):
        from repro.bench.cli import main

        path = _fake_orphan(_dead_pid())
        try:
            exit_code = main(["doctor"])
            output = capsys.readouterr().out
            assert exit_code == 0
            assert "ORPHAN" in output
            assert "swept 1 orphaned segment(s)" in output
            assert "leaked bytes  : 0" in output
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_doctor_no_sweep_reports_leak_and_fails(self, capsys):
        from repro.bench.cli import main

        path = _fake_orphan(_dead_pid())
        try:
            exit_code = main(["doctor", "--no-sweep"])
            output = capsys.readouterr().out
            assert exit_code == 1
            assert "ORPHAN" in output
            assert os.path.exists(path)  # --no-sweep left it alone
        finally:
            os.unlink(path)


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault"):
            FaultSpec(site="x", action="explode")

    def test_bad_counters_rejected(self):
        with pytest.raises(ValidationError, match="times"):
            FaultSpec(site="x", times=0)
        with pytest.raises(ValidationError, match="after"):
            FaultSpec(site="x", after=-1)
        with pytest.raises(ValidationError, match="delay_seconds"):
            FaultSpec(site="x", action="delay", delay_seconds=-0.5)

    def test_match_and_counting_windows(self):
        injector = FaultInjector(
            FaultSpec(site="x", match={"tick": 1}, after=1, times=1)
        )
        injector.fire("y", tick=1)  # wrong site
        injector.fire("x", tick=0)  # wrong info
        injector.fire("x", tick=1)  # matching, but skipped by after=1
        assert injector.fired() == 0
        with pytest.raises(InjectedFaultError):
            injector.fire("x", tick=1)
        assert injector.fired("x") == 1
        injector.fire("x", tick=1)  # disarmed after `times` firings
        assert injector.fired() == 1

    def test_kill_refused_in_origin_process(self):
        # a kill spec must never take down the process that armed it
        # (typically the test runner) -- it degrades to a raise
        injector = FaultInjector(FaultSpec(site="x", action="kill"))
        with pytest.raises(InjectedFaultError, match="refused"):
            injector.fire("x")
