"""Tests for the line / grid / graph state spaces."""

from __future__ import annotations

import pytest

from repro import GraphStateSpace, GridStateSpace, LineStateSpace
from repro.core.errors import StateSpaceError


class TestLineStateSpace:
    def test_basic(self):
        space = LineStateSpace(10)
        assert space.n_states == 10
        assert len(space) == 10
        assert space.location_of(3) == (3.0,)

    def test_empty_rejected(self):
        with pytest.raises(StateSpaceError):
            LineStateSpace(0)

    def test_check_state(self):
        space = LineStateSpace(5)
        assert space.check_state(4) == 4
        with pytest.raises(StateSpaceError):
            space.check_state(5)
        with pytest.raises(StateSpaceError):
            space.check_state(-1)

    def test_interval(self):
        space = LineStateSpace(100)
        assert space.interval(10, 12) == frozenset({10, 11, 12})

    def test_interval_clipped(self):
        space = LineStateSpace(10)
        assert space.interval(8, 50) == frozenset({8, 9})

    def test_interval_outside(self):
        space = LineStateSpace(10)
        with pytest.raises(StateSpaceError):
            space.interval(50, 60)

    def test_interval_inverted(self):
        with pytest.raises(StateSpaceError):
            LineStateSpace(10).interval(5, 2)

    def test_complement(self):
        space = LineStateSpace(5)
        assert space.complement([0, 1]) == frozenset({2, 3, 4})

    def test_check_region_validates(self):
        space = LineStateSpace(3)
        with pytest.raises(StateSpaceError):
            space.check_region([0, 7])


class TestGridStateSpace:
    def test_row_major_layout(self):
        grid = GridStateSpace(4, 3)
        assert grid.n_states == 12
        assert grid.state_of_cell(1, 2) == 9
        assert grid.cell_of_state(9) == (1, 2)

    def test_bad_dimensions(self):
        with pytest.raises(StateSpaceError):
            GridStateSpace(0, 5)
        with pytest.raises(StateSpaceError):
            GridStateSpace(5, 5, cell_size=0)

    def test_cell_out_of_range(self):
        grid = GridStateSpace(2, 2)
        with pytest.raises(StateSpaceError):
            grid.state_of_cell(2, 0)

    def test_location_is_cell_center(self):
        grid = GridStateSpace(3, 3, cell_size=2.0, origin=(10.0, 20.0))
        assert grid.location_of(0) == (11.0, 21.0)
        assert grid.location_of(4) == (13.0, 23.0)

    def test_state_of_point(self):
        grid = GridStateSpace(3, 3, cell_size=2.0)
        assert grid.state_of_point(0.5, 0.5) == 0
        assert grid.state_of_point(5.9, 5.9) == 8

    def test_state_of_point_outside(self):
        grid = GridStateSpace(2, 2)
        with pytest.raises(StateSpaceError):
            grid.state_of_point(-1.0, 0.5)

    def test_box(self):
        grid = GridStateSpace(4, 4)
        box = grid.box(1, 1, 2, 2)
        assert box == frozenset({5, 6, 9, 10})

    def test_box_clipped(self):
        grid = GridStateSpace(3, 3)
        assert grid.box(2, 2, 10, 10) == frozenset({8})

    def test_box_fully_outside(self):
        grid = GridStateSpace(3, 3)
        with pytest.raises(StateSpaceError):
            grid.box(5, 5, 9, 9)

    def test_box_inverted(self):
        with pytest.raises(StateSpaceError):
            GridStateSpace(3, 3).box(2, 2, 1, 1)

    def test_disk(self):
        grid = GridStateSpace(5, 5)
        disk = grid.disk(2.5, 2.5, 1.0)
        assert grid.state_of_cell(2, 2) in disk
        assert grid.state_of_cell(0, 0) not in disk

    def test_disk_negative_radius(self):
        with pytest.raises(StateSpaceError):
            GridStateSpace(3, 3).disk(0, 0, -1)

    def test_neighbors_center_8(self):
        grid = GridStateSpace(3, 3)
        assert len(grid.neighbors(4, diagonal=True)) == 8
        assert len(grid.neighbors(4, diagonal=False)) == 4

    def test_neighbors_corner(self):
        grid = GridStateSpace(3, 3)
        assert len(grid.neighbors(0, diagonal=True)) == 3
        assert len(grid.neighbors(0, diagonal=False)) == 2


class TestGraphStateSpace:
    def build(self):
        nodes = ["a", "b", "c", "d"]
        edges = [("a", "b"), ("b", "c"), ("c", "d")]
        positions = {
            "a": (0.0, 0.0),
            "b": (1.0, 0.0),
            "c": (2.0, 0.0),
            "d": (3.0, 0.0),
        }
        return GraphStateSpace(nodes, edges, positions=positions)

    def test_index_mapping(self):
        space = self.build()
        assert space.index_of("c") == 2
        assert space.label_of(2) == "c"

    def test_unknown_label(self):
        with pytest.raises(StateSpaceError):
            self.build().index_of("z")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(StateSpaceError):
            GraphStateSpace(["a", "a"], [])

    def test_undirected_adjacency(self):
        space = self.build()
        assert space.out_neighbors(1) == [0, 2]
        assert space.n_edges() == 6  # 3 undirected edges, both ways

    def test_directed_adjacency(self):
        space = GraphStateSpace(
            ["a", "b"], [("a", "b")], directed=True
        )
        assert space.out_neighbors(0) == [1]
        assert space.out_neighbors(1) == []

    def test_self_loops_dropped(self):
        space = GraphStateSpace(["a", "b"], [("a", "a"), ("a", "b")])
        assert space.out_neighbors(0) == [1]

    def test_duplicate_edges_deduplicated(self):
        space = GraphStateSpace(
            ["a", "b"], [("a", "b"), ("a", "b"), ("b", "a")]
        )
        assert space.out_neighbors(0) == [1]
        assert space.n_edges() == 2

    def test_ball(self):
        space = self.build()
        assert space.ball("a", 0) == frozenset({0})
        assert space.ball("a", 1) == frozenset({0, 1})
        assert space.ball("a", 2) == frozenset({0, 1, 2})
        assert space.ball("a", 99) == frozenset({0, 1, 2, 3})

    def test_ball_negative(self):
        with pytest.raises(StateSpaceError):
            self.build().ball("a", -1)

    def test_locations(self):
        space = self.build()
        assert space.location_of(3) == (3.0, 0.0)

    def test_location_without_positions(self):
        space = GraphStateSpace(["a"], [])
        with pytest.raises(StateSpaceError):
            space.location_of(0)

    def test_disk(self):
        space = self.build()
        assert space.disk(0.0, 0.0, 1.5) == frozenset({0, 1})

    def test_disk_without_positions(self):
        space = GraphStateSpace(["a"], [])
        with pytest.raises(StateSpaceError):
            space.disk(0, 0, 1)

    def test_region_labels(self):
        space = self.build()
        assert space.region_labels(["a", "d"]) == frozenset({0, 3})
