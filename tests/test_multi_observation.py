"""Tests for multiple-observation processing (Section VI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MonteCarloSampler,
    Observation,
    ObservationSet,
    PossibleWorldEnumerator,
    SpatioTemporalWindow,
    StateDistribution,
    build_doubled_matrices,
    ob_exists_probability,
    ob_exists_probability_multi,
)
from repro.core.errors import (
    InfeasibleEvidenceError,
    QueryError,
    ValidationError,
)

from conftest import random_chain, random_distribution


def section6_setup(paper_chain_section6):
    """The paper's Fig. 7 scenario.

    Observed at s1 at t=0 and s2 at t=3; the query window covers
    {s1, s2} x {1, 2} (the region the example's printed M+ redirects).
    """
    observations = ObservationSet.of(
        Observation.precise(0, 3, 0),
        Observation.precise(3, 3, 1),
    )
    window = SpatioTemporalWindow(frozenset({0, 1}), frozenset({1, 2}))
    return observations, window


class TestPaperSection6Example:
    def test_posterior_excludes_window(self, paper_chain_section6):
        observations, window = section6_setup(paper_chain_section6)
        assert ob_exists_probability_multi(
            paper_chain_section6, observations, window
        ) == pytest.approx(0.0)

    def test_intermediate_vector_at_t3(self, paper_chain_section6):
        """The paper's P(o,3) = (0, 0.16, 0.04, 0.4, 0, 0.4) before fusion."""
        matrices = build_doubled_matrices(paper_chain_section6, {0, 1})
        vector = matrices.extend_initial(
            np.array([1.0, 0.0, 0.0]), 0, frozenset({1, 2})
        )
        for time in (1, 2, 3):
            matrix = (
                matrices.m_plus if time in {1, 2} else matrices.m_minus
            )
            vector = np.asarray(vector @ matrix).ravel()
        assert np.allclose(vector, [0, 0.16, 0.04, 0.4, 0, 0.4])

    def test_uncertain_second_observation(self, paper_chain_section6):
        """The paper's obs2 = (0, 0.5, 0, 0, 0.5, 0) -- pdf on s2 only --
        still forces the object onto the window-avoiding path."""
        observations = ObservationSet.of(
            Observation.precise(0, 3, 0),
            Observation.weighted(3, 3, {1: 1.0}),
        )
        window = SpatioTemporalWindow(
            frozenset({0, 1}), frozenset({1, 2})
        )
        assert ob_exists_probability_multi(
            paper_chain_section6, observations, window
        ) == pytest.approx(0.0)


class TestAgainstConditionedEnumeration:
    def test_random_instances(self):
        rng = np.random.default_rng(60)
        checked = 0
        while checked < 20:
            n = int(rng.integers(2, 5))
            chain = random_chain(n, rng)
            first = random_distribution(n, rng, sparse=True)
            horizon = int(rng.integers(2, 6))
            obs_time = int(rng.integers(1, horizon + 1))
            obs_dist = random_distribution(n, rng)
            region = frozenset(
                int(s)
                for s in rng.choice(
                    n, size=int(rng.integers(1, n)), replace=False
                )
            )
            times = frozenset(
                int(t)
                for t in rng.choice(
                    np.arange(1, horizon + 1),
                    size=int(rng.integers(1, horizon + 1)),
                    replace=False,
                )
            )
            window = SpatioTemporalWindow(region, times)
            observations = ObservationSet.of(
                Observation(0, first), Observation(obs_time, obs_dist)
            )
            enumerator = PossibleWorldEnumerator(
                chain, first, max(window.t_end, obs_time)
            )
            try:
                expected = enumerator.conditioned_on_observations(
                    [(obs_time, obs_dist)]
                ).exists_probability(window)
            except ValidationError:
                continue  # contradictory draw; skip
            actual = ob_exists_probability_multi(
                chain, observations, window
            )
            assert actual == pytest.approx(expected, abs=1e-10)
            checked += 1

    def test_three_observations(self):
        rng = np.random.default_rng(61)
        chain = random_chain(4, rng)
        first = StateDistribution.uniform(4)
        obs1 = random_distribution(4, rng)
        obs2 = random_distribution(4, rng)
        window = SpatioTemporalWindow(frozenset({1}), frozenset({1, 3}))
        observations = ObservationSet.of(
            Observation(0, first),
            Observation(2, obs1),
            Observation(4, obs2),
        )
        enumerator = PossibleWorldEnumerator(chain, first, 4)
        expected = enumerator.conditioned_on_observations(
            [(2, obs1), (4, obs2)]
        ).exists_probability(window)
        assert ob_exists_probability_multi(
            chain, observations, window
        ) == pytest.approx(expected, abs=1e-10)

    def test_observation_beyond_window(self):
        """An observation after t_end still re-weights the result."""
        rng = np.random.default_rng(62)
        chain = random_chain(3, rng)
        first = StateDistribution.uniform(3)
        later = random_distribution(3, rng)
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        observations = ObservationSet.of(
            Observation(0, first), Observation(4, later)
        )
        enumerator = PossibleWorldEnumerator(chain, first, 4)
        expected = enumerator.conditioned_on_observations(
            [(4, later)]
        ).exists_probability(window)
        assert ob_exists_probability_multi(
            chain, observations, window
        ) == pytest.approx(expected, abs=1e-10)

    def test_single_observation_reduces_to_plain_ob(self):
        rng = np.random.default_rng(63)
        chain = random_chain(4, rng)
        initial = random_distribution(4, rng)
        window = SpatioTemporalWindow(frozenset({2}), frozenset({1, 3}))
        observations = ObservationSet.single(Observation(0, initial))
        assert ob_exists_probability_multi(
            chain, observations, window
        ) == pytest.approx(
            ob_exists_probability(chain, initial, window)
        )


class TestMonteCarloAgreement:
    def test_importance_sampling_converges(self, paper_chain_section6):
        rng = np.random.default_rng(64)
        chain = paper_chain_section6
        observations = ObservationSet.of(
            Observation(0, StateDistribution.uniform(3)),
            Observation.weighted(3, 3, {1: 0.5, 2: 0.5}),
        )
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1, 2}))
        exact = ob_exists_probability_multi(chain, observations, window)
        sampler = MonteCarloSampler(chain, rng=rng)
        estimate = sampler.exists_probability_multi(
            observations, window, n_samples=30_000
        )
        assert estimate.estimate == pytest.approx(exact, abs=0.02)


class TestValidation:
    def test_contradictory_observations(self, paper_chain):
        # from s1 the object is certainly at s3 at t=1
        observations = ObservationSet.of(
            Observation.precise(0, 3, 0),
            Observation.precise(1, 3, 0),
        )
        window = SpatioTemporalWindow(frozenset({1}), frozenset({1}))
        with pytest.raises(InfeasibleEvidenceError):
            ob_exists_probability_multi(
                paper_chain, observations, window
            )

    def test_dimension_mismatch(self, paper_chain):
        observations = ObservationSet.single(
            Observation.precise(0, 5, 0)
        )
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        with pytest.raises(ValidationError):
            ob_exists_probability_multi(
                paper_chain, observations, window
            )

    def test_query_before_first_observation(self, paper_chain):
        observations = ObservationSet.single(
            Observation.precise(2, 3, 0)
        )
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        with pytest.raises(QueryError):
            ob_exists_probability_multi(
                paper_chain, observations, window
            )

    def test_wrong_prebuilt_matrices(self, paper_chain):
        observations = ObservationSet.single(
            Observation.precise(0, 3, 0)
        )
        window = SpatioTemporalWindow(frozenset({0}), frozenset({1}))
        matrices = build_doubled_matrices(paper_chain, {1})
        with pytest.raises(QueryError):
            ob_exists_probability_multi(
                paper_chain, observations, window, matrices=matrices
            )
