"""Smoke tests for the example scripts.

The quickstart runs end to end (it is fast and asserts the paper's
numbers through its output); the heavier examples are compile-checked
and their mains imported, keeping the suite quick while still breaking
if an example drifts from the API.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert "iceberg_monitoring.py" in names
    assert "road_traffic.py" in names
    assert "multi_observation_forensics.py" in names
    assert "learned_model_tracking.py" in names


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_output():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    out = completed.stdout
    assert "0.864" in out              # the paper's running example
    assert "0.136" in out              # k-times distribution head
    assert "obj-0: P_exists = 0.960" in out  # backward vector entry
