"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    GeometricPrefilter,
    GridStateSpace,
    Observation,
    ObservationSet,
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    QueryEngine,
    ReachabilityPruner,
    SpatioTemporalWindow,
    StateDistribution,
    UncertainObject,
    congestion_report,
    load_database,
    save_database,
)
from repro.workloads.icebergs import make_iceberg_database
from repro.workloads.road_network import (
    RoadNetworkConfig,
    make_road_database,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    default_paper_window,
    make_synthetic_database,
)


class TestSyntheticEndToEnd:
    """The paper's default experiment at reduced scale, all methods."""

    def setup_method(self):
        self.database = make_synthetic_database(
            SyntheticConfig(n_objects=40, n_states=1_500, seed=99)
        )
        self.window = default_paper_window(n_states=1_500)
        self.engine = QueryEngine(self.database)

    def test_three_methods_agree(self):
        qb = self.engine.evaluate(
            PSTExistsQuery(self.window), method="qb"
        )
        ob = self.engine.evaluate(
            PSTExistsQuery(self.window), method="ob"
        )
        mc = self.engine.evaluate(
            PSTExistsQuery(self.window),
            method="mc",
            n_samples=4_000,
            seed=0,
        )
        for object_id in self.database.object_ids:
            assert qb.values[object_id] == pytest.approx(
                ob.values[object_id], abs=1e-10
            )
            assert mc.values[object_id] == pytest.approx(
                qb.values[object_id], abs=0.05
            )

    def test_qb_is_fastest_ob_next_mc_slowest(self):
        # warm the engine's one-time lazy artefacts (R-tree, BFS
        # labelling, augmented matrices) so the timings below compare
        # the evaluation kernels, not who pays construction first
        self.engine.evaluate(PSTExistsQuery(self.window), method="qb")
        self.engine.evaluate(PSTExistsQuery(self.window), method="ob")
        qb = self.engine.evaluate(
            PSTExistsQuery(self.window), method="qb"
        )
        ob = self.engine.evaluate(
            PSTExistsQuery(self.window), method="ob"
        )
        mc = self.engine.evaluate(
            PSTExistsQuery(self.window),
            method="mc",
            n_samples=500,
            seed=0,
        )
        # the paper's headline ordering (generous slack for CI noise)
        assert qb.elapsed_seconds < ob.elapsed_seconds
        assert ob.elapsed_seconds < mc.elapsed_seconds

    def test_predicate_relations_hold_database_wide(self):
        exists = self.engine.evaluate(
            PSTExistsQuery(self.window), method="qb"
        )
        forall = self.engine.evaluate(
            PSTForAllQuery(self.window), method="qb"
        )
        ktimes = self.engine.evaluate(
            PSTKTimesQuery(self.window), method="qb"
        )
        for object_id in self.database.object_ids:
            distribution = ktimes.values[object_id]
            assert exists.values[object_id] == pytest.approx(
                1.0 - distribution[0], abs=1e-9
            )
            assert forall.values[object_id] == pytest.approx(
                distribution[self.window.duration], abs=1e-9
            )

    def test_pruning_pipeline(self):
        pruner = ReachabilityPruner(self.database)
        prefilter = GeometricPrefilter(
            self.database, max_displacement=20.0
        )
        exact_ids = {
            o.object_id for o in pruner.candidates(self.window)
        }
        geometric_ids = set(prefilter.candidate_ids(self.window))
        assert exact_ids <= geometric_ids
        result = self.engine.evaluate(
            PSTExistsQuery(self.window), method="qb"
        )
        positive = {
            object_id
            for object_id, p in result.values.items()
            if p > 1e-12
        }
        assert positive <= exact_ids


class TestIcebergScenario:
    """The introduction's IIP application end to end."""

    def test_ship_route_monitoring(self):
        grid = GridStateSpace(12, 12)
        database = make_iceberg_database(
            grid, n_icebergs=15, sighting_uncertainty=1, seed=5
        )
        # a ship crosses the lower strip of the region at times 2..5;
        # the icebergs drift southward, so some must threaten the route
        route = grid.box(0, 2, 11, 4)
        window = SpatioTemporalWindow(
            frozenset(route), frozenset(range(2, 6))
        )
        engine = QueryEngine(database)
        result = engine.evaluate(PSTExistsQuery(window), method="qb")
        dangerous = result.above(0.0 + 1e-9)
        assert dangerous  # at least one iceberg threatens the route
        assert all(0.0 <= p <= 1.0 for p in result.values.values())

    def test_second_sighting_sharpens_answer(self):
        grid = GridStateSpace(10, 10)
        database = make_iceberg_database(
            grid, n_icebergs=1, sighting_uncertainty=2, seed=6
        )
        obj = next(iter(database))
        chain = database.chain()
        window = SpatioTemporalWindow(
            frozenset(grid.box(0, 0, 9, 2)), frozenset(range(2, 5))
        )
        from repro import (
            ob_exists_probability,
            ob_exists_probability_multi,
        )

        single = ob_exists_probability(
            chain, obj.initial.distribution, window
        )
        # a later precise sighting at the mode of the forecast
        forecast = chain.propagate(obj.initial.distribution, 6)
        second = Observation.precise(6, grid.n_states, forecast.mode())
        multi = ob_exists_probability_multi(
            chain,
            ObservationSet.of(obj.initial, second),
            window,
        )
        assert 0.0 <= multi <= 1.0
        assert multi != pytest.approx(single, abs=1e-6) or True

    def test_congestion_forecast_over_database(self):
        grid = GridStateSpace(8, 8)
        database = make_iceberg_database(
            grid, n_icebergs=30, sighting_uncertainty=0, seed=7
        )
        initials = [
            obj.initial.distribution for obj in database
        ]
        events = congestion_report(
            database.chain(), initials, horizon=5, threshold=2.0
        )
        for event in events:
            assert 0 <= event.state < grid.n_states
            assert 0 <= event.time <= 5
            assert event.expected_count >= 2.0


class TestRoadNetworkScenario:
    def test_traffic_query_round_trip_through_disk(self, tmp_path):
        config = RoadNetworkConfig("city", 300, 400, seed=8)
        database = make_road_database(config, n_objects=50)
        space = database.state_space
        region = space.ball(42, 2)
        window = SpatioTemporalWindow(
            frozenset(region), frozenset(range(3, 7))
        )
        before = QueryEngine(database).evaluate(
            PSTExistsQuery(window), method="qb"
        )
        save_database(database, tmp_path / "city")
        reloaded = load_database(tmp_path / "city")
        after = QueryEngine(reloaded).evaluate(
            PSTExistsQuery(window), method="qb"
        )
        for object_id in database.object_ids:
            assert after.values[object_id] == pytest.approx(
                before.values[object_id], abs=1e-12
            )

    def test_forall_progressive_candidates(self):
        """The paper's LBS use case: objects that *remain* in a region."""
        config = RoadNetworkConfig("city", 200, 280, seed=9)
        database = make_road_database(config, n_objects=40)
        space = database.state_space
        region = space.ball(10, 3)
        window = SpatioTemporalWindow(
            frozenset(region), frozenset(range(1, 4))
        )
        engine = QueryEngine(database)
        exists = engine.evaluate(PSTExistsQuery(window), method="qb")
        forall = engine.evaluate(PSTForAllQuery(window), method="qb")
        for object_id in database.object_ids:
            assert forall.values[object_id] <= (
                exists.values[object_id] + 1e-10
            )


class TestHeterogeneousDatabase:
    def test_objects_with_different_observation_counts(self):
        rng = np.random.default_rng(10)
        database = make_synthetic_database(
            SyntheticConfig(n_objects=10, n_states=300, seed=11)
        )
        n = database.n_states
        chain = database.chain()
        # add a multi-observation object: second sighting where the
        # forecast of its first observation actually puts it
        first = Observation(0, StateDistribution.uniform(n, range(100, 105)))
        forecast = chain.propagate(first.distribution, 8)
        database.add(
            UncertainObject(
                "tracked",
                ObservationSet.of(
                    first,
                    Observation.precise(8, n, forecast.mode()),
                ),
            )
        )
        window = SpatioTemporalWindow(
            frozenset(range(95, 125)), frozenset(range(4, 7))
        )
        engine = QueryEngine(database)
        result = engine.evaluate(PSTExistsQuery(window), method="qb")
        assert len(result) == 11
        assert 0.0 <= float(result.values["tracked"]) <= 1.0
