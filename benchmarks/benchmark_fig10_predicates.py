"""Figure 10: the three query predicates under OB and QB.

Paper setup: PST-exists, PST-for-all and PST-k-times over a growing query
window (1..10 timeslots), once with the object-based approach (Fig. 10(a))
and once with the query-based approach (Fig. 10(b)).

Expected shape (paper): exists and for-all cost about the same; k-times
is the most expensive and scales roughly linearly with the window length;
under QB everything runs in a fraction of the OB time.
"""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEngine
from repro.core.query import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    SpatioTemporalWindow,
)

from _bench_fixtures import synthetic_database

WINDOW_LENGTHS = [2, 6, 10]
N_OBJECTS = 60
N_STATES = 3_000


def _window(length):
    return SpatioTemporalWindow.from_ranges(
        100, 120, 20, 20 + length - 1
    )


def _query_for(predicate, length):
    window = _window(length)
    if predicate == "exists":
        return PSTExistsQuery(window)
    if predicate == "forall":
        return PSTForAllQuery(window)
    return PSTKTimesQuery(window)


@pytest.mark.parametrize("length", WINDOW_LENGTHS)
@pytest.mark.parametrize("predicate", ["exists", "forall", "ktimes"])
def test_fig10a_ob_predicates(benchmark, predicate, length):
    database = synthetic_database(
        n_objects=N_OBJECTS, n_states=N_STATES
    )
    engine = QueryEngine(database)
    query = _query_for(predicate, length)
    result = benchmark.pedantic(
        lambda: engine.evaluate(query, method="ob"),
        rounds=1,
        iterations=1,
    )
    assert len(result) == len(database)


@pytest.mark.parametrize("length", WINDOW_LENGTHS)
@pytest.mark.parametrize("predicate", ["exists", "forall", "ktimes"])
def test_fig10b_qb_predicates(benchmark, predicate, length):
    database = synthetic_database(
        n_objects=N_OBJECTS, n_states=N_STATES
    )
    engine = QueryEngine(database)
    query = _query_for(predicate, length)
    result = benchmark.pedantic(
        lambda: engine.evaluate(query, method="qb"),
        rounds=2,
        iterations=1,
    )
    assert len(result) == len(database)


if __name__ == "__main__":
    import sys

    from _bench_result import pytest_smoke_main

    sys.exit(pytest_smoke_main(__file__))
