#!/usr/bin/env python3
"""Request fusion through QueryService vs serial submission.

The ISSUE-8 acceptance gate: 64 concurrent clients submitting the
*same* query (one fusion fingerprint) through
:class:`repro.QueryService` must finish >= 2x faster than the same 64
requests evaluated back to back on the engine, with every client's
values within 1e-12 of the serial reference.  The speedup is
structural -- the broker answers the whole burst with one stacked
evaluation -- so unlike the dispatch benchmark it is gated in
``--smoke`` mode too: it does not depend on core count, only on the
evaluation costing more than the fusion window.

A second, ungated measurement mixes 4 distinct windows across the
same client count to report fusion behaviour on a less pathological
workload (requests/evaluation, speedup).

Everything lands in ``BENCH_service.json``.

Run:  PYTHONPATH=src python benchmarks/benchmark_service.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from typing import List, Optional

from repro import PSTExistsQuery, QueryEngine, QueryService
from repro.workloads.synthetic import (
    SyntheticConfig,
    make_synthetic_database,
)

from _bench_result import bench_name, write_result

REQUIRED_SPEEDUP = 2.0
CLIENTS = 64
TENANTS = 4
FUSION_WINDOW_MS = 2.0


def _drive(
    engine: QueryEngine,
    queries: List[PSTExistsQuery],
    clients: int,
) -> tuple:
    """One concurrent burst through the service; returns (secs, svc, results)."""

    async def run():
        async with QueryService(
            engine, fusion_window_ms=FUSION_WINDOW_MS
        ) as service:
            started = time.perf_counter()
            results = await asyncio.gather(
                *(
                    service.submit(
                        queries[i % len(queries)],
                        tenant=f"tenant-{i % TENANTS}",
                    )
                    for i in range(clients)
                )
            )
            elapsed = time.perf_counter() - started
            return elapsed, service, results

    return asyncio.run(run())


def run(n_objects: int, n_states: int, smoke: bool) -> int:
    database = make_synthetic_database(
        SyntheticConfig(n_objects=n_objects, n_states=n_states, seed=13)
    )
    engine = QueryEngine(database)
    lo = n_states // 4
    hi = min(lo + n_states // 4, n_states - 1)
    query = PSTExistsQuery.from_ranges(lo, hi, 6, 10)
    mixed = [
        PSTExistsQuery.from_ranges(
            lo + 3 * i, min(hi + 3 * i, n_states - 1), 6, 10
        )
        for i in range(4)
    ]
    print(
        f"workload: {n_objects} objects, {n_states} states, "
        f"{CLIENTS} clients, {TENANTS} tenants, "
        f"{FUSION_WINDOW_MS:g} ms fusion window"
    )

    # warm the plan cache so both sides measure steady-state service
    # behaviour, not first-query matrix construction
    reference = engine.evaluate(query)
    for q in mixed:
        engine.evaluate(q)

    started = time.perf_counter()
    for _ in range(CLIENTS):
        engine.evaluate(query)
    serial_seconds = time.perf_counter() - started

    fused_seconds, service, results = _drive(engine, [query], CLIENTS)

    worst = 0.0
    for result in results:
        assert set(result.values) == set(reference.values)
        for object_id, expected in reference.values.items():
            worst = max(
                worst, abs(result.values[object_id] - expected)
            )
    assert worst <= 1e-12, f"fusion parity broken: {worst}"

    speedup = serial_seconds / fused_seconds
    print(
        f"serial  : {serial_seconds * 1e3:9.1f} ms "
        f"({CLIENTS} evaluations)"
    )
    print(
        f"service : {fused_seconds * 1e3:9.1f} ms "
        f"({service.evaluations} evaluation(s), "
        f"{service.fused_calls} fused)"
    )
    print(
        f"speedup : {speedup:5.2f}x "
        f"(required: {REQUIRED_SPEEDUP:.1f}x)"
    )
    print(f"max |delta|: {worst:.2e}")

    mixed_serial_started = time.perf_counter()
    for i in range(CLIENTS):
        engine.evaluate(mixed[i % len(mixed)])
    mixed_serial = time.perf_counter() - mixed_serial_started
    mixed_fused, mixed_service, _ = _drive(engine, mixed, CLIENTS)
    mixed_speedup = mixed_serial / mixed_fused
    mixed_ratio = CLIENTS / mixed_service.evaluations
    print(
        f"mixed   : {len(mixed)} windows -> {mixed_speedup:.2f}x, "
        f"{mixed_ratio:.1f} requests/evaluation (not gated)"
    )

    write_result(bench_name(__file__), {
        "kind": "standalone",
        "smoke": smoke,
        "config": {
            "n_objects": n_objects,
            "n_states": n_states,
            "clients": CLIENTS,
            "tenants": TENANTS,
            "fusion_window_ms": FUSION_WINDOW_MS,
        },
        "serial_seconds": serial_seconds,
        "fused_seconds": fused_seconds,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "evaluations": service.evaluations,
        "mixed_speedup": mixed_speedup,
        "mixed_requests_per_evaluation": mixed_ratio,
        "max_abs_delta": worst,
    })

    if speedup < REQUIRED_SPEEDUP:
        print(
            f"FAIL: fusion speedup {speedup:.2f}x below required "
            f"{REQUIRED_SPEEDUP:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="QueryService request fusion vs serial submission"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI configuration (same gates)",
    )
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--states", type=int, default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        return run(
            n_objects=args.objects or 300,
            n_states=args.states or 1_000,
            smoke=True,
        )
    return run(
        n_objects=args.objects or 1_500,
        n_states=args.states or 3_000,
        smoke=False,
    )


if __name__ == "__main__":
    sys.exit(main())
