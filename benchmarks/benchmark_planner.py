#!/usr/bin/env python3
"""Cost-based planning + filter-refinement vs the unpruned batched path.

The workload is the ISSUE-2 acceptance scenario: a selective window at
the low end of a large line state space, objects spread uniformly
across *two* chains (so the planner also dispatches chain groups in
parallel), repeated as a monitoring loop would repeat it.  Two
strategies are timed:

* ``unpruned``  -- the PR-1 batched engine path: forced QB, all filter
  stages off (``PlanOptions(prefilter=False, bfs_prune=False)``);
* ``planned``   -- ``method="auto"``: the cost model picks a method per
  chain group and the R-tree prefilter + BFS reachability stages
  eliminate most objects before any kernel runs.

The script asserts that

* both strategies agree to 1e-12 on every object,
* the geometric prefilter eliminates at least 80% of the database
  (the ISSUE-2 selectivity floor),
* the EXPLAIN stage cardinalities are monotonically non-increasing,
* the planned path is at least 3x faster over the monitoring loop
  (1x in ``--smoke`` mode, which runs a seconds-scale configuration).

Run:  PYTHONPATH=src python benchmarks/benchmark_planner.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

import numpy as np

from repro import (
    PlanOptions,
    PSTExistsQuery,
    QueryEngine,
    SpatioTemporalWindow,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.state_space import LineStateSpace
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

from _bench_result import bench_name, write_result

UNPRUNED = PlanOptions(prefilter=False, bfs_prune=False)


def build_database(
    n_objects: int, n_states: int, seed: int
) -> TrajectoryDatabase:
    """Uniformly spread objects over two chains of one line space."""
    rng = np.random.default_rng(seed)
    database = TrajectoryDatabase(
        n_states, state_space=LineStateSpace(n_states)
    )
    for chain_id in ("cars", "trucks"):
        # the chains differ by consuming the shared rng stream in turn
        database.register_chain(
            chain_id, make_line_chain(n_states, rng=rng)
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(n_states, 5, rng),
                chain_id="cars" if index % 2 == 0 else "trucks",
            )
        )
    return database


def run(
    n_objects: int,
    n_states: int,
    n_queries: int,
    t_low: int,
    t_high: int,
    required_speedup: float,
    smoke: bool = False,
) -> int:
    database = build_database(n_objects, n_states, seed=23)
    window = SpatioTemporalWindow.from_ranges(
        100, min(120, n_states - 1), t_low, t_high
    )
    query = PSTExistsQuery(window)
    print(
        f"workload: {n_objects} objects over 2 chains, {n_states} "
        f"states, {n_queries} repeated queries, window "
        f"[{min(window.region)},{max(window.region)}] x "
        f"[{window.t_start},{window.t_end}]"
    )

    # -- unpruned batched baseline (the PR-1 path): forced QB, no filters
    unpruned_engine = QueryEngine(database)
    started = time.perf_counter()
    for _ in range(n_queries):
        baseline = unpruned_engine.evaluate(
            query, method="qb", options=UNPRUNED
        )
    unpruned_seconds = time.perf_counter() - started

    # -- planned path: cost-based method choice + filter stages
    planned_engine = QueryEngine(database)
    started = time.perf_counter()
    for _ in range(n_queries):
        planned = planned_engine.evaluate(query)
    planned_seconds = time.perf_counter() - started

    # -- parity: the filter stages are exact-safe
    worst = max(
        abs(planned.values[object_id] - baseline.values[object_id])
        for object_id in database.object_ids
    )
    assert worst <= 1e-12, f"planned/unpruned mismatch: {worst}"

    # -- EXPLAIN: stage cardinalities shrink monotonically
    plan = planned_engine.explain(query)
    counts = plan.stage_counts()
    assert all(
        later <= earlier
        for earlier, later in zip(counts, counts[1:])
    ), f"stage counts must be non-increasing, got {counts}"
    prefilter = plan.stages[0]
    prefiltered_fraction = 1.0 - (
        prefilter.candidates_out / max(1, prefilter.candidates_in)
    )

    speedup = unpruned_seconds / planned_seconds
    print(plan.describe())
    print(f"unpruned batched  : {unpruned_seconds:8.3f} s total")
    print(f"planned auto      : {planned_seconds:8.3f} s total")
    print(
        f"prefiltered       : {prefiltered_fraction:8.1%}  "
        f"(required: >= 80%)"
    )
    print(
        f"speedup           : {speedup:8.1f}x  (required: "
        f"{required_speedup:.0f}x)"
    )
    print(f"max |delta|       : {worst:.2e}")

    write_result(bench_name(__file__), {
        "kind": "standalone",
        "smoke": smoke,
        "config": {
            "n_objects": n_objects,
            "n_states": n_states,
            "n_queries": n_queries,
        },
        "unpruned_seconds": unpruned_seconds,
        "planned_seconds": planned_seconds,
        "speedup": speedup,
        "required_speedup": required_speedup,
        "prefiltered_fraction": prefiltered_fraction,
        "max_abs_delta": worst,
    })

    if prefiltered_fraction < 0.8:
        print(
            f"FAIL: prefilter eliminated only "
            f"{prefiltered_fraction:.1%} of the database",
            file=sys.stderr,
        )
        return 1
    if speedup < required_speedup:
        print(
            f"FAIL: speedup {speedup:.1f}x below required "
            f"{required_speedup:.0f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="cost-based planning + staged filtering vs the "
                    "unpruned batched path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI configuration (speedup must only be >1x)",
    )
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--states", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        n_objects, n_states, n_queries = 300, 6_000, 3
        t_low, t_high, required = 10, 15, 1.0
    else:
        n_objects, n_states, n_queries = 2_000, 20_000, 5
        t_low, t_high, required = 20, 25, 3.0
    return run(
        args.objects or n_objects,
        args.states or n_states,
        args.queries or n_queries,
        t_low,
        t_high,
        required,
        smoke=args.smoke,
    )


if __name__ == "__main__":
    sys.exit(main())
