"""Figure 9(a)-(c): runtime vs the query start time.

Paper setup: the window's time interval slides from t=5 to t=50 on the
synthetic dataset (a), the Munich road network (b) and the North America
road network (c).

Expected shape (paper): OB runtime grows roughly linearly with the start
time (more forward transitions per object); QB grows far more slowly and
stays within fractions of a second.
"""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEngine
from repro.core.query import PSTExistsQuery, SpatioTemporalWindow

from _bench_fixtures import road_database, synthetic_database

START_TIMES = [10, 30, 50]


def _window_for(database, start):
    region_high = min(120, database.n_states - 1)
    return SpatioTemporalWindow.from_ranges(
        100, region_high, start, start + 5
    )


def _run(database, start, method):
    engine = QueryEngine(database)
    query = PSTExistsQuery(_window_for(database, start))
    return engine.evaluate(query, method=method)


@pytest.mark.parametrize("start", START_TIMES)
def test_fig9a_synthetic_ob(benchmark, start):
    database = synthetic_database(n_objects=100, n_states=5_000)
    benchmark.pedantic(
        lambda: _run(database, start, "ob"), rounds=1, iterations=1
    )


@pytest.mark.parametrize("start", START_TIMES)
def test_fig9a_synthetic_qb(benchmark, start):
    database = synthetic_database(n_objects=100, n_states=5_000)
    benchmark.pedantic(
        lambda: _run(database, start, "qb"), rounds=3, iterations=1
    )


@pytest.mark.parametrize("start", START_TIMES)
def test_fig9b_munich_ob(benchmark, start):
    database = road_database("munich", n_objects=100)
    benchmark.pedantic(
        lambda: _run(database, start, "ob"), rounds=1, iterations=1
    )


@pytest.mark.parametrize("start", START_TIMES)
def test_fig9b_munich_qb(benchmark, start):
    database = road_database("munich", n_objects=100)
    benchmark.pedantic(
        lambda: _run(database, start, "qb"), rounds=3, iterations=1
    )


@pytest.mark.parametrize("start", START_TIMES)
def test_fig9c_north_america_ob(benchmark, start):
    database = road_database("north_america", n_objects=100)
    benchmark.pedantic(
        lambda: _run(database, start, "ob"), rounds=1, iterations=1
    )


@pytest.mark.parametrize("start", START_TIMES)
def test_fig9c_north_america_qb(benchmark, start):
    database = road_database("north_america", n_objects=100)
    benchmark.pedantic(
        lambda: _run(database, start, "qb"), rounds=3, iterations=1
    )


if __name__ == "__main__":
    import sys

    from _bench_result import pytest_smoke_main

    sys.exit(pytest_smoke_main(__file__))
