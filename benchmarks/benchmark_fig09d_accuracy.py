"""Figure 9(d): accuracy of the Markov model vs temporal independence.

This is the paper's model-justification experiment: for growing query
windows, the average exists-probability (over objects with a non-zero
exact answer) is computed once with the correct Markov evaluation and
once with the temporal-independence model.  The naive curve must sit at
or above the exact curve and the gap must not shrink to zero.

The benchmark times the two evaluations; the shape assertions run inside
the benchmarked callables so `--benchmark-only` still verifies them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.naive import naive_exists_probability
from repro.core.query import SpatioTemporalWindow
from repro.core.query_based import QueryBasedEvaluator

from _bench_fixtures import synthetic_database

WINDOW_LENGTHS = [2, 6, 10]


def _average_probabilities(database, length):
    n_states = database.n_states
    window = SpatioTemporalWindow.from_ranges(
        100, min(120, n_states - 1), 10, 10 + length - 1
    )
    chain = database.chain()
    evaluator = QueryBasedEvaluator(chain, window)
    exact = []
    naive = []
    for obj in database:
        p = evaluator.probability(obj.initial.distribution)
        if p <= 0.0:
            continue
        exact.append(p)
        naive.append(
            naive_exists_probability(
                chain, obj.initial.distribution, window
            )
        )
    return float(np.mean(exact)), float(np.mean(naive))


@pytest.mark.parametrize("length", WINDOW_LENGTHS)
def test_fig9d_accuracy(benchmark, length):
    database = synthetic_database(n_objects=100, n_states=2_000)

    def run():
        exact_mean, naive_mean = _average_probabilities(database, length)
        # pointwise, the independence model never under-estimates on
        # average for this diffusive workload
        assert naive_mean >= exact_mean - 1e-9
        return exact_mean, naive_mean

    exact_mean, naive_mean = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    if length >= 6:
        # a visible bias, as in the paper's plot
        assert naive_mean > exact_mean


if __name__ == "__main__":
    import sys

    from _bench_result import pytest_smoke_main

    sys.exit(pytest_smoke_main(__file__))
