#!/usr/bin/env python3
"""Out-of-core sharded store scatter vs single-process in-RAM.

Three gates from the ISSUE-10 acceptance criteria:

1. **Parity.** The same randomized workload is answered twice: by a
   plain in-RAM :class:`~repro.database.TrajectoryDatabase` evaluated
   single-process, and by a :class:`~repro.store.ShardedTrajectoryStore`
   (>= 8 shards) scattered over the worker pool, where each worker
   memory-maps its shard's columnar slabs zero-copy.  Every object
   must agree to 1e-12 and the plan must actually have scattered
   (``plan.store_stats["shards"] >= 8``).

2. **Speedup.** On machines with >= 4 cores, the full (non ``--smoke``)
   configuration requires the sharded scatter to beat the
   single-process in-RAM evaluation by >= 2x.  ``--smoke`` never gates
   speedup: a tens-of-milliseconds workload measures pool overhead,
   not scaling -- smoke's job is parity and machinery coverage in CI.

3. **Out-of-core.** A child process opens the same store with
   ``REPRO_STORE_RAM_CAP`` set *below* the total slab bytes (and, with
   ``--low-memory``, a hard ``RLIMIT_AS`` address-space ceiling -- LRU
   eviction unmaps slabs, so even virtual size stays bounded).  The
   child must answer exactly while the slab pool reports resident and
   high-water bytes at or under the cap with evictions observed --
   i.e. the dataset was genuinely paged through a bounded window
   rather than held resident.

Everything lands in ``BENCH_store.json``.

Run:  PYTHONPATH=src python benchmarks/benchmark_store.py [--smoke]
      [--low-memory]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import PlanOptions, PSTExistsQuery, QueryEngine
from repro.store import ShardedTrajectoryStore, store_health
from repro.workloads.synthetic import (
    SyntheticConfig,
    make_synthetic_database,
)

from _bench_result import bench_name, write_result

REQUIRED_SPEEDUP = 2.0
MIN_CORES_FOR_GATE = 4
MIN_SHARDS = 8
PARITY_BOUND = 1e-12

# the out-of-core child: sets the slab-pool cap (and optionally a hard
# address-space rlimit) BEFORE importing numpy/scipy, answers the
# query single-process from the store, and reports values + pool
# accounting as JSON on stdout
_CHILD = r"""
import json, os, resource, sys
store_dir, cap, limit_as = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
lo, hi, tlo, thi = (int(v) for v in sys.argv[4].split(","))
os.environ["REPRO_STORE_RAM_CAP"] = str(cap)
if limit_as > 0:
    resource.setrlimit(resource.RLIMIT_AS, (limit_as, limit_as))
from repro import PlanOptions, PSTExistsQuery, QueryEngine
from repro.store import ShardedTrajectoryStore
from repro.store.slabs import global_pool
store = ShardedTrajectoryStore(store_dir)
engine = QueryEngine(store)
result = engine.evaluate(
    PSTExistsQuery.from_ranges(lo, hi, tlo, thi),
    options=PlanOptions(dispatch="serial"),
)
print(json.dumps({
    "values": {k: float(v) for k, v in result.values.items()},
    "pool": global_pool().stats(),
    "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                      * 1024,
}))
"""


def _time(engine, query, options, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        engine.evaluate(query, options=options)
        best = min(best, time.perf_counter() - started)
    return best


def _out_of_core(
    store_dir: Path,
    window: tuple,
    limit_as: int,
) -> Dict[str, object]:
    health = store_health(store_dir)
    manifest = json.loads((store_dir / "manifest.json").read_text())
    snapshot = store_dir / f"snapshot-{manifest['generation']:06d}"
    # the slabs a read actually maps: the observation columns (the
    # other shard files are decoded eagerly at attach, not pooled)
    per_shard = []
    sizes = []
    for entry in manifest["shards"]:
        shard_dir = snapshot / entry["shard_id"]
        shard_sizes = [
            (shard_dir / name).stat().st_size
            for name in ("obs_states.npy", "obs_weights.npy")
        ]
        sizes.extend(shard_sizes)
        per_shard.append(sum(shard_sizes))
    total = sum(per_shard)
    # below the total (forces paging) but above the largest shard's
    # working set (a query must be able to read its own shard)
    cap = max(total // 2, max(per_shard) + min(sizes))
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD,
            str(store_dir),
            str(cap),
            str(limit_as),
            ",".join(str(v) for v in window),
        ],
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"out-of-core child failed (rc {completed.returncode}):\n"
            f"{completed.stderr}"
        )
    report = json.loads(completed.stdout)
    report["cap_bytes"] = cap
    report["total_slab_bytes"] = total
    report["limit_as_bytes"] = limit_as
    report["journal_records"] = health["journal_records"]
    return report


def run(
    n_objects: int,
    n_states: int,
    repeats: int,
    required_speedup: Optional[float],
    limit_as: int,
    smoke: bool,
) -> int:
    cores = os.cpu_count() or 1
    workers = max(2, min(8, cores))
    database = make_synthetic_database(
        SyntheticConfig(
            n_objects=n_objects, n_states=n_states, seed=17
        )
    )
    window = (
        n_states // 4,
        n_states // 4 + max(10, n_states // 12),
        6,
        10,
    )
    query = PSTExistsQuery.from_ranges(*window)
    # filters off and OB forced: both sides run the identical exact
    # sweep over every object, so the storage/dispatch tier is the
    # only variable being measured
    base = dict(method="ob", prefilter=False, bfs_prune=False)
    serial_opts = PlanOptions(**base, dispatch="serial")
    scatter_opts = PlanOptions(
        **base, dispatch="process", max_workers=workers
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedTrajectoryStore.create(
            Path(tmp) / "store", database, shards_per_chain=8
        )
        n_shards = store_health(store.path)["shards"]
        print(
            f"workload: {n_objects} objects, {n_states} states, "
            f"{n_shards} shards, window "
            f"[{window[0]},{window[1]}] x [{window[2]},{window[3]}], "
            f"{cores} cores, {workers} workers, best of {repeats}"
        )
        assert n_shards >= MIN_SHARDS, (
            f"expected >= {MIN_SHARDS} shards, got {n_shards}"
        )

        ram_engine = QueryEngine(database)
        store_engine = QueryEngine(store)
        # warm pool + plan caches so fork one-time costs are amortised
        ram_result = ram_engine.evaluate(query, options=serial_opts)
        store_result = store_engine.evaluate(
            query, options=scatter_opts
        )
        store_stats = store_result.plan.store_stats or {}
        assert store_stats.get("shards", 0) >= MIN_SHARDS, (
            f"query did not scatter over the store: {store_stats}"
        )
        worst = max(
            abs(
                store_result.values[object_id]
                - ram_result.values[object_id]
            )
            for object_id in database.object_ids
        )
        assert worst <= PARITY_BOUND, (
            f"store-scatter parity broken: {worst}"
        )

        seconds = {
            "in_ram_serial": _time(
                ram_engine, query, serial_opts, repeats
            ),
            "store_scatter": _time(
                store_engine, query, scatter_opts, repeats
            ),
        }
        speedup = (
            seconds["in_ram_serial"] / seconds["store_scatter"]
        )
        for name, value in seconds.items():
            print(f"{name:>14}: {value * 1e3:9.1f} ms")
        gated = (
            required_speedup is not None
            and cores >= MIN_CORES_FOR_GATE
        )
        if gated:
            note = f"(required: {required_speedup:.1f}x)"
        elif required_speedup is None:
            note = "(smoke: parity only, speedup not gated)"
        else:
            note = f"(gate skipped: {cores} < {MIN_CORES_FOR_GATE})"
        print(f"scatter vs in-RAM: {speedup:5.2f}x  {note}")
        print(f"max |delta|      : {worst:.2e}")
        print(
            f"shards: {store_stats.get('shards')}, fresh attaches: "
            f"{store_stats.get('fresh_attaches')}, prefilter/bfs "
            f"pruned: {store_stats.get('prefilter_pruned')}/"
            f"{store_stats.get('bfs_pruned')}"
        )

        print("out-of-core: re-answering under REPRO_STORE_RAM_CAP ...")
        capped = _out_of_core(store.path, window, limit_as)
        pool = capped["pool"]
        cap = capped["cap_bytes"]
        worst_capped = max(
            abs(
                capped["values"][object_id]
                - ram_result.values[object_id]
            )
            for object_id in database.object_ids
        )
        print(
            f"cap {cap} of {capped['total_slab_bytes']} slab bytes: "
            f"high water {pool['high_water_bytes']}, "
            f"{pool['evictions']} eviction(s), peak RSS "
            f"{capped['peak_rss_bytes'] / 1e6:.0f} MB"
            + (
                f", RLIMIT_AS {limit_as / 1e9:.1f} GB"
                if limit_as
                else ""
            )
        )
        assert worst_capped <= PARITY_BOUND, (
            f"capped parity broken: {worst_capped}"
        )
        assert pool["high_water_bytes"] <= cap, (
            f"slab residency exceeded the cap: "
            f"{pool['high_water_bytes']} > {cap}"
        )
        assert pool["mapped_bytes"] <= cap
        assert pool["evictions"] > 0, (
            "cap below total slab bytes but nothing was evicted"
        )

    write_result(bench_name(__file__), {
        "kind": "standalone",
        "smoke": smoke,
        "config": {
            "n_objects": n_objects,
            "n_states": n_states,
            "n_shards": n_shards,
            "repeats": repeats,
            "cores": cores,
            "workers": workers,
            "limit_as_bytes": limit_as,
        },
        "in_ram_serial_seconds": seconds["in_ram_serial"],
        "store_scatter_seconds": seconds["store_scatter"],
        "speedup_scatter_vs_in_ram": speedup,
        "required_speedup": required_speedup if gated else None,
        "max_abs_delta": worst,
        "store_stats": store_stats,
        "out_of_core": {
            "cap_bytes": capped["cap_bytes"],
            "total_slab_bytes": capped["total_slab_bytes"],
            "pool": pool,
            "peak_rss_bytes": capped["peak_rss_bytes"],
            "max_abs_delta": worst_capped,
        },
    })

    if gated and speedup < required_speedup:
        print(
            f"FAIL: store-scatter speedup {speedup:.2f}x below "
            f"required {required_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="out-of-core sharded store scatter vs "
                    "single-process in-RAM evaluation"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI configuration (parity + out-of-core "
             "gates only; speedup reported, not gated)",
    )
    parser.add_argument(
        "--low-memory",
        action="store_true",
        help="run the out-of-core child under a hard RLIMIT_AS "
             "address-space ceiling as well as the slab-pool cap",
    )
    parser.add_argument(
        "--limit-as",
        type=int,
        default=3 << 30,
        help="RLIMIT_AS bytes for --low-memory (default 3 GiB: "
             "interpreter + numpy/scipy + a bounded slab window)",
    )
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--states", type=int, default=None)
    args = parser.parse_args(argv)
    limit_as = args.limit_as if args.low_memory else 0
    if args.smoke:
        return run(
            n_objects=args.objects or 120,
            n_states=args.states or 500,
            repeats=2,
            required_speedup=None,
            limit_as=limit_as,
            smoke=True,
        )
    return run(
        n_objects=args.objects or 1_200,
        n_states=args.states or 3_000,
        repeats=3,
        required_speedup=REQUIRED_SPEEDUP,
        limit_as=limit_as,
        smoke=False,
    )


if __name__ == "__main__":
    sys.exit(main())
