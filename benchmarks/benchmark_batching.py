#!/usr/bin/env python3
"""Batched + plan-cached evaluation vs the per-object seed path.

The workload is the ISSUE-1 acceptance scenario: a single-chain
database of 500 objects answering a PST-exists window query, repeated
as a monitoring loop would repeat it.  Three strategies are timed:

* ``per-object``  -- the seed engine's object-based path: absorbing
  matrices rebuilt per query, then one forward pass *per object*;
* ``batched``     -- :func:`repro.batch_ob_exists` through a fresh
  :class:`repro.QueryEngine` (cold plan cache on the first query);
* ``batched+cache`` -- the same engine re-issuing the identical query,
  so matrix construction is skipped entirely.

The script asserts that all strategies agree to 1e-12 and that the
batched+cached path is at least 5x faster than the per-object path
(1x in ``--smoke`` mode, which runs a seconds-scale configuration for
CI).

Run:  PYTHONPATH=src python benchmarks/benchmark_batching.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

import numpy as np

from repro import (
    AbsorbingMatrices,
    PSTExistsQuery,
    QueryEngine,
    ob_exists_probability,
)
from repro.core.markov import MarkovChain
from repro.core.query import SpatioTemporalWindow
from repro.database.uncertain_db import TrajectoryDatabase
from repro.linalg.ops import get_backend

from _bench_fixtures import paper_window, synthetic_database
from _bench_result import bench_name, write_result


def seed_build_absorbing_matrices(
    chain: MarkovChain, region
) -> AbsorbingMatrices:
    """The seed's Section V-A construction, verbatim: per-query Python
    loops over COO triples (the path ISSUE 1 replaced with vectorised
    construction + the plan cache)."""
    frozen = frozenset(int(s) for s in region)
    linalg = get_backend(None)
    n = chain.n_states
    top = n
    inside, outside = [], []
    for i, j, v in chain.triples():
        (inside if j in frozen else outside).append((i, j, v))
    minus_triples = [(i, j, v) for i, j, v in chain.triples()]
    minus_triples.append((top, top, 1.0))
    redirected = np.zeros(n, dtype=float)
    for i, _, value in inside:
        redirected[i] += value
    plus_triples = list(outside)
    for i in np.nonzero(redirected)[0]:
        plus_triples.append((int(i), top, float(redirected[i])))
    plus_triples.append((top, top, 1.0))
    return AbsorbingMatrices(
        n_states=n,
        region=frozen,
        m_minus=linalg.from_coo(n + 1, n + 1, minus_triples),
        m_plus=linalg.from_coo(n + 1, n + 1, plus_triples),
        backend=linalg,
    )


def per_object_ob(
    database: TrajectoryDatabase, window: SpatioTemporalWindow
) -> Dict[str, float]:
    """The seed engine's OB path: matrices per query, one pass per object."""
    values: Dict[str, float] = {}
    for chain_id, objects in database.objects_by_chain().items():
        chain = database.chain(chain_id)
        matrices = seed_build_absorbing_matrices(chain, window.region)
        for obj in objects:
            values[obj.object_id] = ob_exists_probability(
                chain,
                obj.initial.distribution,
                window,
                start_time=obj.initial.time,
                matrices=matrices,
            )
    return values


def run(
    n_objects: int,
    n_states: int,
    n_queries: int,
    required_speedup: float,
    smoke: bool = False,
) -> int:
    database = synthetic_database(
        n_objects=n_objects, n_states=n_states, seed=97
    )
    window = paper_window(database.n_states)
    query = PSTExistsQuery(window)
    print(
        f"workload: {n_objects} objects, {n_states} states, "
        f"{n_queries} repeated queries, window "
        f"[{min(window.region)},{max(window.region)}] x "
        f"[{window.t_start},{window.t_end}]"
    )

    # -- per-object baseline: every query pays construction + N passes
    started = time.perf_counter()
    for _ in range(n_queries):
        baseline_values = per_object_ob(database, window)
    per_object_seconds = time.perf_counter() - started

    # -- batched engine: first query cold, the rest hit the plan cache
    engine = QueryEngine(database)
    started = time.perf_counter()
    cold = engine.evaluate(query, method="ob")
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(n_queries - 1):
        warm = engine.evaluate(query, method="ob")
    warm_seconds = (
        (time.perf_counter() - started) / max(1, n_queries - 1)
    )
    batched_seconds = cold_seconds + warm_seconds * (n_queries - 1)

    # -- parity: batched answers must equal the per-object answers
    final = warm if n_queries > 1 else cold
    worst = max(
        abs(final.values[object_id] - baseline_values[object_id])
        for object_id in database.object_ids
    )
    assert worst <= 1e-12, f"batched/per-object mismatch: {worst}"

    stats = engine.plan_cache.stats
    speedup = per_object_seconds / batched_seconds
    print(f"per-object path   : {per_object_seconds:8.3f} s total")
    print(
        f"batched (cold)    : {cold_seconds:8.3f} s/query; "
        f"warm {warm_seconds:8.4f} s/query"
    )
    print(f"batched+cache     : {batched_seconds:8.3f} s total")
    print(f"speedup           : {speedup:8.1f}x  (required: "
          f"{required_speedup:.0f}x)")
    print(
        f"plan cache        : {stats.hits} hits, "
        f"{stats.total_constructions} constructions "
        f"({n_queries} queries)"
    )
    print(f"max |delta|       : {worst:.2e}")

    write_result(bench_name(__file__), {
        "kind": "standalone",
        "smoke": smoke,
        "config": {
            "n_objects": n_objects,
            "n_states": n_states,
            "n_queries": n_queries,
        },
        "per_object_seconds": per_object_seconds,
        "batched_seconds": batched_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds_per_query": warm_seconds,
        "speedup": speedup,
        "required_speedup": required_speedup,
        "max_abs_delta": worst,
        "plan_cache_hits": stats.hits,
        "plan_cache_constructions": stats.total_constructions,
    })

    assert stats.total_constructions <= 2, (
        "repeated identical queries must not reconstruct"
    )
    if speedup < required_speedup:
        print(
            f"FAIL: speedup {speedup:.1f}x below required "
            f"{required_speedup:.0f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="batched+cached vs per-object PST-exists evaluation"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI configuration (speedup must only be >1x)",
    )
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--states", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        n_objects, n_states, n_queries, required = 60, 500, 3, 1.0
    else:
        # 2,000 states is the smallest Figure 8(a) configuration
        n_objects, n_states, n_queries, required = 500, 2_000, 5, 5.0
    return run(
        args.objects or n_objects,
        args.states or n_states,
        args.queries or n_queries,
        required,
        smoke=args.smoke,
    )


if __name__ == "__main__":
    sys.exit(main())
