#!/usr/bin/env python3
"""Native vs scipy linear-algebra backend on the large-dense-cohort
workload, with a hard parity + speedup gate.

The native backend exists for exactly one regime: stacked products of
a *dense-ish* chain against a wide block of object rows, where turning
the CSR sweep into a contiguous (JIT or BLAS) GEMM beats scipy's
general sparse kernels.  This benchmark builds that regime on purpose
-- one dense random chain (density ~0.25-0.3), a cohort of hundreds of
point-observed objects, the object-based stacked sweep forced, filters
off -- and requires:

1. **parity**: native values within 1e-12 of the scipy backend on
   every object (it is an optimisation, never a semantics change);
2. **speedup**: native >= 1.5x over scipy on this workload, in smoke
   and full mode alike (the win comes from kernel shape, not core
   count, so the gate holds on single-core CI too).

The k-times suffix-count sweep is timed and reported as well (same
parity bar) but only the object-based gate decides the exit code.

Everything lands in ``BENCH_backends.json``;
``check_regression.py`` compares the wall times against the committed
baseline like every other benchmark.

Run:  PYTHONPATH=src python benchmarks/benchmark_backends.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro import (
    PlanOptions,
    PSTExistsQuery,
    PSTKTimesQuery,
    QueryEngine,
    SpatioTemporalWindow,
    TrajectoryDatabase,
    UncertainObject,
)
from repro.core.markov import MarkovChain
from repro.linalg import native

from _bench_result import bench_name, write_result

REQUIRED_SPEEDUP = 1.5
PARITY = 1e-12


def _dense_cohort(
    n_states: int, density: float, n_objects: int, seed: int = 42
):
    rng = np.random.default_rng(seed)
    matrix = rng.random((n_states, n_states))
    matrix *= rng.random((n_states, n_states)) < density
    matrix += np.eye(n_states) * 0.05  # no empty rows
    matrix /= matrix.sum(axis=1, keepdims=True)
    database = TrajectoryDatabase.with_chain(
        MarkovChain(sp.csr_matrix(matrix)), chain_id="dense"
    )
    for index in range(n_objects):
        database.add(
            UncertainObject.at_state(
                f"obj-{index}",
                n_states,
                int(rng.integers(0, n_states)),
                0,
                chain_id="dense",
            )
        )
    return database


def _time_backend(engine, query, options, repeats: int):
    result = engine.evaluate(query, options=options)  # warm
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = engine.evaluate(query, options=options)
        best = min(best, time.perf_counter() - started)
    return best, result


def _max_delta(reference, other) -> float:
    worst = 0.0
    for object_id, expected in reference.values.items():
        delta = np.max(
            np.abs(
                np.asarray(expected, dtype=float)
                - np.asarray(other.values[object_id], dtype=float)
            )
        )
        worst = max(worst, float(delta))
    return worst


def run(
    n_states: int,
    density: float,
    n_objects: int,
    repeats: int,
    smoke: bool,
) -> int:
    database = _dense_cohort(n_states, density, n_objects)
    engine = QueryEngine(database)
    window = SpatioTemporalWindow.from_ranges(
        10, min(60, n_states - 1), 8, 12
    )
    native.prewarm()  # the JIT compile is a startup cost, not a kernel cost
    status = native.compile_status()
    print(
        f"workload: {n_objects} objects, {n_states} states, "
        f"density {density:g}, window [10,{min(60, n_states - 1)}] x "
        f"[8,12], best of {repeats}; native mode: {status['mode']}"
    )

    base = dict(prefilter=False, bfs_prune=False, dispatch="serial")
    kernels = {
        "ob": (PSTExistsQuery(window), dict(method="ob")),
        # k-times has exactly one exact method (the Section VII
        # suffix-count sweep), so no method override is needed
        "ct": (PSTKTimesQuery(window), dict()),
    }
    seconds: Dict[str, float] = {}
    deltas: Dict[str, float] = {}
    for kernel, (query, extra) in kernels.items():
        timings = {}
        results = {}
        for backend in ("scipy", "native"):
            timings[backend], results[backend] = _time_backend(
                engine,
                query,
                PlanOptions(**base, **extra, backend=backend),
                repeats,
            )
        deltas[kernel] = _max_delta(results["scipy"], results["native"])
        seconds[f"{kernel}_scipy"] = timings["scipy"]
        seconds[f"{kernel}_native"] = timings["native"]
        print(
            f"{kernel}: scipy {timings['scipy'] * 1e3:8.1f} ms, "
            f"native {timings['native'] * 1e3:8.1f} ms "
            f"({timings['scipy'] / timings['native']:.2f}x), "
            f"max |delta| {deltas[kernel]:.2e}"
        )

    speedup = seconds["ob_scipy"] / seconds["ob_native"]
    print(
        f"gate: ob native speedup {speedup:.2f}x "
        f"(required: {REQUIRED_SPEEDUP:.1f}x), parity bar {PARITY:g}"
    )

    write_result(bench_name(__file__), {
        "kind": "standalone",
        "smoke": smoke,
        "config": {
            "n_states": n_states,
            "density": density,
            "n_objects": n_objects,
            "repeats": repeats,
            "native_mode": status["mode"],
        },
        "ob_scipy_seconds": seconds["ob_scipy"],
        "ob_native_seconds": seconds["ob_native"],
        "ct_scipy_seconds": seconds["ct_scipy"],
        "ct_native_seconds": seconds["ct_native"],
        "speedup_native_vs_scipy": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "max_abs_delta": max(deltas.values()),
    })

    failed = False
    for kernel, delta in deltas.items():
        if delta > PARITY:
            print(
                f"FAIL: {kernel} backend parity broken: {delta:.2e} "
                f"> {PARITY:g}",
                file=sys.stderr,
            )
            failed = True
    if speedup < REQUIRED_SPEEDUP:
        print(
            f"FAIL: native speedup {speedup:.2f}x below required "
            f"{REQUIRED_SPEEDUP:.1f}x",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="native vs scipy backend: parity + >=1.5x gate "
                    "on the large-dense-cohort workload"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI configuration (same gates, smaller "
             "cohort)",
    )
    parser.add_argument("--states", type=int, default=None)
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        return run(
            n_states=args.states or 600,
            density=0.25,
            n_objects=args.objects or 384,
            repeats=args.repeats or 2,
            smoke=True,
        )
    return run(
        n_states=args.states or 900,
        density=0.3,
        n_objects=args.objects or 512,
        repeats=args.repeats or 3,
        smoke=False,
    )


if __name__ == "__main__":
    sys.exit(main())
