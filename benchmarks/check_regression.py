#!/usr/bin/env python3
"""Compare fresh ``BENCH_*.json`` results against committed baselines.

CI runs every benchmark's ``--smoke`` mode, which writes one
``BENCH_<name>.json`` each; this script compares each fresh file
against the snapshot committed under ``benchmarks/baselines/`` and
fails when a benchmark's wall time regressed by more than the
tolerance (default 25%, override with
``BENCH_REGRESSION_TOLERANCE=0.4`` etc.).

The wall-time metric per file:

* standalone benchmarks -- the sum of every top-level ``*_seconds``
  number (e.g. ``streaming_seconds + replan_seconds``);
* pytest-benchmark figure suites -- the sum of per-test
  ``mean_seconds``;
* calibration -- ``elapsed_seconds``.

Files whose baseline is missing, whose ``smoke`` flag differs from
the baseline's, or whose baseline was recorded on a different
hardware class (``cpu_count`` mismatch) are reported and skipped -- a
scale or hardware change is not a regression; the gate only compares
like with like.  Refresh the committed snapshot after an intentional
perf change (or on the gating machine) with::

    python benchmarks/check_regression.py --update

Run:  python benchmarks/check_regression.py [--current-dir .]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path
from typing import List, Optional

DEFAULT_TOLERANCE = 0.25
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def wall_seconds(document: dict) -> Optional[float]:
    """The file's canonical wall-time metric (None when it has none)."""
    if document.get("kind") == "pytest-benchmark":
        means = [
            bench.get("mean_seconds")
            for bench in document.get("benchmarks", [])
        ]
        means = [m for m in means if isinstance(m, (int, float))]
        return sum(means) if means else None
    totals = [
        value
        for key, value in document.items()
        if key.endswith("_seconds") and isinstance(value, (int, float))
    ]
    return sum(totals) if totals else None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >tolerance wall-time regressions vs "
                    "benchmarks/baselines/"
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly written BENCH_*.json",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=BASELINE_DIR
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(
            os.environ.get(
                "BENCH_REGRESSION_TOLERANCE", DEFAULT_TOLERANCE
            )
        ),
        help="allowed fractional slowdown (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh results over the committed baselines "
             "instead of comparing",
    )
    args = parser.parse_args(argv)

    fresh_files = sorted(args.current_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(
            f"no BENCH_*.json under {args.current_dir}", file=sys.stderr
        )
        return 2

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in fresh_files:
            shutil.copy(path, args.baseline_dir / path.name)
            print(f"baseline updated: {path.name}")
        return 0

    regressions: List[str] = []
    compared = 0
    for path in fresh_files:
        baseline_path = args.baseline_dir / path.name
        if not baseline_path.exists():
            print(f"{path.name}: no baseline, skipped")
            continue
        fresh = json.loads(path.read_text())
        baseline = json.loads(baseline_path.read_text())
        if bool(fresh.get("smoke")) != bool(baseline.get("smoke")):
            print(
                f"{path.name}: smoke flag differs from baseline, "
                f"skipped"
            )
            continue
        fresh_cores = fresh.get("cpu_count")
        baseline_cores = baseline.get("cpu_count")
        if (
            fresh_cores is not None
            and baseline_cores is not None
            and fresh_cores != baseline_cores
        ):
            # a wall-time gate across hardware classes measures the
            # hardware, not the code: report, don't fail.  Refresh
            # the snapshot on the gating machine with --update.
            print(
                f"{path.name}: baseline from {baseline_cores}-core "
                f"machine, this one has {fresh_cores} -- "
                f"informational only"
            )
            continue
        fresh_wall = wall_seconds(fresh)
        baseline_wall = wall_seconds(baseline)
        if fresh_wall is None or baseline_wall is None:
            print(f"{path.name}: no wall-time metric, skipped")
            continue
        compared += 1
        ratio = fresh_wall / baseline_wall if baseline_wall else 1.0
        status = "ok"
        if ratio > 1.0 + args.tolerance:
            status = "REGRESSION"
            regressions.append(
                f"{path.name}: {baseline_wall:.3f}s -> "
                f"{fresh_wall:.3f}s ({ratio:.2f}x, allowed "
                f"{1.0 + args.tolerance:.2f}x)"
            )
        print(
            f"{path.name}: {baseline_wall:.3f}s -> {fresh_wall:.3f}s "
            f"({ratio:.2f}x) {status}"
        )

    if regressions:
        print(
            "wall-time regressions beyond tolerance:", file=sys.stderr
        )
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"compared {compared} benchmarks, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
