#!/usr/bin/env python3
"""Shared-memory process dispatch vs thread dispatch, plus calibration.

Two gates from the ISSUE-4 acceptance criteria:

1. **Dispatch.** A *single-chain* 2,000-object workload runs the
   stacked object-based sweep under three dispatch modes.  The sweep
   holds the GIL for every sparse product, so a thread pool cannot
   scale a single chain at all (it degenerates to one worker) -- which
   is exactly the ROADMAP gap process dispatch closes: CSR matrices
   and the stacked initial vectors are published once into
   ``multiprocessing.shared_memory`` and within-chain object shards
   run across worker processes (:mod:`repro.exec.dispatch`).  The
   script asserts 1e-12 parity of all three modes on every object and,
   **on machines with >= 4 cores**, requires the process pool to beat
   the thread pool by >= 2x.  Below 4 cores the speedup is reported
   but not gated (there is nothing to scale onto), and ``--smoke``
   never gates speedup: a tens-of-milliseconds workload measures
   dispatch overhead, not scaling -- smoke's job is parity and
   machinery coverage in CI.

2. **Calibration.** :func:`repro.exec.calibrate.calibrate` fits the
   planner's :class:`~repro.core.planner.CostModel` coefficients to
   this machine and the fitted argmin must pick the observed-fastest
   exact kernel on >= 80% of a held-out slice of the parameter grid.

Everything lands in ``BENCH_dispatch.json``.

Run:  PYTHONPATH=src python benchmarks/benchmark_dispatch.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

from repro import PlanOptions, PSTExistsQuery, QueryEngine
from repro.exec.calibrate import CalibrationConfig, calibrate
from repro.workloads.synthetic import (
    SyntheticConfig,
    make_synthetic_database,
)

from _bench_result import bench_name, write_result

REQUIRED_ACCURACY = 0.8
MIN_CORES_FOR_GATE = 4


def _time_mode(
    engine: QueryEngine,
    query: PSTExistsQuery,
    options: PlanOptions,
    repeats: int,
) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        engine.evaluate(query, options=options)
        best = min(best, time.perf_counter() - started)
    return best


def run(
    n_objects: int,
    n_states: int,
    repeats: int,
    required_speedup: Optional[float],
    smoke: bool,
) -> int:
    cores = os.cpu_count() or 1
    workers = max(2, min(8, cores))
    database = make_synthetic_database(
        SyntheticConfig(
            n_objects=n_objects, n_states=n_states, seed=13
        )
    )
    engine = QueryEngine(database)
    query = PSTExistsQuery.from_ranges(
        100, min(140, n_states - 1), 20, 25
    )
    # one chain, OB forced, filters off: every mode runs the identical
    # stacked sweep over all objects, so the *dispatch layer* is the
    # only variable being measured
    base = dict(method="ob", prefilter=False, bfs_prune=False)
    modes: Dict[str, PlanOptions] = {
        "serial": PlanOptions(**base, dispatch="serial"),
        "thread": PlanOptions(
            **base, dispatch="thread", max_workers=workers
        ),
        "process": PlanOptions(
            **base, dispatch="process", max_workers=workers
        ),
    }
    print(
        f"workload: {n_objects} objects, 1 chain, {n_states} states, "
        f"window [100,{min(140, n_states - 1)}] x [20,25], "
        f"{cores} cores, {workers} workers, best of {repeats}"
    )

    # warm both pools and the plan cache so fork/publication one-time
    # costs are amortised the way a standing service amortises them
    results = {
        name: engine.evaluate(query, options=options)
        for name, options in modes.items()
    }
    worst = 0.0
    for name in ("thread", "process"):
        for object_id in database.object_ids:
            delta = abs(
                results[name].values[object_id]
                - results["serial"].values[object_id]
            )
            worst = max(worst, delta)
    assert worst <= 1e-12, f"dispatch parity broken: {worst}"

    seconds = {
        name: _time_mode(engine, query, options, repeats)
        for name, options in modes.items()
    }
    speedup = seconds["thread"] / seconds["process"]
    for name in ("serial", "thread", "process"):
        print(f"{name:>8}: {seconds[name] * 1e3:9.1f} ms")
    gated = (
        required_speedup is not None and cores >= MIN_CORES_FOR_GATE
    )
    if gated:
        note = f"(required: {required_speedup:.1f}x)"
    elif required_speedup is None:
        note = "(smoke: parity only, speedup not gated)"
    else:
        note = f"(gate skipped: {cores} < {MIN_CORES_FOR_GATE} cores)"
    print(f"process vs thread: {speedup:5.2f}x  {note}")
    print(f"max |delta|      : {worst:.2e}")

    print("calibrating the cost model on this machine ...")
    calibration = calibrate(
        CalibrationConfig(smoke=smoke), write=False
    )
    print(
        f"held-out argmin accuracy: {calibration.accuracy:.0%} on "
        f"{calibration.n_holdout} of {calibration.n_points} grid "
        f"points (required: {REQUIRED_ACCURACY:.0%})"
    )

    write_result(bench_name(__file__), {
        "kind": "standalone",
        "smoke": smoke,
        "config": {
            "n_objects": n_objects,
            "n_states": n_states,
            "repeats": repeats,
            "cores": cores,
            "workers": workers,
        },
        "serial_seconds": seconds["serial"],
        "thread_seconds": seconds["thread"],
        "process_seconds": seconds["process"],
        "speedup_process_vs_thread": speedup,
        "required_speedup": required_speedup if gated else None,
        "max_abs_delta": worst,
        "calibration_accuracy": calibration.accuracy,
        "calibration_points": calibration.n_points,
    })

    failed = False
    if gated and speedup < required_speedup:
        print(
            f"FAIL: process speedup {speedup:.2f}x below required "
            f"{required_speedup:.1f}x",
            file=sys.stderr,
        )
        failed = True
    if calibration.accuracy < REQUIRED_ACCURACY:
        print(
            f"FAIL: calibration accuracy {calibration.accuracy:.0%} "
            f"below required {REQUIRED_ACCURACY:.0%}",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="shared-memory process dispatch vs thread "
                    "dispatch + cost-model calibration"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI configuration (parity + calibration "
             "gates only; speedup reported, not gated)",
    )
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--states", type=int, default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        return run(
            n_objects=args.objects or 400,
            n_states=args.states or 1_500,
            repeats=2,
            required_speedup=None,
            smoke=True,
        )
    return run(
        n_objects=args.objects or 2_000,
        n_states=args.states or 4_000,
        repeats=3,
        required_speedup=2.0,
        smoke=False,
    )


if __name__ == "__main__":
    sys.exit(main())
