"""Shared fixtures for the benchmark suite.

Databases are built once per session and cached by configuration, so the
benchmark timings measure *query processing*, not data generation.

Scales are laptop-sized: large enough that the paper's orderings
(MC >> OB >> QB, growth trends across parameters) are visible, small
enough that the full suite finishes in minutes.  The ``repro-bench`` CLI
runs the full-resolution sweeps.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.query import SpatioTemporalWindow
from repro.database.uncertain_db import TrajectoryDatabase
from repro.workloads.road_network import (
    make_road_database,
    munich_like_config,
    north_america_like_config,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    make_synthetic_database,
)

from _bench_result import smoke_mode

_CACHE: Dict[Tuple, TrajectoryDatabase] = {}

# CI ("smoke") caps: large enough to execute every code path, small
# enough that the whole figure suite stays at seconds scale
_SMOKE_MAX_OBJECTS = 40
_SMOKE_MAX_STATES = 1_500


def synthetic_database(
    n_objects: int = 200,
    n_states: int = 5_000,
    state_spread: int = 5,
    max_step: int = 40,
    seed: int = 1234,
) -> TrajectoryDatabase:
    """A cached synthetic database for the given Table I parameters.

    In smoke mode (``REPRO_BENCH_SMOKE=1``, set by the ``--smoke``
    entry points) object and state counts are capped so the pytest
    figure suites double as fast CI trajectory checks.
    """
    if smoke_mode():
        n_objects = min(n_objects, _SMOKE_MAX_OBJECTS)
        n_states = min(n_states, _SMOKE_MAX_STATES)
    key = ("synthetic", n_objects, n_states, state_spread, max_step, seed)
    if key not in _CACHE:
        _CACHE[key] = make_synthetic_database(
            SyntheticConfig(
                n_objects=n_objects,
                n_states=n_states,
                state_spread=state_spread,
                max_step=max_step,
                seed=seed,
            )
        )
    return _CACHE[key]


def road_database(which: str, n_objects: int = 200) -> TrajectoryDatabase:
    """A cached Munich-like or NA-like road database (scaled down)."""
    scale = 0.01 if smoke_mode() else 0.03
    if smoke_mode():
        n_objects = min(n_objects, _SMOKE_MAX_OBJECTS)
    key = ("road", which, n_objects, scale)
    if key not in _CACHE:
        if which == "munich":
            config = munich_like_config(scale=scale, seed=4)
        elif which == "north_america":
            config = north_america_like_config(scale=scale, seed=5)
        else:
            raise ValueError(f"unknown road network {which!r}")
        _CACHE[key] = make_road_database(config, n_objects=n_objects)
    return _CACHE[key]


def paper_window(n_states: int) -> SpatioTemporalWindow:
    """The paper's default window clipped to the state space."""
    return SpatioTemporalWindow.from_ranges(
        100, min(120, n_states - 1), 20, 25
    )
