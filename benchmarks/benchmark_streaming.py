#!/usr/bin/env python3
"""Incremental sliding-window monitoring vs re-planning every tick.

The workload is the ISSUE-3 acceptance scenario: a standing window
query sliding one stride per tick over a Table I database while
objects arrive, are re-sighted, and depart
(:mod:`repro.workloads.monitoring`).  Two strategies answer every
tick over the *same* evolving database:

* ``replan``    -- a batch :class:`~repro.core.engine.QueryEngine`
  evaluates each tick's window from scratch (cost-based planning,
  filter stages, and the PR-1/PR-2 caches all enabled -- this is the
  strongest non-incremental baseline, not a strawman);
* ``streaming`` -- one :meth:`~repro.core.engine.QueryEngine.watch`
  standing query whose tick extends the previous backward vectors by
  ``stride`` sparse products (:mod:`repro.core.streaming`) and patches
  its candidate state from the database's mutation journal.

The script asserts that

* both strategies agree to 1e-12 on every object at every tick,
* the streaming path is at least 5x faster per tick over the whole
  run (1.5x in ``--smoke`` mode, which runs a seconds-scale
  configuration for CI),

and writes the measured trajectory to ``BENCH_streaming.json``.

Run:  PYTHONPATH=src python benchmarks/benchmark_streaming.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro import PSTExistsQuery, QueryEngine
from repro.workloads.monitoring import (
    MonitoringConfig,
    make_monitoring_workload,
)

from _bench_result import bench_name, write_result


def run(
    config: MonitoringConfig,
    required_speedup: float,
    smoke: bool = False,
) -> int:
    workload = make_monitoring_workload(config)
    database = workload.database
    print(
        f"workload: {config.n_objects} objects over "
        f"{config.n_chains} chains, {config.n_states} states, "
        f"{config.n_ticks} ticks x stride {config.stride}, "
        f"window [{config.window_low},{config.window_high}] x "
        f"[{config.window_lead},"
        f"{config.window_lead + config.window_duration - 1}], "
        f"+{config.arrivals_per_tick}/~{config.resightings_per_tick}"
        f"/-{config.departures_per_tick} objects per tick"
    )

    streaming_engine = QueryEngine(database)
    standing = streaming_engine.watch(
        workload.query, stride=config.stride
    )
    replan_engine = QueryEngine(database)

    streaming_seconds = 0.0
    replan_seconds = 0.0
    worst = 0.0
    tick_log = []
    for tick in range(config.n_ticks):
        workload.apply(tick)

        started = time.perf_counter()
        incremental = standing.tick()
        streaming_tick = time.perf_counter() - started
        streaming_seconds += streaming_tick

        window = workload.window_at(tick)
        started = time.perf_counter()
        replanned = replan_engine.evaluate(PSTExistsQuery(window))
        replan_tick = time.perf_counter() - started
        replan_seconds += replan_tick

        delta = max(
            abs(incremental.values[object_id]
                - replanned.values[object_id])
            for object_id in database.object_ids
        )
        worst = max(worst, delta)
        assert delta <= 1e-12, (
            f"tick {tick}: streaming/replan mismatch {delta}"
        )
        tick_log.append({
            "tick": tick,
            "streaming_seconds": streaming_tick,
            "replan_seconds": replan_tick,
            "objects": len(database),
        })

    speedup = replan_seconds / streaming_seconds
    per_tick_stream = streaming_seconds / config.n_ticks
    per_tick_replan = replan_seconds / config.n_ticks
    print(standing.explain().describe())
    print(f"replan from scratch : {replan_seconds:8.3f} s total "
          f"({per_tick_replan * 1e3:8.2f} ms/tick)")
    print(f"streaming           : {streaming_seconds:8.3f} s total "
          f"({per_tick_stream * 1e3:8.2f} ms/tick)")
    print(f"per-tick speedup    : {speedup:8.1f}x  "
          f"(required: {required_speedup:.1f}x)")
    print(f"max |delta|         : {worst:.2e}")

    write_result(bench_name(__file__), {
        "kind": "standalone",
        "smoke": smoke,
        "config": {
            "n_objects": config.n_objects,
            "n_states": config.n_states,
            "n_chains": config.n_chains,
            "n_ticks": config.n_ticks,
            "stride": config.stride,
        },
        "replan_seconds": replan_seconds,
        "streaming_seconds": streaming_seconds,
        "speedup": speedup,
        "required_speedup": required_speedup,
        "max_abs_delta": worst,
        "ticks": tick_log,
    })

    if speedup < required_speedup:
        print(
            f"FAIL: speedup {speedup:.1f}x below required "
            f"{required_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="incremental sliding-window monitoring vs "
                    "re-planning every tick"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI configuration (speedup must only "
             "be >= 1.5x)",
    )
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--states", type=int, default=None)
    parser.add_argument("--ticks", type=int, default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        config = MonitoringConfig(
            n_objects=args.objects or 300,
            n_states=args.states or 4_000,
            n_chains=2,
            n_ticks=args.ticks or 12,
            stride=1,
            window_lead=15,
            window_duration=5,
            arrivals_per_tick=2,
            resightings_per_tick=1,
            departures_per_tick=1,
            seed=3,
        )
        required = 1.5
    else:
        config = MonitoringConfig(
            n_objects=args.objects or 2_000,
            n_states=args.states or 20_000,
            n_chains=2,
            n_ticks=args.ticks or 40,
            stride=1,
            window_lead=25,
            window_duration=6,
            arrivals_per_tick=2,
            resightings_per_tick=1,
            departures_per_tick=1,
            seed=3,
        )
        required = 5.0
    return run(config, required, smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(main())
