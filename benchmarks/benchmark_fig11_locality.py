"""Figure 11: the impact of the locality parameters.

Paper setup -- Fig. 11(a): ``max_step`` sweeps 10..100 (the width of the
window of states reachable in one transition); Fig. 11(b):
``state_spread`` sweeps 2..20 (the out-degree of each state).

Expected shape (paper): both OB and QB scale *at most linearly* with
either parameter (denser / wider transition matrices mean proportionally
more work per vector-matrix product).
"""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEngine
from repro.core.query import PSTExistsQuery

from _bench_fixtures import paper_window, synthetic_database

MAX_STEPS = [20, 60, 100]
STATE_SPREADS = [4, 12, 20]
N_OBJECTS = 100
N_STATES = 5_000


def _run(database, method):
    engine = QueryEngine(database)
    query = PSTExistsQuery(paper_window(database.n_states))
    return engine.evaluate(query, method=method)


@pytest.mark.parametrize("max_step", MAX_STEPS)
def test_fig11a_max_step_ob(benchmark, max_step):
    database = synthetic_database(
        n_objects=N_OBJECTS, n_states=N_STATES, max_step=max_step
    )
    benchmark.pedantic(
        lambda: _run(database, "ob"), rounds=1, iterations=1
    )


@pytest.mark.parametrize("max_step", MAX_STEPS)
def test_fig11a_max_step_qb(benchmark, max_step):
    database = synthetic_database(
        n_objects=N_OBJECTS, n_states=N_STATES, max_step=max_step
    )
    benchmark.pedantic(
        lambda: _run(database, "qb"), rounds=3, iterations=1
    )


@pytest.mark.parametrize("state_spread", STATE_SPREADS)
def test_fig11b_state_spread_ob(benchmark, state_spread):
    database = synthetic_database(
        n_objects=N_OBJECTS,
        n_states=N_STATES,
        state_spread=state_spread,
    )
    benchmark.pedantic(
        lambda: _run(database, "ob"), rounds=1, iterations=1
    )


@pytest.mark.parametrize("state_spread", STATE_SPREADS)
def test_fig11b_state_spread_qb(benchmark, state_spread):
    database = synthetic_database(
        n_objects=N_OBJECTS,
        n_states=N_STATES,
        state_spread=state_spread,
    )
    benchmark.pedantic(
        lambda: _run(database, "qb"), rounds=3, iterations=1
    )


if __name__ == "__main__":
    import sys

    from _bench_result import pytest_smoke_main

    sys.exit(pytest_smoke_main(__file__))
