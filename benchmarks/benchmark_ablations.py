"""Ablation benchmarks for the design choices listed in DESIGN.md.

* backend: scipy CSR vs the pure-Python CSR on identical OB evaluations;
* pruning: OB with and without the reachability filter on a workload
  where most objects provably cannot reach the window;
* k-times algorithms: the memory-efficient C(t) sweep vs the blocked
  matrices (OB) vs the blocked QB evaluator;
* early termination: thresholded OB vs full OB.
"""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEngine
from repro.core.ktimes import (
    ktimes_distribution,
    ktimes_distribution_blocked,
)
from repro.core.object_based import ob_exists_probability
from repro.core.query import PSTExistsQuery, SpatioTemporalWindow
from repro.core.query_based import QueryBasedKTimesEvaluator

from _bench_fixtures import paper_window, synthetic_database


@pytest.mark.parametrize("backend", ["scipy", "pure"])
def test_ablation_backend(benchmark, backend):
    database = synthetic_database(n_objects=10, n_states=800)
    chain = database.chain()
    window = paper_window(database.n_states)
    initials = [obj.initial.distribution for obj in database]

    def run():
        return [
            ob_exists_probability(chain, initial, window, backend=backend)
            for initial in initials
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(0.0 <= p <= 1.0 for p in results)


@pytest.mark.parametrize("prune", [False, True], ids=["plain", "pruned"])
def test_ablation_pruning(benchmark, prune):
    # the window sits at the low end of the line; uniformly placed
    # objects mostly cannot reach it within the horizon
    database = synthetic_database(n_objects=150, n_states=8_000)
    engine = QueryEngine(database)
    query = PSTExistsQuery(
        SpatioTemporalWindow.from_ranges(100, 120, 10, 15)
    )
    result = benchmark.pedantic(
        lambda: engine.evaluate(query, method="ob", prune=prune),
        rounds=1,
        iterations=1,
    )
    assert len(result) == len(database)


@pytest.mark.parametrize(
    "algorithm", ["ct", "blocked_ob", "blocked_qb"]
)
def test_ablation_ktimes_algorithms(benchmark, algorithm):
    database = synthetic_database(n_objects=20, n_states=1_500)
    chain = database.chain()
    window = SpatioTemporalWindow.from_ranges(100, 120, 10, 15)
    initials = [obj.initial.distribution for obj in database]

    if algorithm == "ct":
        run = lambda: [
            ktimes_distribution(chain, initial, window)
            for initial in initials
        ]
    elif algorithm == "blocked_ob":
        run = lambda: [
            ktimes_distribution_blocked(chain, initial, window)
            for initial in initials
        ]
    else:
        def run():
            evaluator = QueryBasedKTimesEvaluator(chain, window)
            return [
                evaluator.distribution(initial) for initial in initials
            ]

    distributions = benchmark.pedantic(run, rounds=1, iterations=1)
    for distribution in distributions:
        assert distribution.sum() == pytest.approx(1.0, abs=1e-9)


@pytest.mark.parametrize(
    "strategy", ["per-object", "clustered"]
)
def test_ablation_clustered_threshold(benchmark, strategy):
    """Section V-C cluster pruning vs per-object evaluation.

    A database whose objects follow many *similar* chains (two
    families).  The clustered processor decides most clusters from
    interval bounds; the baseline evaluates every object exactly.
    """
    import numpy as np

    from repro.core.markov import MarkovChain
    from repro.database.clustering import ClusteredThresholdProcessor
    from repro.database.uncertain_db import TrajectoryDatabase
    from repro.database.objects import UncertainObject
    from repro.workloads.synthetic import make_line_chain

    rng = np.random.default_rng(5)
    n_states = 400
    base_a = make_line_chain(n_states, seed=50)
    base_b = make_line_chain(n_states, seed=51)
    database = TrajectoryDatabase(n_states)

    def jitter(base):
        dense = base.to_dense()
        for i in range(n_states):
            row = dense[i]
            mask = row > 0
            row = np.clip(
                row + rng.uniform(-0.02, 0.02, size=n_states) * mask,
                1e-6, None,
            ) * mask
            dense[i] = row / row.sum()
        return MarkovChain(dense)

    for index in range(6):
        database.register_chain(f"a{index}", jitter(base_a))
        database.register_chain(f"b{index}", jitter(base_b))
    counter = 0
    for chain_id in database.chain_ids:
        for _ in range(5):
            database.add(
                UncertainObject.at_state(
                    f"o{counter}", n_states,
                    int(rng.integers(0, n_states)),
                    chain_id=chain_id,
                )
            )
            counter += 1
    window = SpatioTemporalWindow.from_ranges(100, 120, 10, 15)
    threshold = 0.3

    if strategy == "clustered":
        processor = ClusteredThresholdProcessor(database, radius=0.1)

        def run():
            return processor.evaluate(window, threshold).accepted
    else:
        def run():
            accepted = []
            for obj in database:
                chain = database.chain(obj.chain_id)
                p = ob_exists_probability(
                    chain, obj.initial.distribution, window
                )
                if p >= threshold:
                    accepted.append(obj.object_id)
            return tuple(sorted(accepted))

    accepted = benchmark.pedantic(run, rounds=1, iterations=1)
    assert isinstance(accepted, tuple)


@pytest.mark.parametrize(
    "threshold", [None, 0.1], ids=["full", "early-stop"]
)
def test_ablation_early_termination(benchmark, threshold):
    """Thresholded OB on objects observed *near* the window.

    Early termination only pays off when P(TOP) actually crosses the
    threshold before t_end; objects starting close to the region do so
    within a few transitions, letting the thresholded variant skip the
    remaining horizon.
    """
    from repro.core.distribution import StateDistribution

    database = synthetic_database(n_objects=10, n_states=3_000)
    chain = database.chain()
    window = paper_window(database.n_states)
    initials = [
        StateDistribution.uniform(
            database.n_states, range(95 + offset, 100 + offset)
        )
        for offset in range(0, 40, 2)
    ]

    def run():
        return [
            ob_exists_probability(
                chain, initial, window, stop_at_probability=threshold
            )
            for initial in initials
        ]

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(0.0 <= p <= 1.0 for p in results)


if __name__ == "__main__":
    import sys

    from _bench_result import pytest_smoke_main

    sys.exit(pytest_smoke_main(__file__))
