"""Figure 8: query runtime vs the number of states.

Paper setup -- Fig. 8(a): |D| = 1,000 objects, |S| = 2,000..18,000, the
default window [100,120] x [20,25], Monte-Carlo with 100 samples per
object.  Fig. 8(b): |D| = 100,000 over |S| = 10,000..90,000, OB vs QB.

Expected shape (paper): MC is orders of magnitude slower than OB, which
is in turn much slower than QB; all three grow with |S|.
"""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEngine
from repro.core.query import PSTExistsQuery

from _bench_fixtures import paper_window, synthetic_database

FIG8A_STATES = [2_000, 6_000, 10_000]
FIG8B_STATES = [10_000, 30_000]


def _run(database, method, n_samples=100):
    engine = QueryEngine(database)
    query = PSTExistsQuery(paper_window(database.n_states))
    return engine.evaluate(
        query, method=method, n_samples=n_samples, seed=0
    )


@pytest.mark.parametrize("n_states", FIG8A_STATES)
def test_fig8a_mc(benchmark, n_states):
    database = synthetic_database(n_objects=100, n_states=n_states)
    result = benchmark.pedantic(
        lambda: _run(database, "mc"), rounds=1, iterations=1
    )
    assert len(result) == len(database)


@pytest.mark.parametrize("n_states", FIG8A_STATES)
def test_fig8a_ob(benchmark, n_states):
    database = synthetic_database(n_objects=100, n_states=n_states)
    result = benchmark.pedantic(
        lambda: _run(database, "ob"), rounds=2, iterations=1
    )
    assert len(result) == len(database)


@pytest.mark.parametrize("n_states", FIG8A_STATES)
def test_fig8a_qb(benchmark, n_states):
    database = synthetic_database(n_objects=100, n_states=n_states)
    result = benchmark.pedantic(
        lambda: _run(database, "qb"), rounds=3, iterations=1
    )
    assert len(result) == len(database)


@pytest.mark.parametrize("n_states", FIG8B_STATES)
def test_fig8b_ob(benchmark, n_states):
    database = synthetic_database(n_objects=400, n_states=n_states)
    result = benchmark.pedantic(
        lambda: _run(database, "ob"), rounds=1, iterations=1
    )
    assert len(result) == len(database)


@pytest.mark.parametrize("n_states", FIG8B_STATES)
def test_fig8b_qb(benchmark, n_states):
    database = synthetic_database(n_objects=400, n_states=n_states)
    result = benchmark.pedantic(
        lambda: _run(database, "qb"), rounds=3, iterations=1
    )
    assert len(result) == len(database)


if __name__ == "__main__":
    import sys

    from _bench_result import pytest_smoke_main

    sys.exit(pytest_smoke_main(__file__))
