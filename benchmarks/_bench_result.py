"""Benchmark result persistence shared by all benchmark entry points.

Every benchmark run -- standalone scripts and the pytest-benchmark
figure suites alike -- writes a ``BENCH_<name>.json`` file so CI can
upload the numbers as artifacts and the benchmark trajectory is a
queryable series instead of scrollback.  The output directory defaults
to the current working directory and is overridden with the
``BENCH_OUTPUT_DIR`` environment variable.

Two entry points:

* :func:`write_result` -- called by the standalone scripts
  (``benchmark_batching.py``, ``benchmark_planner.py``,
  ``benchmark_streaming.py``) with their measured payload;
* :func:`pytest_smoke_main` -- turns a pytest-benchmark figure suite
  into a standalone ``python benchmarks/benchmark_figXX.py [--smoke]``
  command: it re-runs the file under pytest with
  ``--benchmark-json``, compacts the per-test statistics, and writes
  the same ``BENCH_<name>.json`` shape.  ``--smoke`` exports
  ``REPRO_BENCH_SMOKE=1``, which ``_bench_fixtures`` and the figure
  modules use to shrink databases and parameter sweeps to CI scale.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

SMOKE_ENV = "REPRO_BENCH_SMOKE"
OUTPUT_ENV = "BENCH_OUTPUT_DIR"


def smoke_mode() -> bool:
    """Whether benchmarks should run at CI ("smoke") scale."""
    return os.environ.get(SMOKE_ENV, "") not in ("", "0")


def bench_name(file: str) -> str:
    """``benchmarks/benchmark_fig08_states.py`` -> ``fig08_states``."""
    stem = Path(file).stem
    prefix = "benchmark_"
    return stem[len(prefix):] if stem.startswith(prefix) else stem


def write_result(name: str, payload: Dict[str, Any]) -> Path:
    """Persist one benchmark run as ``BENCH_<name>.json``."""
    out_dir = Path(os.environ.get(OUTPUT_ENV, "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "name": name,
        "unix_time": time.time(),
        "smoke": smoke_mode(),
        # lets check_regression.py refuse to gate wall times across
        # different hardware classes
        "cpu_count": os.cpu_count(),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    print(f"wrote {path}")
    return path


def _compact_benchmark_json(raw: Dict[str, Any]) -> List[Dict[str, Any]]:
    compact = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        compact.append({
            "test": bench.get("fullname", bench.get("name")),
            "mean_seconds": stats.get("mean"),
            "stddev_seconds": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        })
    return compact


def pytest_smoke_main(
    file: str, argv: Optional[List[str]] = None
) -> int:
    """Standalone entry point for the pytest-benchmark figure suites."""
    parser = argparse.ArgumentParser(
        description=f"run {Path(file).name} and write a "
                    f"BENCH_*.json result file",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI scale: shrink databases/sweeps via "
             f"{SMOKE_ENV}=1 before collection",
    )
    args = parser.parse_args(argv)
    env = dict(os.environ)
    if args.smoke:
        env[SMOKE_ENV] = "1"
    name = bench_name(file)
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(file),
                "-q",
                "-p",
                "no:cacheprovider",
                f"--benchmark-json={raw_path}",
            ],
            env=env,
        )
        raw = (
            json.loads(raw_path.read_text())
            if raw_path.exists()
            else {}
        )
    write_result(
        name,
        {
            "kind": "pytest-benchmark",
            "smoke": args.smoke,
            "exit_status": completed.returncode,
            "benchmarks": _compact_benchmark_json(raw),
        },
    )
    return completed.returncode
