#!/usr/bin/env python3
"""Batched + dispatched k-times vs the per-object seed path.

Until the KTimesSweep refactor, Definition 4 (PST-k-times) was the
last query semantics served by a per-object kernel: the pipeline
looped :func:`repro.core.ktimes.ktimes_distribution` over every
surviving object, paying one full C(t) sweep -- ``horizon`` sparse
products on a ``(|T_q|+1, |S|)`` block -- per object.  The refactor
stacks all objects of a chain into one
``(|S|, n_objects * (|T_q|+1))`` cohort driven by one sparse product
and one cohort-wide column shift per timestep
(:data:`~repro.exec.operators.KTIMES_SWEEP`), shardable across the
shared-memory process pool of :mod:`repro.exec.dispatch`.

This script times both on a single-chain 2,000-object workload (the
ISSUE-5 acceptance scenario), asserts 1e-12 parity on every object's
full count distribution, and requires the batched engine path to beat
the per-object loop by >= 3x.  ``--smoke`` runs a seconds-scale
configuration gating parity only (a tens-of-milliseconds workload
measures constant overheads, not the sweep).

Everything lands in ``BENCH_ktimes.json``.

Run:  PYTHONPATH=src python benchmarks/benchmark_ktimes.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro import (
    PlanOptions,
    PSTKTimesQuery,
    QueryEngine,
    ktimes_distribution,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    make_synthetic_database,
)

from _bench_result import bench_name, write_result

#: filters off: both paths evaluate every object, so the comparison
#: isolates the kernel + dispatch layers the refactor changed
ALL_OBJECTS = PlanOptions(prefilter=False, bfs_prune=False)


def per_object_seed_path(database, query) -> dict:
    """The pre-refactor kernel: one C(t) sweep per object."""
    values = {}
    for obj in database:
        chain = database.chain(obj.chain_id)
        values[obj.object_id] = ktimes_distribution(
            chain,
            obj.initial.distribution,
            query.window,
            start_time=obj.initial.time,
        )
    return values


def run(
    n_objects: int,
    n_states: int,
    repeats: int,
    required_speedup: Optional[float],
    smoke: bool,
) -> int:
    database = make_synthetic_database(
        SyntheticConfig(
            n_objects=n_objects, n_states=n_states, seed=17
        )
    )
    engine = QueryEngine(database)
    query = PSTKTimesQuery.from_ranges(
        100, min(140, n_states - 1), 20, 25
    )
    print(
        f"workload: {n_objects} objects, 1 chain, {n_states} states, "
        f"window [100,{min(140, n_states - 1)}] x [20,25] "
        f"(|T_q|+1 = {query.window.duration + 1} count rows), "
        f"best of {repeats}"
    )

    # warm the engine (plan cache, pools) and check parity first
    batched = engine.evaluate(query, options=ALL_OBJECTS)
    reference = per_object_seed_path(database, query)
    worst = 0.0
    for object_id, expected in reference.items():
        delta = float(np.max(np.abs(
            np.asarray(batched.values[object_id]) - expected
        )))
        worst = max(worst, delta)
    assert worst <= 1e-12, f"k-times parity broken: {worst}"

    def timed(callable_) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - started)
        return best

    batched_seconds = timed(
        lambda: engine.evaluate(query, options=ALL_OBJECTS)
    )
    per_object_seconds = timed(
        lambda: per_object_seed_path(database, query)
    )
    speedup = per_object_seconds / batched_seconds
    evaluate_stage = batched.plan.stages[-1].detail

    print(f"per-object: {per_object_seconds * 1e3:9.1f} ms")
    print(f"batched   : {batched_seconds * 1e3:9.1f} ms "
          f"({evaluate_stage})")
    gate = (
        f"(required: {required_speedup:.1f}x)"
        if required_speedup is not None
        else "(smoke: parity only, speedup not gated)"
    )
    print(f"speedup   : {speedup:9.1f}x  {gate}")
    print(f"max |delta|: {worst:.2e}")

    write_result(bench_name(__file__), {
        "kind": "standalone",
        "smoke": smoke,
        "config": {
            "n_objects": n_objects,
            "n_states": n_states,
            "repeats": repeats,
        },
        "per_object_seconds": per_object_seconds,
        "batched_seconds": batched_seconds,
        "speedup_batched_vs_per_object": speedup,
        "required_speedup": required_speedup,
        "max_abs_delta": worst,
        "evaluate_stage": evaluate_stage,
    })

    if required_speedup is not None and speedup < required_speedup:
        print(
            f"FAIL: batched k-times speedup {speedup:.1f}x below "
            f"required {required_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="batched + dispatched k-times evaluation vs the "
                    "per-object C(t) seed path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI configuration (parity gated, speedup "
             "reported only)",
    )
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--states", type=int, default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        return run(
            n_objects=args.objects or 300,
            n_states=args.states or 600,
            repeats=2,
            required_speedup=None,
            smoke=True,
        )
    return run(
        n_objects=args.objects or 2_000,
        n_states=args.states or 1_500,
        repeats=3,
        required_speedup=3.0,
        smoke=False,
    )


if __name__ == "__main__":
    sys.exit(main())
