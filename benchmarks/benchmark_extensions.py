"""Benchmarks for the extension features built on the paper's machinery.

Not paper figures -- these measure the cost profile of the add-on query
classes so a downstream user knows what to expect:

* first-passage distributions vs horizon (one absorbing sweep);
* Lahar-style sequence queries vs pattern complexity (product chain);
* smoothing (forward-backward) vs number of observations;
* snapshot nearest-neighbour queries vs database size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distribution import StateDistribution
from repro.core.nearest_neighbor import nearest_neighbor_probabilities
from repro.core.observation import Observation, ObservationSet
from repro.core.sequence import Pattern, sequence_probability
from repro.core.smoothing import posterior_marginals
from repro.core.temporal import first_passage_distribution
from repro.database.uncertain_db import TrajectoryDatabase
from repro.database.objects import UncertainObject
from repro.core.state_space import LineStateSpace
from repro.workloads.synthetic import make_line_chain

from _bench_result import smoke_mode

N_STATES = 800 if smoke_mode() else 2_000


@pytest.fixture(scope="module")
def chain():
    return make_line_chain(N_STATES, seed=77)


@pytest.mark.parametrize("horizon", [10, 30, 50])
def test_first_passage_vs_horizon(benchmark, chain, horizon):
    initial = StateDistribution.uniform(N_STATES, range(500, 505))
    result = benchmark.pedantic(
        lambda: first_passage_distribution(
            chain, initial, range(100, 121), horizon
        ),
        rounds=2,
        iterations=1,
    )
    assert result.pmf.sum() + result.never_probability == (
        pytest.approx(1.0)
    )


@pytest.mark.parametrize(
    "complexity", ["atom", "visit-twice", "alternating"]
)
def test_sequence_query_vs_pattern(benchmark, chain, complexity):
    initial = StateDistribution.uniform(N_STATES, range(100, 105))
    region = Pattern.states(range(90, 130))
    outside = Pattern.states(
        set(range(N_STATES)) - set(range(90, 130))
    )
    if complexity == "atom":
        pattern = Pattern.any().star().then(region).then(
            Pattern.any().star()
        )
    elif complexity == "visit-twice":
        pattern = (
            Pattern.any().star()
            .then(region).then(outside.plus()).then(region)
            .then(Pattern.any().star())
        )
    else:
        pattern = region.then(outside).repeat(5)
    probability = benchmark.pedantic(
        lambda: sequence_probability(chain, initial, pattern, length=10),
        rounds=2,
        iterations=1,
    )
    assert 0.0 <= probability <= 1.0


@pytest.mark.parametrize("n_observations", [2, 4, 8])
def test_smoothing_vs_observations(benchmark, chain, n_observations):
    rng = np.random.default_rng(0)
    horizon = 24
    times = np.linspace(0, horizon, n_observations, dtype=int)
    observations = ObservationSet(
        tuple(
            Observation.uniform(
                int(time),
                N_STATES,
                range(
                    500 + int(time) * 3, 505 + int(time) * 3
                ),
            )
            for time in sorted(set(int(t) for t in times))
        )
    )
    marginals = benchmark.pedantic(
        lambda: posterior_marginals(chain, observations, horizon=horizon),
        rounds=2,
        iterations=1,
    )
    assert len(marginals) == horizon + 1


@pytest.mark.parametrize("n_objects", [10, 40])
def test_nearest_neighbor_vs_database_size(benchmark, n_objects):
    n_states = 300
    chain = make_line_chain(n_states, seed=78)
    database = TrajectoryDatabase.with_chain(
        chain, state_space=LineStateSpace(n_states)
    )
    rng = np.random.default_rng(1)
    for index in range(n_objects):
        database.add(
            UncertainObject.at_state(
                f"o{index}", n_states, int(rng.integers(0, n_states))
            )
        )
    result = benchmark.pedantic(
        lambda: nearest_neighbor_probabilities(
            database, (150.0,), time=4
        ),
        rounds=1,
        iterations=1,
    )
    assert sum(result.values()) == pytest.approx(1.0)


if __name__ == "__main__":
    import sys

    from _bench_result import pytest_smoke_main

    sys.exit(pytest_smoke_main(__file__))
