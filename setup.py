"""Package metadata for the ICDE 2012 reproduction.

Installable with plain ``pip install -e .`` (exercised in CI); the
runtime dependencies are the two scientific-stack packages the linear
algebra backends build on, and the ``repro-bench`` console script runs
the paper's evaluation suite (see ``repro/bench``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-emrich-icde12",
    version="1.0.0",
    description=(
        "Reproduction of 'Querying Uncertain Spatio-Temporal Data' "
        "(Emrich et al., ICDE 2012): exact PST queries over Markov-"
        "chain trajectory models, with batched, planned, and "
        "streaming execution"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-bench = repro.bench.cli:main",
        ],
    },
)
