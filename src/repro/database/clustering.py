"""Chain clustering and cluster-level threshold-query pruning.

Implements the Section V-C strategy for databases whose objects follow
*different* Markov chains: similar chains are clustered greedily, each
cluster is summarised by an :class:`~repro.core.intervals.IntervalMarkovChain`,
and a probabilistic threshold query first evaluates cheap cluster-level
bounds:

* cluster upper bound below the threshold  -> reject all members,
* cluster lower bound at/above the threshold -> accept all members,
* otherwise refine member objects individually (exact QB/OB evaluation).

"Only clusters which cannot be decided as a whole need their objects to
be considered individually." -- Section V-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import QueryError, ValidationError
from repro.core.intervals import (
    IntervalMarkovChain,
    bound_exists_probability,
)
from repro.core.markov import MarkovChain
from repro.core.object_based import ob_exists_probability
from repro.core.query import SpatioTemporalWindow
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = [
    "ChainCluster",
    "cluster_chains",
    "ClusteredThresholdProcessor",
    "ThresholdAnswer",
]


@dataclass
class ChainCluster:
    """A set of chain ids summarised by one interval chain.

    Attributes:
        chain_ids: member chain identifiers.
        interval: the enclosing interval Markov chain.
    """

    chain_ids: List[str]
    interval: IntervalMarkovChain


def _chain_distance(a: MarkovChain, b: MarkovChain) -> float:
    """Max-norm distance between two transition matrices."""
    difference = (a.matrix - b.matrix).tocoo()
    return float(np.abs(difference.data).max()) if difference.nnz else 0.0


def cluster_chains(
    chains: Dict[str, MarkovChain], radius: float = 0.2
) -> List[ChainCluster]:
    """Greedy leader clustering of chains by max-norm distance.

    Each chain joins the first cluster whose leader is within ``radius``;
    otherwise it starts a new cluster.  Deterministic given the (sorted)
    id order.

    Args:
        chains: ``{chain_id: chain}`` over a common state count.
        radius: max-norm joining threshold; 0 clusters only identical
            chains.
    """
    if not chains:
        raise ValidationError("need at least one chain to cluster")
    if radius < 0:
        raise ValidationError(f"radius must be non-negative, got {radius}")
    leaders: List[Tuple[MarkovChain, List[str], List[MarkovChain]]] = []
    for chain_id in sorted(chains):
        chain = chains[chain_id]
        for leader, ids, members in leaders:
            if (
                leader.n_states == chain.n_states
                and _chain_distance(leader, chain) <= radius
            ):
                ids.append(chain_id)
                members.append(chain)
                break
        else:
            leaders.append((chain, [chain_id], [chain]))
    return [
        ChainCluster(ids, IntervalMarkovChain.from_chains(members))
        for _, ids, members in leaders
    ]


@dataclass(frozen=True)
class ThresholdAnswer:
    """The outcome of a clustered threshold query.

    Attributes:
        accepted: object ids with ``P_exists >= threshold``.
        probabilities: exact probabilities for objects that needed
            refinement (accepted-by-bound objects are absent).
        clusters_decided: clusters resolved by bounds alone.
        clusters_refined: clusters whose members were evaluated exactly.
    """

    accepted: Tuple[str, ...]
    probabilities: Dict[str, float]
    clusters_decided: int
    clusters_refined: int


class ClusteredThresholdProcessor:
    """Threshold PST-exists queries over per-class-chain databases.

    Args:
        database: a database whose objects may follow different chains.
        radius: clustering radius forwarded to :func:`cluster_chains`.
    """

    def __init__(
        self, database: TrajectoryDatabase, radius: float = 0.2
    ) -> None:
        self.database = database
        chains = {
            chain_id: database.chain(chain_id)
            for chain_id in database.chain_ids
        }
        self.clusters = cluster_chains(chains, radius=radius)
        self._cluster_of: Dict[str, ChainCluster] = {}
        for cluster in self.clusters:
            for chain_id in cluster.chain_ids:
                self._cluster_of[chain_id] = cluster

    def evaluate(
        self,
        window: SpatioTemporalWindow,
        threshold: float,
    ) -> ThresholdAnswer:
        """Objects whose PST-exists probability reaches ``threshold``.

        Cluster bounds decide whole clusters where possible; undecided
        clusters fall back to exact per-object evaluation.
        """
        if not (0.0 < threshold <= 1.0):
            raise QueryError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        window.validate_for(self.database.n_states)
        accepted: List[str] = []
        probabilities: Dict[str, float] = {}
        decided = 0
        refined = 0
        groups = self.database.objects_by_chain()
        for cluster in self.clusters:
            members = [
                obj
                for chain_id in cluster.chain_ids
                for obj in groups.get(chain_id, [])
            ]
            if not members:
                continue
            bounds = [
                bound_exists_probability(
                    cluster.interval,
                    obj.initial.distribution,
                    window,
                    start_time=obj.initial.time,
                )
                for obj in members
            ]
            uppers = [b[1] for b in bounds]
            lowers = [b[0] for b in bounds]
            if max(uppers) < threshold:
                decided += 1  # whole cluster rejected
                continue
            if min(lowers) >= threshold:
                decided += 1  # whole cluster accepted
                accepted.extend(obj.object_id for obj in members)
                continue
            refined += 1
            for obj, (low, high) in zip(members, bounds):
                if high < threshold:
                    continue  # per-object bound still prunes
                if low >= threshold:
                    accepted.append(obj.object_id)
                    continue
                chain = self.database.chain(obj.chain_id)
                probability = ob_exists_probability(
                    chain,
                    obj.initial.distribution,
                    window,
                    start_time=obj.initial.time,
                )
                probabilities[obj.object_id] = probability
                if probability >= threshold:
                    accepted.append(obj.object_id)
        return ThresholdAnswer(
            accepted=tuple(sorted(accepted)),
            probabilities=probabilities,
            clusters_decided=decided,
            clusters_refined=refined,
        )
