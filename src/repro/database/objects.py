"""The uncertain-object record stored in a trajectory database."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.observation import Observation, ObservationSet

__all__ = ["UncertainObject"]

DEFAULT_CHAIN = "default"


@dataclass(frozen=True)
class UncertainObject:
    """One uncertain spatio-temporal object.

    Attributes:
        object_id: unique identifier within a database.
        observations: the object's (time-ordered) observations; the first
            one anchors all query processing.
        chain_id: the identifier of the Markov chain the object follows.
            The paper's query-based approach assumes a shared model
            ("all icebergs are subject to the same currents"); databases
            with several object classes (buses, trucks, cars -- Section
            V-C) register one chain per class and tag objects accordingly.
    """

    object_id: str
    observations: ObservationSet
    chain_id: str = DEFAULT_CHAIN

    def __post_init__(self) -> None:
        if not str(self.object_id):
            raise ValidationError("object_id must be non-empty")

    @classmethod
    def at_state(
        cls,
        object_id: str,
        n_states: int,
        state: int,
        time: int = 0,
        chain_id: str = DEFAULT_CHAIN,
    ) -> "UncertainObject":
        """An object precisely observed at one state."""
        return cls(
            object_id=str(object_id),
            observations=ObservationSet.single(
                Observation.precise(time, n_states, state)
            ),
            chain_id=chain_id,
        )

    @classmethod
    def with_distribution(
        cls,
        object_id: str,
        distribution: StateDistribution,
        time: int = 0,
        chain_id: str = DEFAULT_CHAIN,
    ) -> "UncertainObject":
        """An object with an uncertain observation (a pdf over states)."""
        return cls(
            object_id=str(object_id),
            observations=ObservationSet.single(
                Observation(time, distribution)
            ),
            chain_id=chain_id,
        )

    @property
    def initial(self) -> Observation:
        """The earliest observation."""
        return self.observations.first

    @property
    def n_states(self) -> int:
        """State count of the object's distributions."""
        return self.observations.n_states

    def has_multiple_observations(self) -> bool:
        """Whether Section VI processing (interpolation) is required."""
        return len(self.observations) > 1
