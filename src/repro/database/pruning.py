"""Reachability-based object pruning.

Section V-C of the paper notes that object-based processing can skip
objects that cannot possibly reach the query region within the query
horizon (the ``S_reach`` argument), and sketches cluster-level pruning.
This module provides the corresponding filter step:

* :class:`ReachabilityPruner` -- exact pruning by breadth-first search on
  the chain's transition structure (an object survives the filter iff some
  state of the query region is reachable from its observation support
  within ``t_end - t_obs`` steps);
* a fast *geometric* pre-filter for state spaces with positions: an R-tree
  over observation locations is probed with the query region's MBR
  expanded by ``max_displacement x dt`` -- objects outside cannot reach
  the region, objects inside proceed to the exact BFS check.

Both filters are *safe*: they never discard an object with non-zero
result probability (verified against brute force in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ValidationError
from repro.core.markov import MarkovChain
from repro.core.query import SpatioTemporalWindow
from repro.core.state_space import StateSpace
from repro.database.objects import UncertainObject
from repro.database.rtree import Rect, RTree
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = ["ReachabilityPruner", "GeometricPrefilter"]


class ReachabilityPruner:
    """Exact BFS reachability filter over a database.

    Rather than running one forward BFS per object, the pruner runs a
    single *reverse* BFS from the query region per chain: it labels every
    state with the minimum number of transitions needed to enter the
    region.  An object observed at ``t_obs`` survives iff some state of
    its observation support is labelled ``<= t_end - t_obs``.  This makes
    the filter cost one BFS plus ``O(|support|)`` per object.

    Args:
        database: the trajectory database to filter.
    """

    def __init__(self, database: TrajectoryDatabase) -> None:
        self.database = database
        self._levels_cache: Dict[
            Tuple[str, frozenset, int], np.ndarray
        ] = {}

    def _min_steps_to_region(
        self, chain_id: str, window: SpatioTemporalWindow, max_depth: int
    ) -> np.ndarray:
        """Per-state minimum steps into the region (reverse BFS, capped).

        Cached by chain *content* (fingerprint), so a pruner held across
        queries -- the engine keeps one per lifetime -- stays correct
        even when a chain id is re-registered with a new model.
        """
        chain = self.database.chain(chain_id)
        key = (chain.fingerprint(), window.region, max_depth)
        cached = self._levels_cache.get(key)
        if cached is not None:
            return cached
        transpose = chain.transpose_matrix()
        levels = np.full(chain.n_states, np.iinfo(np.int64).max,
                         dtype=np.int64)
        frontier = sorted(window.region)
        levels[frontier] = 0
        depth = 0
        indptr, indices = transpose.indptr, transpose.indices
        while frontier and depth < max_depth:
            depth += 1
            nxt = []
            for state in frontier:
                for predecessor in indices[
                    indptr[state]:indptr[state + 1]
                ]:
                    if levels[predecessor] > depth:
                        levels[predecessor] = depth
                        nxt.append(int(predecessor))
            frontier = nxt
        self._levels_cache[key] = levels
        return levels

    def can_satisfy(
        self, obj: UncertainObject, window: SpatioTemporalWindow
    ) -> bool:
        """Whether ``obj`` has non-zero probability to intersect the window.

        An object observed at time ``t_obs`` can only be inside the region
        at a query time ``t`` if the region is reachable from its
        observation support in exactly ``t - t_obs`` steps; checking
        reachability *within* ``t_end - t_obs`` steps is a safe relaxation
        (it can only keep extra objects, never drop valid ones).
        """
        start = obj.initial
        horizon = window.t_end - start.time
        if horizon < 0:
            return False
        levels = self._min_steps_to_region(
            obj.chain_id, window, horizon
        )
        return any(
            levels[state] <= horizon
            for state in start.distribution.support()
        )

    def candidates(
        self, window: SpatioTemporalWindow
    ) -> List[UncertainObject]:
        """Objects surviving the filter, in database order."""
        return [
            obj
            for obj in self.database
            if self.can_satisfy(obj, window)
        ]

    def pruned_fraction(self, window: SpatioTemporalWindow) -> float:
        """Fraction of database objects eliminated by the filter."""
        total = len(self.database)
        if total == 0:
            return 0.0
        kept = len(self.candidates(window))
        return 1.0 - kept / total


@dataclass
class GeometricPrefilter:
    """R-tree pre-filter using a per-step displacement bound.

    Args:
        database: the database to filter (its state space must provide
            positions).
        max_displacement: an upper bound on the geometric distance an
            object can travel in one transition.  For the paper's
            synthetic generator this is ``max_step / 2`` (an object in
            state ``s_i`` reaches at most ``s_{i +/- max_step/2}``);
            :meth:`~repro.database.uncertain_db.TrajectoryDatabase.chain_displacement_bound`
            derives the exact bound from any chain's transition
            structure.
        chain_id: restrict the index to objects of one chain.  Chains
            have different locality (different ``max_displacement``), so
            the query pipeline keeps one tree per chain group.
    """

    database: TrajectoryDatabase
    max_displacement: float
    chain_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_displacement < 0:
            raise ValidationError(
                f"max_displacement must be non-negative, "
                f"got {self.max_displacement}"
            )
        space = self.database.state_space
        if space is None:
            raise ValidationError(
                "geometric pre-filtering needs a state space with positions"
            )
        self._space = space
        self._tree = self._build_tree()

    def _location(self, state: int) -> Tuple[float, float]:
        location = self._space.location_of(state)
        if len(location) == 1:  # 1-D spaces embed on the x-axis
            return (float(location[0]), 0.0)
        return (float(location[0]), float(location[1]))

    def _build_tree(self) -> RTree:
        entries = []
        for obj in self.database:
            if (
                self.chain_id is not None
                and obj.chain_id != self.chain_id
            ):
                continue
            rects = [
                Rect.point(*self._location(state))
                for state in obj.initial.distribution.support()
            ]
            entries.append((Rect.union_all(rects), obj.object_id))
        return RTree(entries)

    def region_mbr(self, region: Iterable[int]) -> Rect:
        """MBR of the query region's state locations."""
        rects = [Rect.point(*self._location(state)) for state in region]
        if not rects:
            raise ValidationError("query region is empty")
        return Rect.union_all(rects)

    def candidate_ids(
        self, window: SpatioTemporalWindow, start_time: int = 0
    ) -> List[str]:
        """Object ids that *may* reach the window (superset guarantee).

        The query MBR is expanded by ``max_displacement x dt`` with
        ``dt = t_end - start_time``; any object whose observation MBR
        misses the expanded rectangle provably cannot intersect the window.
        """
        return self.probe(window, start_time)[0]

    def probe(
        self, window: SpatioTemporalWindow, start_time: int = 0
    ) -> Tuple[List[str], int]:
        """Like :meth:`candidate_ids`, plus the R-tree nodes visited.

        The visit count goes into the pipeline's EXPLAIN report.
        """
        dt = window.t_end - start_time
        if dt < 0:
            return [], 0
        probe = self.region_mbr(window.region).expand(
            self.max_displacement * dt
        )
        items, visited = self._tree.search_with_stats(probe)
        return [str(item) for item in items], visited

    def candidates(
        self, window: SpatioTemporalWindow, start_time: int = 0
    ) -> List[UncertainObject]:
        """Surviving objects (database order)."""
        surviving = set(self.candidate_ids(window, start_time))
        return [
            obj for obj in self.database if obj.object_id in surviving
        ]
