"""Reachability-based object pruning.

Section V-C of the paper notes that object-based processing can skip
objects that cannot possibly reach the query region within the query
horizon (the ``S_reach`` argument), and sketches cluster-level pruning.
This module provides the corresponding filter step:

* :class:`ReachabilityPruner` -- exact pruning by breadth-first search on
  the chain's transition structure (an object survives the filter iff some
  state of the query region is reachable from its observation support
  within ``t_end - t_obs`` steps);
* a fast *geometric* pre-filter for state spaces with positions: an R-tree
  over observation locations is probed with the query region's MBR
  expanded by ``max_displacement x dt`` -- objects outside cannot reach
  the region, objects inside proceed to the exact BFS check.

Both filters are *safe*: they never discard an object with non-zero
result probability (verified against brute force in the test suite).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.errors import ValidationError
from repro.core.query import SpatioTemporalWindow
from repro.database.objects import UncertainObject
from repro.database.rtree import Rect, RTree
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = [
    "ReachabilityPruner",
    "GeometricPrefilter",
    "reachability_levels",
]


def reachability_levels(
    chain,
    region: FrozenSet[int],
    depth_needed: int,
    cache: Dict[Tuple[str, FrozenSet[int]], list],
) -> np.ndarray:
    """Database-free resumable reverse-BFS labelling of one chain.

    Labels every state with the minimum number of transitions needed
    to enter ``region``, extended at least to ``depth_needed`` levels.
    ``cache`` is a mutable mapping keyed by ``(fingerprint, region)``
    holding ``[levels, reached depth, frontier]`` -- callers that hold
    a cache across queries (the pruner, shard workers) resume the
    labelling instead of re-running it.  Unreachable states are
    labelled ``np.iinfo(np.int64).max``.  Not thread-safe by itself;
    callers serialise access to ``cache`` (the pruner holds a lock,
    shard workers are single-threaded).
    """
    key = (chain.fingerprint(), region)
    unreachable = np.iinfo(np.int64).max
    state = cache.get(key)
    if state is None:
        levels = np.full(chain.n_states, unreachable, dtype=np.int64)
        frontier = np.zeros(chain.n_states, dtype=bool)
        frontier[sorted(region)] = True
        levels[frontier] = 0
        state = cache[key] = [levels, 0, frontier]
    levels, depth, frontier = state
    matrix = chain.matrix
    while depth < depth_needed and frontier.any():
        depth += 1
        reached = matrix @ frontier.astype(np.float64)
        frontier = (reached > 0.0) & (levels == unreachable)
        levels[frontier] = depth
    state[1], state[2] = depth, frontier
    return levels


class ReachabilityPruner:
    """Exact BFS reachability filter over a database.

    Rather than running one forward BFS per object, the pruner runs a
    single *reverse* BFS from the query region per chain: it labels every
    state with the minimum number of transitions needed to enter the
    region.  An object observed at ``t_obs`` survives iff some state of
    its observation support is labelled ``<= t_end - t_obs``.  This makes
    the filter cost one BFS plus ``O(|support|)`` per object.

    Args:
        database: the trajectory database to filter.
    """

    def __init__(self, database: TrajectoryDatabase) -> None:
        self.database = database
        # resumable reverse-BFS state per (chain content, region):
        # [levels, reached depth, current frontier mask].  Extensions
        # happen under the lock; lock-free readers are safe because a
        # label <= d is final once the reached depth is >= d, and
        # deeper labels only ever *replace* the unreachable sentinel
        # (both of which a depth-d reader rejects equally).
        self._bfs_state: Dict[Tuple[str, FrozenSet[int]], list] = {}
        self._lock = threading.Lock()

    def _levels_to_depth(
        self, chain_id: str, region: FrozenSet[int], depth_needed: int
    ) -> np.ndarray:
        """Per-state minimum steps into the region, labelled at least
        to ``depth_needed`` (reverse BFS, *resumable*).

        The BFS frontier is cached per ``(chain, region)`` and extended
        on demand: a one-shot query pays only its own horizon, while a
        sliding window whose horizon grows each tick extends the same
        labelling by one level per slid timestamp instead of re-running
        the search.  Each level costs one C-speed spmv (a state is a
        predecessor of the frontier iff the chain's sparse product
        against the frontier indicator is positive).  Keyed by chain
        *content* (fingerprint), so a pruner held across queries -- the
        engine keeps one per lifetime -- stays correct even when a
        chain id is re-registered with a new model.
        """
        chain = self.database.chain(chain_id)
        key = (chain.fingerprint(), region)
        state = self._bfs_state.get(key)
        if state is not None and (
            state[1] >= depth_needed or not state[2].any()
        ):
            return state[0]  # already labelled far enough (lock-free)
        with self._lock:
            return reachability_levels(
                chain, region, depth_needed, self._bfs_state
            )

    def min_levels(
        self, chain_id: str, region: Iterable[int]
    ) -> np.ndarray:
        """Per-state minimum steps into ``region``, uncapped.

        The fully-extended labelling serves *every* horizon: a state
        can enter the region within ``h`` steps iff
        ``levels[state] <= h``.  Sliding-window monitoring re-issues
        the same region with a growing horizon every tick, so the
        uncapped labelling turns the per-tick reachability filter into
        an O(1) threshold comparison per object
        (see :mod:`repro.core.streaming`).  Unreachable states are
        labelled ``np.iinfo(np.int64).max``.
        """
        chain = self.database.chain(chain_id)
        frozen = frozenset(int(s) for s in region)
        return self._levels_to_depth(chain_id, frozen, chain.n_states)

    def min_steps(
        self, obj: UncertainObject, region: Iterable[int]
    ) -> int:
        """Fewest transitions from ``obj``'s observation support into
        ``region`` (``np.iinfo(np.int64).max`` when unreachable).

        ``obj`` first intersects a window over ``region`` no earlier
        than ``obj.initial.time + min_steps``; streaming candidate
        tracking activates it at exactly that tick.
        """
        levels = self.min_levels(obj.chain_id, region)
        support = list(obj.initial.distribution.support())
        return int(levels[support].min()) if support else int(
            np.iinfo(np.int64).max
        )

    def can_satisfy(
        self, obj: UncertainObject, window: SpatioTemporalWindow
    ) -> bool:
        """Whether ``obj`` has non-zero probability to intersect the window.

        An object observed at time ``t_obs`` can only be inside the region
        at a query time ``t`` if the region is reachable from its
        observation support in exactly ``t - t_obs`` steps; checking
        reachability *within* ``t_end - t_obs`` steps is a safe relaxation
        (it can only keep extra objects, never drop valid ones).
        """
        start = obj.initial
        horizon = window.t_end - start.time
        if horizon < 0:
            return False
        # the resumable labelling is shared per (chain, region): this
        # query only pays BFS levels beyond what previous (possibly
        # shorter-horizon) queries already explored
        levels = self._levels_to_depth(
            obj.chain_id, window.region, horizon
        )
        return any(
            levels[state] <= horizon
            for state in start.distribution.support()
        )

    def candidates(
        self, window: SpatioTemporalWindow
    ) -> List[UncertainObject]:
        """Objects surviving the filter, in database order."""
        return [
            obj
            for obj in self.database
            if self.can_satisfy(obj, window)
        ]

    def pruned_fraction(self, window: SpatioTemporalWindow) -> float:
        """Fraction of database objects eliminated by the filter."""
        total = len(self.database)
        if total == 0:
            return 0.0
        kept = len(self.candidates(window))
        return 1.0 - kept / total


@dataclass
class GeometricPrefilter:
    """R-tree pre-filter using a per-step displacement bound.

    Args:
        database: the database to filter (its state space must provide
            positions).
        max_displacement: an upper bound on the geometric distance an
            object can travel in one transition.  For the paper's
            synthetic generator this is ``max_step / 2`` (an object in
            state ``s_i`` reaches at most ``s_{i +/- max_step/2}``);
            :meth:`~repro.database.uncertain_db.TrajectoryDatabase.chain_displacement_bound`
            derives the exact bound from any chain's transition
            structure.
        chain_id: restrict the index to objects of one chain.  Chains
            have different locality (different ``max_displacement``), so
            the query pipeline keeps one tree per chain group.
    """

    database: TrajectoryDatabase
    max_displacement: float
    chain_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_displacement < 0:
            raise ValidationError(
                f"max_displacement must be non-negative, "
                f"got {self.max_displacement}"
            )
        space = self.database.state_space
        if space is None:
            raise ValidationError(
                "geometric pre-filtering needs a state space with positions"
            )
        self._space = space
        # online mutations land in a linear overflow buffer (inserts)
        # and a tombstone set (deletions); the STR tree is re-packed
        # only when the buffer grows past _rebuild_threshold, so a
        # monitoring stream of appends costs O(buffer) per probe
        # instead of an O(n log n) bulk load per mutation
        self._extras: List[Tuple[Rect, str]] = []
        self._tombstones: Set[str] = set()
        self._tree = self._build_tree()

    def _location(self, state: int) -> Tuple[float, float]:
        location = self._space.location_of(state)
        if len(location) == 1:  # 1-D spaces embed on the x-axis
            return (float(location[0]), 0.0)
        return (float(location[0]), float(location[1]))

    def _build_tree(self) -> RTree:
        entries = []
        for obj in self.database:
            if (
                self.chain_id is not None
                and obj.chain_id != self.chain_id
            ):
                continue
            entries.append((self._object_rect(obj), obj.object_id))
        return RTree(entries)

    def _object_rect(self, obj: UncertainObject) -> Rect:
        rects = [
            Rect.point(*self._location(state))
            for state in obj.initial.distribution.support()
        ]
        return Rect.union_all(rects)

    @property
    def _rebuild_threshold(self) -> int:
        return max(32, len(self._tree) // 4)

    def insert_object(self, obj: UncertainObject) -> None:
        """Index a new (or re-anchored) object incrementally.

        The entry goes into the overflow buffer; the STR tree is only
        re-packed once the buffer exceeds a quarter of the tree (the
        point where linear buffer scans start rivalling tree descent).
        """
        if self.chain_id is not None and obj.chain_id != self.chain_id:
            return
        self._extras.append((self._object_rect(obj), obj.object_id))
        if (
            len(self._extras) + len(self._tombstones)
            > self._rebuild_threshold
        ):
            self.rebuild()

    def remove_object(self, object_id: str) -> None:
        """Drop an object from the index (tombstone until re-pack)."""
        self._extras = [
            entry for entry in self._extras if entry[1] != object_id
        ]
        self._tombstones.add(str(object_id))
        if (
            len(self._extras) + len(self._tombstones)
            > self._rebuild_threshold
        ):
            self.rebuild()  # removal-heavy streams must not accumulate

    def rebuild(self) -> None:
        """Re-pack the STR tree from the database and clear patches."""
        self._extras = []
        self._tombstones = set()
        self._tree = self._build_tree()

    def region_mbr(self, region: Iterable[int]) -> Rect:
        """MBR of the query region's state locations."""
        rects = [Rect.point(*self._location(state)) for state in region]
        if not rects:
            raise ValidationError("query region is empty")
        return Rect.union_all(rects)

    def candidate_ids(
        self, window: SpatioTemporalWindow, start_time: int = 0
    ) -> List[str]:
        """Object ids that *may* reach the window (superset guarantee).

        The query MBR is expanded by ``max_displacement x dt`` with
        ``dt = t_end - start_time``; any object whose observation MBR
        misses the expanded rectangle provably cannot intersect the window.
        """
        return self.probe(window, start_time)[0]

    def probe(
        self, window: SpatioTemporalWindow, start_time: int = 0
    ) -> Tuple[List[str], int]:
        """Like :meth:`candidate_ids`, plus the R-tree nodes visited.

        The visit count goes into the pipeline's EXPLAIN report.
        """
        dt = window.t_end - start_time
        if dt < 0:
            return [], 0
        probe = self.region_mbr(window.region).expand(
            self.max_displacement * dt
        )
        items, visited = self._tree.search_with_stats(probe)
        results = [
            str(item)
            for item in items
            if str(item) not in self._tombstones
        ]
        for rect, object_id in self._extras:
            if rect.intersects(probe):
                results.append(object_id)
        return results, visited

    def candidates(
        self, window: SpatioTemporalWindow, start_time: int = 0
    ) -> List[UncertainObject]:
        """Surviving objects (database order)."""
        surviving = set(self.candidate_ids(window, start_time))
        return [
            obj for obj in self.database if obj.object_id in surviving
        ]
