"""The trajectory database: uncertain objects over shared Markov chains.

A :class:`TrajectoryDatabase` holds

* an optional :class:`~repro.core.state_space.StateSpace` giving geometric
  meaning to state indices,
* one or more named Markov chains (one per object class, Section V-C),
* any number of :class:`~repro.database.objects.UncertainObject` records.

All consistency checks (matching state counts, known chain ids, unique
object ids) happen at insertion time so query processing can assume a
well-formed database.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from dataclasses import dataclass, replace

from repro.core.distribution import StateDistribution
from repro.core.errors import StateSpaceError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.observation import Observation, ObservationSet
from repro.core.state_space import StateSpace
from repro.database.objects import DEFAULT_CHAIN, UncertainObject

if TYPE_CHECKING:  # avoid a circular import with database.pruning
    from repro.database.pruning import GeometricPrefilter

__all__ = ["TrajectoryDatabase", "DatabaseChange"]

# mutation-journal retention: far above any realistic tick-to-tick lag
# of a standing query, small enough that a perpetual feed stays bounded
_JOURNAL_LIMIT = 65_536


@dataclass(frozen=True)
class DatabaseChange:
    """One entry of the database's mutation journal.

    Attributes:
        version: the database version right after the mutation.
        op: ``"add"``, ``"remove"``, ``"observe"`` (an observation was
            appended to an existing object) or ``"chain"`` (a chain was
            registered or replaced).
        object_id: the affected object (chain id for ``"chain"`` ops).
    """

    version: int
    op: str
    object_id: str


class TrajectoryDatabase:
    """A collection of uncertain spatio-temporal objects.

    Args:
        n_states: number of states of every chain and object in the
            database.
        state_space: optional geometric state space; when given its size
            must equal ``n_states``.
    """

    def __init__(
        self, n_states: int, state_space: Optional[StateSpace] = None
    ) -> None:
        if n_states <= 0:
            raise ValidationError(
                f"n_states must be positive, got {n_states}"
            )
        if state_space is not None and state_space.n_states != n_states:
            raise ValidationError(
                f"state space has {state_space.n_states} states, "
                f"database declared {n_states}"
            )
        self.n_states = int(n_states)
        self.state_space = state_space
        self._chains: Dict[str, MarkovChain] = {}
        self._objects: Dict[str, UncertainObject] = {}
        # lazy geometry metadata for the filter-refinement pipeline
        self._positions: Optional[np.ndarray] = None
        self._positions_known = False
        self._displacement_bounds: Dict[str, Optional[float]] = {}
        self._prefilters: Dict[str, Optional["GeometricPrefilter"]] = {}
        # mutation journal: streaming consumers sync against `version`.
        # Bounded: a long-running feed must not accumulate memory, so
        # the oldest entries are dropped past _JOURNAL_LIMIT and
        # consumers that fell further behind are told to resync.
        self._version = 0
        self._journal: List[DatabaseChange] = []
        self._journal_dropped = 0

    @classmethod
    def with_chain(
        cls,
        chain: MarkovChain,
        state_space: Optional[StateSpace] = None,
        chain_id: str = DEFAULT_CHAIN,
    ) -> "TrajectoryDatabase":
        """Database with a single shared chain (the common case)."""
        database = cls(chain.n_states, state_space)
        database.register_chain(chain_id, chain)
        return database

    # ------------------------------------------------------------------
    # chains
    # ------------------------------------------------------------------
    def register_chain(self, chain_id: str, chain: MarkovChain) -> None:
        """Register (or replace) the chain for an object class."""
        if chain.n_states != self.n_states:
            raise ValidationError(
                f"chain over {chain.n_states} states, database over "
                f"{self.n_states}"
            )
        self._chains[str(chain_id)] = chain
        # the displacement bound depends on the chain's transitions
        self._displacement_bounds.pop(str(chain_id), None)
        self._prefilters.pop(str(chain_id), None)
        self._record("chain", str(chain_id))

    def chain(self, chain_id: str = DEFAULT_CHAIN) -> MarkovChain:
        """The chain registered under ``chain_id``."""
        try:
            return self._chains[chain_id]
        except KeyError:
            raise ValidationError(
                f"no chain registered under {chain_id!r}; known: "
                f"{sorted(self._chains)}"
            ) from None

    @property
    def chain_ids(self) -> List[str]:
        """All registered chain identifiers, sorted."""
        return sorted(self._chains)

    # ------------------------------------------------------------------
    # objects
    # ------------------------------------------------------------------
    def add(self, obj: UncertainObject) -> None:
        """Insert an object; validates chain id, state count, unique id."""
        if obj.object_id in self._objects:
            raise ValidationError(
                f"duplicate object id {obj.object_id!r}"
            )
        if obj.chain_id not in self._chains:
            raise ValidationError(
                f"object {obj.object_id!r} references unknown chain "
                f"{obj.chain_id!r}"
            )
        if obj.n_states != self.n_states:
            raise ValidationError(
                f"object {obj.object_id!r} is over {obj.n_states} states, "
                f"database over {self.n_states}"
            )
        self._objects[obj.object_id] = obj
        prefilter = self._prefilters.get(obj.chain_id)
        if prefilter is not None:  # patch the built index, don't rebuild
            prefilter.insert_object(obj)
        self._record("add", obj.object_id)

    def add_all(self, objects: Sequence[UncertainObject]) -> None:
        """Insert several objects."""
        for obj in objects:
            self.add(obj)

    def get(self, object_id: str) -> UncertainObject:
        """Fetch an object by id."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise ValidationError(
                f"unknown object id {object_id!r}"
            ) from None

    def remove(self, object_id: str) -> UncertainObject:
        """Delete and return an object."""
        obj = self.get(object_id)
        del self._objects[object_id]
        prefilter = self._prefilters.get(obj.chain_id)
        if prefilter is not None:
            prefilter.remove_object(object_id)
        self._record("remove", object_id)
        return obj

    def append_observation(
        self,
        object_id: str,
        observation: Observation,
        chain_id: str = DEFAULT_CHAIN,
    ) -> UncertainObject:
        """Record a new (later) observation of an object, online.

        The monitoring entry point: a sighting arriving mid-stream is
        folded into the database *incrementally* -- the per-chain R-tree
        prefilter, displacement bounds and reachability labellings are
        patched or left untouched rather than rebuilt (appending to an
        existing object keeps its anchoring first observation, so the
        R-tree entry is already correct; chain-level caches do not
        depend on objects at all).

        Args:
            object_id: an existing object (the observation is appended
                to its observation set, making it a Section VI
                multi-observation object) or a new id (a fresh
                single-observation object enters the database).
            observation: the new sighting; for existing objects its
                timestamp must differ from all previous ones.
            chain_id: chain for objects entering the database (ignored
                for existing objects).

        Returns:
            The inserted or updated (immutable) object record.
        """
        if observation.n_states != self.n_states:
            raise ValidationError(
                f"observation over {observation.n_states} states, "
                f"database over {self.n_states}"
            )
        existing = self._objects.get(object_id)
        if existing is None:
            obj = UncertainObject(
                object_id=str(object_id),
                observations=ObservationSet.single(observation),
                chain_id=chain_id,
            )
            self.add(obj)
            return obj
        updated = replace(
            existing,
            observations=ObservationSet(
                existing.observations.observations + (observation,)
            ),
        )
        self._objects[object_id] = updated
        if updated.initial.time != existing.initial.time:
            # a backfilled earlier sighting moves the R-tree anchor
            prefilter = self._prefilters.get(updated.chain_id)
            if prefilter is not None:
                prefilter.remove_object(object_id)
                prefilter.insert_object(updated)
        self._record("observe", object_id)
        return updated

    # ------------------------------------------------------------------
    # mutation journal (streaming consumers)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter, bumped by every mutation."""
        return self._version

    def changes_since(
        self, version: int
    ) -> Optional[List[DatabaseChange]]:
        """Journal entries strictly after ``version``, oldest first.

        Standing queries (:mod:`repro.core.streaming`) poll this per
        tick to patch their incremental state instead of re-reading
        the whole database.  Returns ``None`` when the bounded journal
        no longer reaches back to ``version`` (the consumer fell more
        than ``_JOURNAL_LIMIT`` mutations behind) -- the caller must
        then resync from the database itself.
        """
        if version >= self._version:
            return []
        if version < self._journal_dropped:
            return None
        # entries are dense in version: the entry created as version v
        # sits at journal index v - 1 - dropped
        return self._journal[int(version) - self._journal_dropped:]

    def _record(self, op: str, object_id: str) -> None:
        self._version += 1
        self._journal.append(
            DatabaseChange(self._version, op, object_id)
        )
        if len(self._journal) > _JOURNAL_LIMIT:
            excess = len(self._journal) - _JOURNAL_LIMIT
            del self._journal[:excess]
            self._journal_dropped += excess

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects.values())

    @property
    def object_ids(self) -> List[str]:
        """All object ids in insertion order."""
        return list(self._objects)

    def objects_by_chain(self) -> Dict[str, List[UncertainObject]]:
        """Group objects by the chain they follow (for QB batching)."""
        groups: Dict[str, List[UncertainObject]] = {}
        for obj in self._objects.values():
            groups.setdefault(obj.chain_id, []).append(obj)
        return groups

    def initial_distributions(
        self, chain_id: Optional[str] = None
    ) -> List[Tuple[str, StateDistribution]]:
        """``(object_id, first-observation distribution)`` pairs."""
        return [
            (obj.object_id, obj.initial.distribution)
            for obj in self._objects.values()
            if chain_id is None or obj.chain_id == chain_id
        ]

    # ------------------------------------------------------------------
    # lazy geometry metadata (filter-refinement pipeline)
    # ------------------------------------------------------------------
    def state_positions(self) -> Optional[np.ndarray]:
        """``(n_states, d)`` coordinates of every state, built lazily.

        ``None`` when the database has no state space or the space
        cannot place its states (e.g. a road graph loaded without node
        positions) -- the geometric pre-filter is then unavailable and
        the pipeline falls back to BFS pruning alone.
        """
        if not self._positions_known:
            self._positions_known = True
            if self.state_space is not None:
                try:
                    rows = [
                        self.state_space.location_of(state)
                        for state in range(self.n_states)
                    ]
                except StateSpaceError:
                    self._positions = None
                else:
                    self._positions = np.asarray(rows, dtype=float)
        return self._positions

    def chain_displacement_bound(
        self, chain_id: str = DEFAULT_CHAIN
    ) -> Optional[float]:
        """Exact per-transition displacement bound of one chain.

        The maximum Euclidean distance between the positions of any
        connected state pair ``(i, j)`` with ``P(i -> j) > 0``: after
        ``dt`` transitions an object provably stays within
        ``bound * dt`` of its observation.  Cached per chain;
        invalidated when the chain is re-registered.  ``None`` without
        state positions.
        """
        chain_id = str(chain_id)
        if chain_id not in self._displacement_bounds:
            positions = self.state_positions()
            if positions is None:
                self._displacement_bounds[chain_id] = None
            else:
                coo = self.chain(chain_id).matrix.tocoo()
                if coo.nnz == 0:
                    self._displacement_bounds[chain_id] = 0.0
                else:
                    deltas = positions[coo.row] - positions[coo.col]
                    self._displacement_bounds[chain_id] = float(
                        np.sqrt((deltas ** 2).sum(axis=1)).max()
                    )
        return self._displacement_bounds[chain_id]

    def geometric_prefilter(
        self, chain_id: str = DEFAULT_CHAIN
    ) -> Optional["GeometricPrefilter"]:
        """The lazy per-chain R-tree pre-filter (None without geometry).

        Built on first use and kept until the object set of the chain
        or the chain itself changes, so a monitoring workload pays STR
        bulk loading once across all its queries.
        """
        from repro.database.pruning import GeometricPrefilter

        chain_id = str(chain_id)
        if chain_id not in self._prefilters:
            bound = self.chain_displacement_bound(chain_id)
            if bound is None:
                self._prefilters[chain_id] = None
            else:
                self._prefilters[chain_id] = GeometricPrefilter(
                    self, bound, chain_id=chain_id
                )
        return self._prefilters[chain_id]

    def __repr__(self) -> str:
        return (
            f"TrajectoryDatabase(n_states={self.n_states}, "
            f"objects={len(self)}, chains={self.chain_ids})"
        )
