"""The trajectory database: uncertain objects over shared Markov chains.

A :class:`TrajectoryDatabase` holds

* an optional :class:`~repro.core.state_space.StateSpace` giving geometric
  meaning to state indices,
* one or more named Markov chains (one per object class, Section V-C),
* any number of :class:`~repro.database.objects.UncertainObject` records.

All consistency checks (matching state counts, known chain ids, unique
object ids) happen at insertion time so query processing can assume a
well-formed database.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.markov import MarkovChain
from repro.core.state_space import StateSpace
from repro.database.objects import DEFAULT_CHAIN, UncertainObject

__all__ = ["TrajectoryDatabase"]


class TrajectoryDatabase:
    """A collection of uncertain spatio-temporal objects.

    Args:
        n_states: number of states of every chain and object in the
            database.
        state_space: optional geometric state space; when given its size
            must equal ``n_states``.
    """

    def __init__(
        self, n_states: int, state_space: Optional[StateSpace] = None
    ) -> None:
        if n_states <= 0:
            raise ValidationError(
                f"n_states must be positive, got {n_states}"
            )
        if state_space is not None and state_space.n_states != n_states:
            raise ValidationError(
                f"state space has {state_space.n_states} states, "
                f"database declared {n_states}"
            )
        self.n_states = int(n_states)
        self.state_space = state_space
        self._chains: Dict[str, MarkovChain] = {}
        self._objects: Dict[str, UncertainObject] = {}

    @classmethod
    def with_chain(
        cls,
        chain: MarkovChain,
        state_space: Optional[StateSpace] = None,
        chain_id: str = DEFAULT_CHAIN,
    ) -> "TrajectoryDatabase":
        """Database with a single shared chain (the common case)."""
        database = cls(chain.n_states, state_space)
        database.register_chain(chain_id, chain)
        return database

    # ------------------------------------------------------------------
    # chains
    # ------------------------------------------------------------------
    def register_chain(self, chain_id: str, chain: MarkovChain) -> None:
        """Register (or replace) the chain for an object class."""
        if chain.n_states != self.n_states:
            raise ValidationError(
                f"chain over {chain.n_states} states, database over "
                f"{self.n_states}"
            )
        self._chains[str(chain_id)] = chain

    def chain(self, chain_id: str = DEFAULT_CHAIN) -> MarkovChain:
        """The chain registered under ``chain_id``."""
        try:
            return self._chains[chain_id]
        except KeyError:
            raise ValidationError(
                f"no chain registered under {chain_id!r}; known: "
                f"{sorted(self._chains)}"
            ) from None

    @property
    def chain_ids(self) -> List[str]:
        """All registered chain identifiers, sorted."""
        return sorted(self._chains)

    # ------------------------------------------------------------------
    # objects
    # ------------------------------------------------------------------
    def add(self, obj: UncertainObject) -> None:
        """Insert an object; validates chain id, state count, unique id."""
        if obj.object_id in self._objects:
            raise ValidationError(
                f"duplicate object id {obj.object_id!r}"
            )
        if obj.chain_id not in self._chains:
            raise ValidationError(
                f"object {obj.object_id!r} references unknown chain "
                f"{obj.chain_id!r}"
            )
        if obj.n_states != self.n_states:
            raise ValidationError(
                f"object {obj.object_id!r} is over {obj.n_states} states, "
                f"database over {self.n_states}"
            )
        self._objects[obj.object_id] = obj

    def add_all(self, objects: Sequence[UncertainObject]) -> None:
        """Insert several objects."""
        for obj in objects:
            self.add(obj)

    def get(self, object_id: str) -> UncertainObject:
        """Fetch an object by id."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise ValidationError(
                f"unknown object id {object_id!r}"
            ) from None

    def remove(self, object_id: str) -> UncertainObject:
        """Delete and return an object."""
        obj = self.get(object_id)
        del self._objects[object_id]
        return obj

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects.values())

    @property
    def object_ids(self) -> List[str]:
        """All object ids in insertion order."""
        return list(self._objects)

    def objects_by_chain(self) -> Dict[str, List[UncertainObject]]:
        """Group objects by the chain they follow (for QB batching)."""
        groups: Dict[str, List[UncertainObject]] = {}
        for obj in self._objects.values():
            groups.setdefault(obj.chain_id, []).append(obj)
        return groups

    def initial_distributions(
        self, chain_id: Optional[str] = None
    ) -> List[Tuple[str, StateDistribution]]:
        """``(object_id, first-observation distribution)`` pairs."""
        return [
            (obj.object_id, obj.initial.distribution)
            for obj in self._objects.values()
            if chain_id is None or obj.chain_id == chain_id
        ]

    def __repr__(self) -> str:
        return (
            f"TrajectoryDatabase(n_states={self.n_states}, "
            f"objects={len(self)}, chains={self.chain_ids})"
        )
