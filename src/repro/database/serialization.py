"""Persistence for chains and databases.

Formats:

* a Markov chain is stored as an ``.npz`` archive of its CSR arrays
  (``indptr``, ``indices``, ``data``, ``shape``);
* a database is stored as a directory with

  - ``meta.json`` -- the schema version, state count, object records
    (observations as sparse ``{state: probability}`` maps), and the list
    of chain ids;
  - ``chain_<id>.npz`` -- one archive per registered chain.

Round-tripping is exact for the chain arrays and exact up to float64
repr for observation probabilities (JSON stores them as decimal floats;
``repr``-faithful serialisation keeps equality in practice).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np
import scipy.sparse as sp

from repro.core.distribution import StateDistribution
from repro.core.errors import SerializationError
from repro.core.markov import MarkovChain
from repro.core.observation import Observation, ObservationSet
from repro.database.objects import UncertainObject
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = [
    "save_chain",
    "load_chain",
    "save_database",
    "load_database",
]

_SCHEMA_VERSION = 1


def save_chain(chain: MarkovChain, path: Union[str, Path]) -> None:
    """Write a chain's CSR arrays to an ``.npz`` archive."""
    matrix = chain.matrix
    np.savez_compressed(
        Path(path),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
        shape=np.asarray(matrix.shape, dtype=np.int64),
    )


def load_chain(path: Union[str, Path]) -> MarkovChain:
    """Read a chain written by :func:`save_chain`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no chain archive at {path}")
    try:
        with np.load(path) as archive:
            matrix = sp.csr_matrix(
                (archive["data"], archive["indices"], archive["indptr"]),
                shape=tuple(archive["shape"]),
            )
    except (KeyError, ValueError, OSError) as error:
        raise SerializationError(
            f"corrupt chain archive at {path}: {error}"
        ) from error
    return MarkovChain(matrix)


def _observation_to_json(observation: Observation) -> Dict:
    return {
        "time": observation.time,
        "distribution": {
            str(state): probability
            for state, probability in observation.distribution.items()
        },
    }


def _observation_from_json(record: Dict, n_states: int) -> Observation:
    weights = {
        int(state): float(probability)
        for state, probability in record["distribution"].items()
    }
    return Observation(
        int(record["time"]),
        StateDistribution.from_dict(n_states, weights, normalize=True),
    )


def save_database(
    database: TrajectoryDatabase, directory: Union[str, Path]
) -> None:
    """Persist a database into ``directory`` (created if missing).

    The geometric state space is *not* persisted (it is a code-level
    construct); reload attaches none.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "schema_version": _SCHEMA_VERSION,
        "n_states": database.n_states,
        "chains": database.chain_ids,
        "objects": [
            {
                "object_id": obj.object_id,
                "chain_id": obj.chain_id,
                "observations": [
                    _observation_to_json(observation)
                    for observation in obj.observations
                ],
            }
            for obj in database
        ],
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    for chain_id in database.chain_ids:
        save_chain(
            database.chain(chain_id), directory / f"chain_{chain_id}.npz"
        )


def load_database(directory: Union[str, Path]) -> TrajectoryDatabase:
    """Reload a database written by :func:`save_database`."""
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise SerializationError(f"no database metadata at {meta_path}")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as error:
        raise SerializationError(
            f"corrupt metadata at {meta_path}: {error}"
        ) from error
    if meta.get("schema_version") != _SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {meta.get('schema_version')!r} "
            f"(this build reads version {_SCHEMA_VERSION})"
        )
    n_states = int(meta["n_states"])
    database = TrajectoryDatabase(n_states)
    for chain_id in meta["chains"]:
        database.register_chain(
            chain_id, load_chain(directory / f"chain_{chain_id}.npz")
        )
    for record in meta["objects"]:
        observations = ObservationSet(
            tuple(
                _observation_from_json(obs_record, n_states)
                for obs_record in record["observations"]
            )
        )
        database.add(
            UncertainObject(
                object_id=record["object_id"],
                observations=observations,
                chain_id=record["chain_id"],
            )
        )
    return database
