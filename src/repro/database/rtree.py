"""A static STR-packed R-tree.

The filter-refinement paradigm of uncertain query processing (Section II's
[8], and the pruning discussion in Section V-C) needs a spatial access
method over object locations.  This module implements a classic R-tree
with Sort-Tile-Recursive (STR) bulk loading:

1. entries are sorted by the x-centre and cut into vertical slabs of
   ``ceil(sqrt(n / capacity))`` tiles,
2. each slab is sorted by the y-centre and packed into nodes of at most
   ``capacity`` entries,
3. the produced nodes become the entries of the next level, recursively,
   until a single root remains.

The tree is immutable after construction (bulk-load only), which matches
its use here: databases are loaded once and queried many times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ValidationError

__all__ = ["Rect", "RTree"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (2-D MBR).

    Degenerate rectangles (points, segments) are allowed; ``min`` must not
    exceed ``max`` per axis.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValidationError(
                f"inverted rectangle ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        """The degenerate rectangle of a single point."""
        return cls(x, y, x, y)

    def intersects(self, other: "Rect") -> bool:
        """Whether the two (closed) rectangles overlap."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains(self, other: "Rect") -> bool:
        """Whether ``other`` lies fully inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def union(self, other: "Rect") -> "Rect":
        """The minimum bounding rectangle of both."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expand(self, margin: float) -> "Rect":
        """Grow the rectangle by ``margin`` on every side.

        Used by the pruning layer: an object observed inside ``r`` can,
        after ``dt`` steps of at most ``v`` distance each, be anywhere in
        ``r.expand(v * dt)``.
        """
        if margin < 0:
            raise ValidationError(f"margin must be non-negative, got {margin}")
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    @property
    def area(self) -> float:
        """Area (zero for degenerate rectangles)."""
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    @property
    def center(self) -> Tuple[float, float]:
        """The rectangle's centre point."""
        return (
            0.5 * (self.min_x + self.max_x),
            0.5 * (self.min_y + self.max_y),
        )

    @staticmethod
    def union_all(rects: Sequence["Rect"]) -> "Rect":
        """MBR of a non-empty sequence of rectangles."""
        if not rects:
            raise ValidationError("union_all of zero rectangles")
        result = rects[0]
        for rect in rects[1:]:
            result = result.union(rect)
        return result


class _Node:
    """Internal R-tree node: an MBR plus children or leaf entries."""

    __slots__ = ("mbr", "children", "entries")

    def __init__(
        self,
        mbr: Rect,
        children: Optional[List["_Node"]] = None,
        entries: Optional[List[Tuple[Rect, object]]] = None,
    ) -> None:
        self.mbr = mbr
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class RTree:
    """A bulk-loaded, read-only R-tree over ``(Rect, item)`` entries.

    Args:
        entries: the indexed rectangles with their payloads.
        capacity: maximum entries per node (fan-out), default 16.
    """

    def __init__(
        self,
        entries: Iterable[Tuple[Rect, object]],
        capacity: int = 16,
    ) -> None:
        if capacity < 2:
            raise ValidationError(
                f"node capacity must be at least 2, got {capacity}"
            )
        self.capacity = int(capacity)
        items = list(entries)
        self._size = len(items)
        self._root = self._bulk_load(items) if items else None

    @classmethod
    def from_points(
        cls,
        points: Iterable[Tuple[float, float, object]],
        capacity: int = 16,
    ) -> "RTree":
        """Build from ``(x, y, item)`` triples."""
        return cls(
            ((Rect.point(x, y), item) for x, y, item in points),
            capacity=capacity,
        )

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    def _bulk_load(self, items: List[Tuple[Rect, object]]) -> _Node:
        leaves = self._pack_leaves(items)
        level = leaves
        while len(level) > 1:
            level = self._pack_nodes(level)
        return level[0]

    def _pack_leaves(
        self, items: List[Tuple[Rect, object]]
    ) -> List[_Node]:
        groups = self._str_partition(items, lambda entry: entry[0].center)
        return [
            _Node(
                Rect.union_all([rect for rect, _ in group]),
                entries=group,
            )
            for group in groups
        ]

    def _pack_nodes(self, nodes: List[_Node]) -> List[_Node]:
        groups = self._str_partition(nodes, lambda node: node.mbr.center)
        return [
            _Node(
                Rect.union_all([node.mbr for node in group]),
                children=group,
            )
            for group in groups
        ]

    def _str_partition(self, items, center_of) -> List[List]:
        """Sort-Tile-Recursive partition into groups of <= capacity."""
        n = len(items)
        n_nodes = math.ceil(n / self.capacity)
        n_slabs = math.ceil(math.sqrt(n_nodes))
        slab_size = math.ceil(n / n_slabs) if n_slabs else n
        by_x = sorted(items, key=lambda item: center_of(item)[0])
        groups: List[List] = []
        for slab_start in range(0, n, slab_size):
            slab = by_x[slab_start:slab_start + slab_size]
            slab.sort(key=lambda item: center_of(item)[1])
            for group_start in range(0, len(slab), self.capacity):
                groups.append(slab[group_start:group_start + self.capacity])
        return groups

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height (0 for an empty tree, 1 for a single leaf)."""
        height = 0
        node = self._root
        while node is not None:
            height += 1
            node = node.children[0] if not node.is_leaf else None
        return height

    def search(self, query: Rect) -> List[object]:
        """All payloads whose rectangle intersects ``query``."""
        return self.search_with_stats(query)[0]

    def search_with_stats(self, query: Rect) -> Tuple[List[object], int]:
        """``(payloads, nodes_visited)`` for one window probe.

        The visit count feeds the query pipeline's EXPLAIN output: it
        shows how much of the tree a selective window actually touched,
        which is the quantity the STR packing is supposed to minimise.
        """
        results: List[object] = []
        visited = 0
        if self._root is None:
            return results, visited
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if not node.mbr.intersects(query):
                continue
            if node.is_leaf:
                for rect, item in node.entries:
                    if rect.intersects(query):
                        results.append(item)
            else:
                stack.extend(node.children)
        return results, visited

    def count(self, query: Rect) -> int:
        """Number of intersecting entries (no payload materialisation)."""
        return len(self.search(query))

    def root_mbr(self) -> Optional[Rect]:
        """The MBR of all indexed entries (None when empty)."""
        return self._root.mbr if self._root is not None else None
