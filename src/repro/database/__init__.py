"""Database layer: collections of uncertain objects and access methods.

* :mod:`repro.database.objects` -- the :class:`UncertainObject` record.
* :mod:`repro.database.uncertain_db` -- :class:`TrajectoryDatabase`, a
  validated collection of objects over shared Markov chains.
* :mod:`repro.database.rtree` -- an STR-packed R-tree used as the spatial
  filter step.
* :mod:`repro.database.pruning` -- reachability-based object pruning for
  the object-based processor.
* :mod:`repro.database.serialization` -- persistence of chains and
  databases.
"""

from repro.database.objects import UncertainObject
from repro.database.uncertain_db import TrajectoryDatabase
from repro.database.rtree import Rect, RTree
from repro.database.pruning import ReachabilityPruner

__all__ = [
    "UncertainObject",
    "TrajectoryDatabase",
    "Rect",
    "RTree",
    "ReachabilityPruner",
]
