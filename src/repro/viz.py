"""Terminal-friendly visualisation helpers.

No plotting dependencies are available offline, so the examples render
distributions and forecast heatmaps as ASCII art: a density character ramp
over grid cells, and sparkline-style bars for 1-D distributions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.state_space import GridStateSpace

__all__ = ["render_grid", "render_bar_chart", "render_series"]

_RAMP = " .:-=+*#%@"


def render_grid(
    grid: GridStateSpace,
    values: Sequence[float],
    highlight: Iterable[int] = (),
    title: Optional[str] = None,
) -> str:
    """Render per-state values over a 2-D grid as an ASCII heatmap.

    Args:
        grid: the grid state space (fixes the layout).
        values: one value per state (e.g. a probability vector).
        highlight: states drawn as ``[]`` regardless of value (e.g. a
            query region).
        title: optional heading line.

    Returns:
        A multi-line string; the row with cell ``y = 0`` is printed last
        so the y axis points up.
    """
    array = np.asarray(values, dtype=float)
    if array.shape != (grid.n_states,):
        raise ValidationError(
            f"expected {grid.n_states} values, got shape {array.shape}"
        )
    highlighted = set(highlight)
    peak = float(array.max())
    lines: List[str] = []
    if title:
        lines.append(title)
    for y in reversed(range(grid.height)):
        cells = []
        for x in range(grid.width):
            state = grid.state_of_cell(x, y)
            if state in highlighted:
                cells.append("[]")
                continue
            value = array[state]
            if peak <= 0:
                level = 0
            else:
                level = int(round(value / peak * (len(_RAMP) - 1)))
            cells.append(_RAMP[level] * 2)
        lines.append("".join(cells))
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bar chart (one row per label)."""
    if len(labels) != len(values):
        raise ValidationError(
            f"{len(labels)} labels vs {len(values)} values"
        )
    if width < 1:
        raise ValidationError(f"width must be positive, got {width}")
    peak = max((abs(v) for v in values), default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = (
            "#" * int(round(abs(value) / peak * width)) if peak > 0 else ""
        )
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.4f}")
    return "\n".join(lines)


def render_series(
    x_values: Sequence[float],
    series: dict,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render several curves as aligned rows of bars (one block per curve)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, values in series.items():
        lines.append(f"-- {label}")
        lines.append(
            render_bar_chart(
                [str(x) for x in x_values], list(values), width=width
            )
        )
    return "\n".join(lines)


def render_distribution_support(
    distribution: StateDistribution, limit: int = 10
) -> str:
    """One-line summary of a distribution's heaviest states."""
    items = sorted(
        distribution.items(), key=lambda pair: -pair[1]
    )[:limit]
    rendered = ", ".join(
        f"s{state}:{probability:.3f}" for state, probability in items
    )
    suffix = ", ..." if distribution.support_size() > limit else ""
    return f"{{{rendered}{suffix}}}"
