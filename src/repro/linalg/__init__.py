"""Linear-algebra substrate for the repro library.

The paper performs every query through (sparse) matrix--vector
multiplications, using MATLAB's sparse engine.  This subpackage provides the
equivalent substrate:

* :mod:`repro.linalg.sparse` -- an independent, pure-Python compressed
  sparse row (CSR) matrix implementation.  It exists both as a fallback when
  scipy is unavailable and as an independently-implemented oracle used by
  the test suite to cross-check the scipy backend.
* :mod:`repro.linalg.ops` -- a thin dispatch layer that routes matrix
  construction and multiplication either to scipy or to the pure backend.
"""

from repro.linalg.sparse import CSRMatrix
from repro.linalg.ops import (
    Backend,
    available_backends,
    get_backend,
    matvec,
    spmm,
    vecmat,
)

__all__ = [
    "CSRMatrix",
    "Backend",
    "available_backends",
    "get_backend",
    "matvec",
    "spmm",
    "vecmat",
]
