"""Backend dispatch for sparse linear algebra.

The query processors in :mod:`repro.core` never touch scipy directly; they
call the functions in this module, which route to one of three backends:

* ``"scipy"`` -- :class:`scipy.sparse.csr_matrix` with numpy vectors.  This
  is the baseline production backend and mirrors the paper's use of
  MATLAB's sparse engine.
* ``"native"`` -- same scipy CSR storage, but every product runs through
  the compiled kernels in :mod:`repro.linalg.native` (numba JIT when
  importable, cached dense-BLAS otherwise).  Sharing the scipy storage
  means fingerprints, plan caches and shared-memory publication are
  identical; only the inner loops differ.
* ``"pure"``  -- :class:`repro.linalg.sparse.CSRMatrix` with Python lists.
  Dependency-free and independently implemented; used as a cross-check.

A backend is selected per call site via :func:`get_backend`; the default is
scipy when importable, otherwise pure.  The planner promotes groups to
``native`` when the cost model says the compiled kernels win (see
``CostModel.best_backend``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import BackendError
from repro.linalg.sparse import CSRMatrix

try:  # scipy is a hard dependency of the distribution but keep it optional
    import numpy as _np
    import scipy.sparse as _sp

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _np = None
    _sp = None
    _HAVE_SCIPY = False

__all__ = [
    "Backend",
    "available_backends",
    "get_backend",
    "matmat",
    "matvec",
    "spmm",
    "vecmat",
]


@dataclass(frozen=True)
class Backend:
    """A sparse linear-algebra backend.

    Attributes:
        name: ``"scipy"`` or ``"pure"``.
        from_coo: build a CSR matrix from ``(nrows, ncols, triples)``.
        from_dense: build a CSR matrix from a nested-list dense matrix.
        identity: build an identity matrix of size ``n``.
        transpose: return the transposed matrix (CSR again).
        vecmat: row-vector times matrix.
        matvec: matrix times column-vector.
        matmat: dense row-stack times sparse matrix (batched vecmat).
        zeros_vector: an all-zero vector of length ``n``.
        from_coo_arrays: build a CSR matrix from parallel numpy
            ``(rows, cols, values)`` arrays without a Python-level
            triple loop; None when the backend has no fast path.
    """

    name: str
    from_coo: Callable[[int, int, Iterable[Tuple[int, int, float]]], Any]
    from_dense: Callable[[Sequence[Sequence[float]]], Any]
    identity: Callable[[int], Any]
    transpose: Callable[[Any], Any]
    vecmat: Callable[[Any, Any], Any]
    matvec: Callable[[Any, Any], Any]
    matmat: Callable[[Any, Any], Any]
    zeros_vector: Callable[[int], Any]
    from_coo_arrays: Optional[Callable[[int, int, Any, Any, Any], Any]] = (
        None
    )

    def build_coo(self, nrows: int, ncols: int, rows, cols, values) -> Any:
        """CSR matrix from parallel coordinate arrays.

        Routes to the backend's vectorised constructor when available,
        else falls back to the generic triple path.
        """
        if self.from_coo_arrays is not None:
            return self.from_coo_arrays(nrows, ncols, rows, cols, values)
        return self.from_coo(
            nrows, ncols, zip(
                (int(i) for i in rows),
                (int(j) for j in cols),
                (float(v) for v in values),
            )
        )


def _pure_backend() -> Backend:
    return Backend(
        name="pure",
        from_coo=lambda nrows, ncols, triples: CSRMatrix.from_coo(
            nrows, ncols, triples
        ),
        from_dense=CSRMatrix.from_dense,
        identity=CSRMatrix.identity,
        transpose=lambda m: m.transpose(),
        vecmat=lambda x, m: m.vecmat(list(x)),
        matvec=lambda m, x: m.matvec(list(x)),
        matmat=lambda rows, m: [m.vecmat(list(row)) for row in rows],
        zeros_vector=lambda n: [0.0] * n,
    )


def _scipy_backend() -> Backend:
    if not _HAVE_SCIPY:  # pragma: no cover
        raise BackendError("scipy is not installed")

    def from_coo(nrows, ncols, triples):
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for i, j, v in triples:
            rows.append(i)
            cols.append(j)
            vals.append(v)
        return _sp.csr_matrix(
            (vals, (rows, cols)), shape=(nrows, ncols), dtype=float
        )

    return Backend(
        name="scipy",
        from_coo=from_coo,
        from_dense=lambda rows: _sp.csr_matrix(
            _np.asarray(rows, dtype=float)
        ),
        identity=lambda n: _sp.identity(n, dtype=float, format="csr"),
        transpose=lambda m: m.transpose().tocsr(),
        vecmat=lambda x, m: _np.asarray(x, dtype=float) @ m,
        matvec=lambda m, x: m @ _np.asarray(x, dtype=float),
        matmat=lambda rows, m: _np.asarray(rows, dtype=float) @ m,
        zeros_vector=lambda n: _np.zeros(n, dtype=float),
        from_coo_arrays=lambda nrows, ncols, rows, cols, vals: (
            _sp.csr_matrix(
                (
                    _np.asarray(vals, dtype=float),
                    (
                        _np.asarray(rows, dtype=_np.int64),
                        _np.asarray(cols, dtype=_np.int64),
                    ),
                ),
                shape=(nrows, ncols),
                dtype=float,
            )
        ),
    )


def _native_backend() -> Backend:
    """Scipy CSR storage, compiled-kernel products.

    Construction is byte-identical to the scipy backend (so caching,
    fingerprints and shared-memory publication agree); only the product
    functions route through :mod:`repro.linalg.native`.
    """
    if not _HAVE_SCIPY:  # pragma: no cover
        raise BackendError("native backend requires scipy for CSR storage")
    from repro.linalg import native as _native

    base = _scipy_backend()
    return Backend(
        name="native",
        from_coo=base.from_coo,
        from_dense=base.from_dense,
        identity=base.identity,
        transpose=base.transpose,
        vecmat=lambda x, m: _native.vecmat(x, m),
        matvec=lambda m, x: _native.matvec(m, x),
        matmat=lambda rows, m: _native.matmat(rows, m),
        zeros_vector=base.zeros_vector,
        from_coo_arrays=base.from_coo_arrays,
    )


_BACKENDS: Dict[str, Callable[[], Backend]] = {
    "pure": _pure_backend,
}
if _HAVE_SCIPY:
    _BACKENDS["scipy"] = _scipy_backend
    _BACKENDS["native"] = _native_backend

_DEFAULT = "scipy" if _HAVE_SCIPY else "pure"


def available_backends() -> List[str]:
    """Names of the backends importable in this environment."""
    return sorted(_BACKENDS)


def get_backend(name: Optional[str] = None) -> Backend:
    """Return the backend called ``name`` (default: scipy, else pure).

    Raises:
        BackendError: when ``name`` is not one of :func:`available_backends`.
    """
    key = name or _DEFAULT
    try:
        factory = _BACKENDS[key]
    except KeyError:
        raise BackendError(
            f"unknown backend {key!r}; available: {available_backends()}"
        ) from None
    return factory()


def vecmat(x: Any, matrix: Any) -> Any:
    """Row-vector times matrix for either backend's matrix type."""
    if isinstance(matrix, CSRMatrix):
        return matrix.vecmat(list(x))
    if _HAVE_SCIPY:
        return _np.asarray(x, dtype=float) @ matrix
    raise BackendError(f"unsupported matrix type {type(matrix)!r}")


def matvec(matrix: Any, x: Any, backend: Optional[str] = None) -> Any:
    """Matrix times column-vector for either backend's matrix type.

    ``backend="native"`` routes a scipy CSR through the compiled
    kernels; any other value (or a pure matrix) takes the storage
    backend's own product.
    """
    if isinstance(matrix, CSRMatrix):
        return matrix.matvec(list(x))
    if _HAVE_SCIPY:
        if backend == "native":
            from repro.linalg import native as _native

            return _native.matvec(matrix, x)
        return matrix @ _np.asarray(x, dtype=float)
    raise BackendError(f"unsupported matrix type {type(matrix)!r}")


def spmm(matrix: Any, block: Any, backend: Optional[str] = None) -> Any:
    """Sparse matrix times dense block (``matrix @ block``).

    The column-block form of :func:`matvec`: one product advances every
    column at once (backward suffix blocks, transposed forward stacks).
    ``backend="native"`` routes scipy CSR storage through the compiled
    kernels.
    """
    if isinstance(matrix, CSRMatrix):
        cols = [
            matrix.matvec([row[k] for row in block])
            for k in range(len(block[0]))
        ]
        return [list(out_row) for out_row in zip(*cols)]
    if _HAVE_SCIPY:
        if backend == "native":
            from repro.linalg import native as _native

            return _native.spmm(matrix, block)
        return matrix @ _np.asarray(block, dtype=float)
    raise BackendError(f"unsupported matrix type {type(matrix)!r}")


def matmat(rows: Any, matrix: Any) -> Any:
    """Row-stack times matrix: one product advancing many objects at once.

    ``rows`` is an ``(n_objects, size)`` stack of distribution vectors;
    the result is the same stack after one transition.  This is the
    batched form of :func:`vecmat` -- per row the two agree exactly, but
    a single product amortises the sparse traversal over all objects.
    """
    if isinstance(matrix, CSRMatrix):
        return [matrix.vecmat(list(row)) for row in rows]
    if _HAVE_SCIPY:
        return _np.asarray(rows, dtype=float) @ matrix
    raise BackendError(f"unsupported matrix type {type(matrix)!r}")
