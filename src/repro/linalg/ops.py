"""Backend dispatch for sparse linear algebra.

The query processors in :mod:`repro.core` never touch scipy directly; they
call the functions in this module, which route to one of two backends:

* ``"scipy"`` -- :class:`scipy.sparse.csr_matrix` with numpy vectors.  This
  is the production backend and mirrors the paper's use of MATLAB's sparse
  engine.
* ``"pure"``  -- :class:`repro.linalg.sparse.CSRMatrix` with Python lists.
  Dependency-free and independently implemented; used as a cross-check.

A backend is selected per call site via :func:`get_backend`; the default is
scipy when importable, otherwise pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import BackendError
from repro.linalg.sparse import CSRMatrix

try:  # scipy is a hard dependency of the distribution but keep it optional
    import numpy as _np
    import scipy.sparse as _sp

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _np = None
    _sp = None
    _HAVE_SCIPY = False

__all__ = [
    "Backend",
    "available_backends",
    "get_backend",
    "matvec",
    "vecmat",
]


@dataclass(frozen=True)
class Backend:
    """A sparse linear-algebra backend.

    Attributes:
        name: ``"scipy"`` or ``"pure"``.
        from_coo: build a CSR matrix from ``(nrows, ncols, triples)``.
        from_dense: build a CSR matrix from a nested-list dense matrix.
        identity: build an identity matrix of size ``n``.
        transpose: return the transposed matrix (CSR again).
        vecmat: row-vector times matrix.
        matvec: matrix times column-vector.
        zeros_vector: an all-zero vector of length ``n``.
    """

    name: str
    from_coo: Callable[[int, int, Iterable[Tuple[int, int, float]]], Any]
    from_dense: Callable[[Sequence[Sequence[float]]], Any]
    identity: Callable[[int], Any]
    transpose: Callable[[Any], Any]
    vecmat: Callable[[Any, Any], Any]
    matvec: Callable[[Any, Any], Any]
    zeros_vector: Callable[[int], Any]


def _pure_backend() -> Backend:
    return Backend(
        name="pure",
        from_coo=lambda nrows, ncols, triples: CSRMatrix.from_coo(
            nrows, ncols, triples
        ),
        from_dense=CSRMatrix.from_dense,
        identity=CSRMatrix.identity,
        transpose=lambda m: m.transpose(),
        vecmat=lambda x, m: m.vecmat(list(x)),
        matvec=lambda m, x: m.matvec(list(x)),
        zeros_vector=lambda n: [0.0] * n,
    )


def _scipy_backend() -> Backend:
    if not _HAVE_SCIPY:  # pragma: no cover
        raise BackendError("scipy is not installed")

    def from_coo(nrows, ncols, triples):
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for i, j, v in triples:
            rows.append(i)
            cols.append(j)
            vals.append(v)
        return _sp.csr_matrix(
            (vals, (rows, cols)), shape=(nrows, ncols), dtype=float
        )

    return Backend(
        name="scipy",
        from_coo=from_coo,
        from_dense=lambda rows: _sp.csr_matrix(
            _np.asarray(rows, dtype=float)
        ),
        identity=lambda n: _sp.identity(n, dtype=float, format="csr"),
        transpose=lambda m: m.transpose().tocsr(),
        vecmat=lambda x, m: _np.asarray(x, dtype=float) @ m,
        matvec=lambda m, x: m @ _np.asarray(x, dtype=float),
        zeros_vector=lambda n: _np.zeros(n, dtype=float),
    )


_BACKENDS: Dict[str, Callable[[], Backend]] = {
    "pure": _pure_backend,
}
if _HAVE_SCIPY:
    _BACKENDS["scipy"] = _scipy_backend

_DEFAULT = "scipy" if _HAVE_SCIPY else "pure"


def available_backends() -> List[str]:
    """Names of the backends importable in this environment."""
    return sorted(_BACKENDS)


def get_backend(name: Optional[str] = None) -> Backend:
    """Return the backend called ``name`` (default: scipy, else pure).

    Raises:
        BackendError: when ``name`` is not one of :func:`available_backends`.
    """
    key = name or _DEFAULT
    try:
        factory = _BACKENDS[key]
    except KeyError:
        raise BackendError(
            f"unknown backend {key!r}; available: {available_backends()}"
        ) from None
    return factory()


def vecmat(x: Any, matrix: Any) -> Any:
    """Row-vector times matrix for either backend's matrix type."""
    if isinstance(matrix, CSRMatrix):
        return matrix.vecmat(list(x))
    if _HAVE_SCIPY:
        return _np.asarray(x, dtype=float) @ matrix
    raise BackendError(f"unsupported matrix type {type(matrix)!r}")


def matvec(matrix: Any, x: Any) -> Any:
    """Matrix times column-vector for either backend's matrix type."""
    if isinstance(matrix, CSRMatrix):
        return matrix.matvec(list(x))
    if _HAVE_SCIPY:
        return matrix @ _np.asarray(x, dtype=float)
    raise BackendError(f"unsupported matrix type {type(matrix)!r}")
