"""A pure-Python compressed sparse row (CSR) matrix.

The paper reduces every probabilistic spatio-temporal query to repeated
vector--matrix products with (augmented) Markov transition matrices, and
notes that the required machinery is "provided by Matlab libraries ...
available for all common programming languages".  The production backend of
this library is :mod:`scipy.sparse`; this module is an *independent*
implementation of the same data structure with three purposes:

1. a dependency-free fallback (the core algorithms run without scipy),
2. an oracle for the test suite -- two independently written mat-vec kernels
   agreeing on random inputs is strong evidence both are right,
3. an executable specification: the code is written for clarity, making the
   CSR invariants explicit.

The CSR layout stores a matrix in three arrays:

* ``indptr``  -- ``indptr[i]:indptr[i+1]`` delimits row ``i``'s entries,
* ``indices`` -- the column index of each stored entry,
* ``data``    -- the value of each stored entry.

Invariants (checked by :meth:`CSRMatrix.validate`):

* ``len(indptr) == nrows + 1``, ``indptr[0] == 0``,
  ``indptr[-1] == len(data) == len(indices)``,
* ``indptr`` is non-decreasing,
* within each row, column indices are strictly increasing and in range.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core.errors import DimensionMismatchError, ValidationError

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A minimal immutable CSR sparse matrix over Python floats.

    Instances should be built through one of the constructors
    (:meth:`from_dense`, :meth:`from_coo`, :meth:`from_dict`,
    :meth:`identity`, :meth:`zeros`) rather than by passing raw arrays,
    although the raw constructor is public for completeness.
    """

    __slots__ = ("nrows", "ncols", "indptr", "indices", "data")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        indptr: Sequence[int],
        indices: Sequence[int],
        data: Sequence[float],
        validate: bool = True,
    ) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr: List[int] = list(indptr)
        self.indices: List[int] = list(indices)
        self.data: List[float] = [float(x) for x in data]
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "CSRMatrix":
        """Return the all-zero matrix of the given shape."""
        return cls(nrows, ncols, [0] * (nrows + 1), [], [], validate=False)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """Return the ``n`` x ``n`` identity matrix."""
        return cls(n, n, list(range(n + 1)), list(range(n)), [1.0] * n,
                   validate=False)

    @classmethod
    def from_dense(cls, rows: Sequence[Sequence[float]]) -> "CSRMatrix":
        """Build a CSR matrix from a dense row-major nested sequence."""
        nrows = len(rows)
        ncols = len(rows[0]) if nrows else 0
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for row in rows:
            if len(row) != ncols:
                raise DimensionMismatchError(
                    f"ragged dense input: expected {ncols} columns, "
                    f"got {len(row)}"
                )
            for j, value in enumerate(row):
                if value != 0.0:
                    indices.append(j)
                    data.append(float(value))
            indptr.append(len(indices))
        return cls(nrows, ncols, indptr, indices, data, validate=False)

    @classmethod
    def from_coo(
        cls,
        nrows: int,
        ncols: int,
        entries: Iterable[Tuple[int, int, float]],
    ) -> "CSRMatrix":
        """Build from ``(row, col, value)`` triples.

        Duplicate ``(row, col)`` pairs are summed, matching the convention
        of scipy's COO-to-CSR conversion.  Zero results are dropped.
        """
        per_row: Dict[int, Dict[int, float]] = {}
        for i, j, value in entries:
            if not (0 <= i < nrows and 0 <= j < ncols):
                raise ValidationError(
                    f"entry ({i}, {j}) outside shape ({nrows}, {ncols})"
                )
            row = per_row.setdefault(i, {})
            row[j] = row.get(j, 0.0) + float(value)
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for i in range(nrows):
            row = per_row.get(i, {})
            for j in sorted(row):
                value = row[j]
                if value != 0.0:
                    indices.append(j)
                    data.append(value)
            indptr.append(len(indices))
        return cls(nrows, ncols, indptr, indices, data, validate=False)

    @classmethod
    def from_dict(
        cls, nrows: int, ncols: int, mapping: Dict[Tuple[int, int], float]
    ) -> "CSRMatrix":
        """Build from a ``{(row, col): value}`` mapping."""
        return cls.from_coo(
            nrows, ncols, ((i, j, v) for (i, j), v in mapping.items())
        )

    # ------------------------------------------------------------------
    # validation and inspection
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all CSR structural invariants; raise on violation."""
        if self.nrows < 0 or self.ncols < 0:
            raise ValidationError(
                f"negative shape ({self.nrows}, {self.ncols})"
            )
        if len(self.indptr) != self.nrows + 1:
            raise ValidationError(
                f"indptr has length {len(self.indptr)}, "
                f"expected {self.nrows + 1}"
            )
        if self.indptr and self.indptr[0] != 0:
            raise ValidationError("indptr[0] must be 0")
        if len(self.indices) != len(self.data):
            raise ValidationError("indices and data lengths differ")
        if self.indptr and self.indptr[-1] != len(self.data):
            raise ValidationError("indptr[-1] must equal nnz")
        for i in range(self.nrows):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            if lo > hi:
                raise ValidationError(f"indptr decreases at row {i}")
            previous = -1
            for k in range(lo, hi):
                j = self.indices[k]
                if not (0 <= j < self.ncols):
                    raise ValidationError(
                        f"column index {j} out of range in row {i}"
                    )
                if j <= previous:
                    raise ValidationError(
                        f"column indices not strictly increasing in row {i}"
                    )
                previous = j

    @property
    def shape(self) -> Tuple[int, int]:
        """The ``(nrows, ncols)`` pair, scipy-compatible."""
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        """Number of stored (structurally non-zero) entries."""
        return len(self.data)

    def row(self, i: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(column, value)`` pairs of row ``i`` in column order."""
        if not (0 <= i < self.nrows):
            raise ValidationError(f"row {i} out of range [0, {self.nrows})")
        for k in range(self.indptr[i], self.indptr[i + 1]):
            yield self.indices[k], self.data[k]

    def get(self, i: int, j: int) -> float:
        """Return entry ``(i, j)``, zero when not stored."""
        for col, value in self.row(i):
            if col == j:
                return value
            if col > j:
                break
        return 0.0

    def row_sums(self) -> List[float]:
        """Return the per-row sum of entries (used for stochastic checks)."""
        sums = []
        for i in range(self.nrows):
            total = 0.0
            for k in range(self.indptr[i], self.indptr[i + 1]):
                total += self.data[k]
            sums.append(total)
        return sums

    def to_dense(self) -> List[List[float]]:
        """Materialise the matrix as a dense nested list (small inputs)."""
        dense = [[0.0] * self.ncols for _ in range(self.nrows)]
        for i in range(self.nrows):
            for j, value in self.row(i):
                dense[i][j] = value
        return dense

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def matvec(self, x: Sequence[float]) -> List[float]:
        """Compute the matrix-vector product ``A @ x``."""
        if len(x) != self.ncols:
            raise DimensionMismatchError(
                f"matvec: matrix has {self.ncols} columns, "
                f"vector has length {len(x)}"
            )
        result = [0.0] * self.nrows
        for i in range(self.nrows):
            total = 0.0
            for k in range(self.indptr[i], self.indptr[i + 1]):
                total += self.data[k] * x[self.indices[k]]
            result[i] = total
        return result

    def vecmat(self, x: Sequence[float]) -> List[float]:
        """Compute the vector-matrix product ``x @ A``.

        This is the fundamental operation of the paper: a row distribution
        vector pushed through one Markov transition (Corollary 1).
        """
        if len(x) != self.nrows:
            raise DimensionMismatchError(
                f"vecmat: matrix has {self.nrows} rows, "
                f"vector has length {len(x)}"
            )
        result = [0.0] * self.ncols
        for i, xi in enumerate(x):
            if xi == 0.0:
                continue  # sparsity of the distribution vector
            for k in range(self.indptr[i], self.indptr[i + 1]):
                result[self.indices[k]] += xi * self.data[k]
        return result

    def transpose(self) -> "CSRMatrix":
        """Return the transposed matrix (used by the query-based approach)."""
        counts = [0] * self.ncols
        for j in self.indices:
            counts[j] += 1
        indptr = [0] * (self.ncols + 1)
        for j in range(self.ncols):
            indptr[j + 1] = indptr[j] + counts[j]
        cursor = list(indptr[:-1])
        indices = [0] * self.nnz
        data = [0.0] * self.nnz
        for i in range(self.nrows):
            for k in range(self.indptr[i], self.indptr[i + 1]):
                j = self.indices[k]
                pos = cursor[j]
                indices[pos] = i
                data[pos] = self.data[k]
                cursor[j] = pos + 1
        return CSRMatrix(
            self.ncols, self.nrows, indptr, indices, data, validate=False
        )

    def matmul(self, other: "CSRMatrix") -> "CSRMatrix":
        """Return the sparse product ``self @ other`` (row-by-row SpGEMM)."""
        if self.ncols != other.nrows:
            raise DimensionMismatchError(
                f"matmul: ({self.nrows}, {self.ncols}) @ "
                f"({other.nrows}, {other.ncols})"
            )
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for i in range(self.nrows):
            accumulator: Dict[int, float] = {}
            for k in range(self.indptr[i], self.indptr[i + 1]):
                j = self.indices[k]
                a_ij = self.data[k]
                for kk in range(other.indptr[j], other.indptr[j + 1]):
                    col = other.indices[kk]
                    accumulator[col] = (
                        accumulator.get(col, 0.0) + a_ij * other.data[kk]
                    )
            for col in sorted(accumulator):
                value = accumulator[col]
                if value != 0.0:
                    indices.append(col)
                    data.append(value)
            indptr.append(len(indices))
        return CSRMatrix(
            self.nrows, other.ncols, indptr, indices, data, validate=False
        )

    def scale(self, factor: float) -> "CSRMatrix":
        """Return the matrix with every entry multiplied by ``factor``."""
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.indptr,
            self.indices,
            [value * factor for value in self.data],
            validate=False,
        )

    def add(self, other: "CSRMatrix") -> "CSRMatrix":
        """Return the entrywise sum ``self + other``."""
        if self.shape != other.shape:
            raise DimensionMismatchError(
                f"add: {self.shape} + {other.shape}"
            )
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for i in range(self.nrows):
            merged: Dict[int, float] = {}
            for j, value in self.row(i):
                merged[j] = merged.get(j, 0.0) + value
            for j, value in other.row(i):
                merged[j] = merged.get(j, 0.0) + value
            for j in sorted(merged):
                value = merged[j]
                if value != 0.0:
                    indices.append(j)
                    data.append(value)
            indptr.append(len(indices))
        return CSRMatrix(
            self.nrows, self.ncols, indptr, indices, data, validate=False
        )

    def select_columns(self, keep: Iterable[int]) -> "CSRMatrix":
        """Zero out every column *not* in ``keep`` (shape preserved).

        This is the paper's ``M'`` construction (Section V-A and VI): the
        matrix derived from ``M`` "by setting all columns to zero" outside a
        state set.
        """
        keep_set = set(keep)
        for j in keep_set:
            if not (0 <= j < self.ncols):
                raise ValidationError(
                    f"column {j} out of range [0, {self.ncols})"
                )
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for i in range(self.nrows):
            for j, value in self.row(i):
                if j in keep_set:
                    indices.append(j)
                    data.append(value)
            indptr.append(len(indices))
        return CSRMatrix(
            self.nrows, self.ncols, indptr, indices, data, validate=False
        )

    def drop_columns(self, drop: Iterable[int]) -> "CSRMatrix":
        """Zero out every column in ``drop`` (shape preserved)."""
        drop_set = set(drop)
        keep = (j for j in range(self.ncols) if j not in drop_set)
        return self.select_columns(keep)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __matmul__(self, other: "CSRMatrix") -> "CSRMatrix":
        return self.matmul(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.indptr == other.indptr
            and self.indices == other.indices
            and self.data == other.data
        )

    def __hash__(self) -> int:  # immutable by convention
        return hash(
            (self.nrows, self.ncols, tuple(self.indices), tuple(self.data))
        )

    def allclose(self, other: "CSRMatrix", tol: float = 1e-12) -> bool:
        """Entrywise comparison within ``tol`` (handles different sparsity)."""
        if self.shape != other.shape:
            return False
        for i in range(self.nrows):
            mine = dict(self.row(i))
            theirs = dict(other.row(i))
            for j in set(mine) | set(theirs):
                if abs(mine.get(j, 0.0) - theirs.get(j, 0.0)) > tol:
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(shape=({self.nrows}, {self.ncols}), nnz={self.nnz})"
        )
