"""Compiled CPU kernels for the ``native`` linear-algebra backend.

The hot loops of every query tier are CSR x dense-block products (forward
cohort sweeps, backward vectors, k-times suffix blocks).  This module
provides those products twice over:

* **Numba JIT kernels** (``@njit(parallel=True, cache=True)``) operating
  directly on the CSR ``indptr/indices/data`` arrays -- used when numba is
  importable and not disabled.
* **A dense-BLAS fallback**: the sparse matrix is densified once per
  matrix object (cached on the matrix, capped by
  ``REPRO_NATIVE_DENSE_CAP`` elements) and every subsequent product is a
  single BLAS ``@``.  On the dense cohort shapes the planner routes here
  (density >= ~0.1, many objects), BLAS beats scipy's spmm 1.5-3x even
  single-threaded, so the backend pays off with or without numba.

Either way the matrix *storage* is exactly the scipy backend's CSR --
construction, fingerprinting, plan caching and shared-memory publication
are untouched; only the products differ.  Environment toggles:

``REPRO_DISABLE_NUMBA``
    non-empty: never use the JIT kernels (forces the numpy fallback).
``REPRO_NATIVE_DENSE_CAP``
    max dense elements (``nrows * ncols``) the fallback may cache per
    matrix; above the cap products route to scipy spmm (correct, just
    not faster).  Default 8,000,000 (~64 MB of float64).
``REPRO_NATIVE_FORCE_FAIL``
    non-empty: every native product raises
    :class:`~repro.core.errors.BackendError` -- lets tests drive the
    ``native -> scipy`` degradation path deterministically.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List

import numpy as np

from repro.core.errors import BackendError

try:  # numba is optional; the repo never hard-depends on it
    import numba as _numba

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - numba present in some CI legs only
    _numba = None
    _HAVE_NUMBA = False

__all__ = [
    "compile_status",
    "ktimes_update",
    "matmat",
    "matvec",
    "numba_available",
    "prewarm",
    "spmm",
    "vecmat",
]

_DENSE_CAP_DEFAULT = 8_000_000
_DENSE_ATTR = "_repro_native_dense"
_DENSE_T_ATTR = "_repro_native_dense_t"

_PREWARMED = False


def _disabled() -> bool:
    return bool(os.environ.get("REPRO_DISABLE_NUMBA"))


def _use_numba() -> bool:
    return _HAVE_NUMBA and not _disabled()


def numba_available() -> bool:
    """Whether the JIT kernels can run (numba importable, not disabled)."""
    return _use_numba()


def dense_cap() -> int:
    """Max dense elements the fallback may cache per matrix."""
    raw = os.environ.get("REPRO_NATIVE_DENSE_CAP")
    if not raw:
        return _DENSE_CAP_DEFAULT
    try:
        return max(0, int(raw))
    except ValueError:
        return _DENSE_CAP_DEFAULT


def _check_forced_failure() -> None:
    if os.environ.get("REPRO_NATIVE_FORCE_FAIL"):
        raise BackendError(
            "native backend failure forced via REPRO_NATIVE_FORCE_FAIL"
        )


# ----------------------------------------------------------------------
# numba kernels (compiled lazily on first call; cache=True persists the
# machine code across processes so fork workers inherit warm kernels)
# ----------------------------------------------------------------------
if _HAVE_NUMBA:  # pragma: no cover - exercised only on the numba CI leg

    @_numba.njit(parallel=True, cache=True)
    def _nb_csr_spmm(indptr, indices, data, block, out):
        """out = CSR(indptr, indices, data) @ block."""
        nrows = indptr.shape[0] - 1
        width = block.shape[1]
        for i in _numba.prange(nrows):
            for k in range(width):
                out[i, k] = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                j = indices[p]
                v = data[p]
                for k in range(width):
                    out[i, k] += v * block[j, k]

    @_numba.njit(parallel=True, cache=True)
    def _nb_csr_matvec(indptr, indices, data, x, out):
        """out = CSR @ x."""
        nrows = indptr.shape[0] - 1
        for i in _numba.prange(nrows):
            acc = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                acc += data[p] * x[indices[p]]
            out[i] = acc

    @_numba.njit(parallel=True, cache=True)
    def _nb_dense_spmm(indptr, indices, data, rows, out):
        """out = rows @ CSR -- the batched forward sweep (matmat).

        Parallelised over the *stack* rows so each output row is owned
        by one thread; the CSR is traversed row-major as a transposed
        scatter.
        """
        n_stack = rows.shape[0]
        nrows = indptr.shape[0] - 1
        for s in _numba.prange(n_stack):
            for j in range(out.shape[1]):
                out[s, j] = 0.0
            for i in range(nrows):
                v_in = rows[s, i]
                if v_in != 0.0:
                    for p in range(indptr[i], indptr[i + 1]):
                        out[s, indices[p]] += v_in * data[p]

    @_numba.njit(parallel=True, cache=True)
    def _nb_ktimes_update(indptr, indices, data, block, is_region, out):
        """Fused k-times count-row step: shift region rows, then spmm.

        Equivalent to ``CSR @ shifted`` where ``shifted`` is ``block``
        with every region row's count distribution shifted one slot
        right (count 0 zeroed) -- fusing the copy/shift into the
        product gather avoids materialising ``shifted`` at all.
        """
        nrows = indptr.shape[0] - 1
        width = block.shape[1]
        for i in _numba.prange(nrows):
            for k in range(width):
                out[i, k] = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                j = indices[p]
                v = data[p]
                if is_region[j]:
                    for k in range(1, width):
                        out[i, k] += v * block[j, k - 1]
                else:
                    for k in range(width):
                        out[i, k] += v * block[j, k]


# ----------------------------------------------------------------------
# dense-BLAS fallback helpers
# ----------------------------------------------------------------------
def _cached_dense(matrix: Any, transposed: bool = False):
    """The matrix's dense form, cached on the matrix object, or None.

    Returns None when the matrix exceeds ``REPRO_NATIVE_DENSE_CAP`` (the
    caller should fall back to scipy spmm) or the object refuses
    attribute assignment.
    """
    attr = _DENSE_T_ATTR if transposed else _DENSE_ATTR
    cached = getattr(matrix, attr, None)
    if cached is not None:
        return cached
    nrows, ncols = matrix.shape
    if nrows * ncols > dense_cap():
        return None
    dense = np.asarray(matrix.todense(), dtype=float)
    if transposed:
        dense = np.ascontiguousarray(dense.T)
    try:
        setattr(matrix, attr, dense)
    except AttributeError:  # exotic matrix types; recompute each call
        pass
    return dense


def _csr_arrays(matrix: Any):
    return (
        np.asarray(matrix.indptr),
        np.asarray(matrix.indices),
        np.asarray(matrix.data, dtype=float),
    )


# ----------------------------------------------------------------------
# public products
# ----------------------------------------------------------------------
def spmm(matrix: Any, block: Any) -> np.ndarray:
    """``matrix @ block`` -- sparse CSR times dense ``(n, k)`` block."""
    _check_forced_failure()
    block = np.asarray(block, dtype=float)
    squeeze = block.ndim == 1
    if squeeze:
        block = block[:, None]
    if _use_numba():  # pragma: no cover - numba CI leg
        indptr, indices, data = _csr_arrays(matrix)
        out = np.empty((matrix.shape[0], block.shape[1]), dtype=float)
        _nb_csr_spmm(indptr, indices, data, np.ascontiguousarray(block), out)
        return out[:, 0] if squeeze else out
    dense = _cached_dense(matrix)
    if dense is not None:
        out = dense @ block
    else:
        out = np.asarray(matrix @ block, dtype=float)
    return out[:, 0] if squeeze else out


def matvec(matrix: Any, x: Any) -> np.ndarray:
    """``matrix @ x`` for a dense vector ``x``."""
    _check_forced_failure()
    x = np.asarray(x, dtype=float)
    if _use_numba():  # pragma: no cover - numba CI leg
        indptr, indices, data = _csr_arrays(matrix)
        out = np.empty(matrix.shape[0], dtype=float)
        _nb_csr_matvec(indptr, indices, data, np.ascontiguousarray(x), out)
        return out
    dense = _cached_dense(matrix)
    if dense is not None:
        return dense @ x
    return np.asarray(matrix @ x, dtype=float)


def vecmat(x: Any, matrix: Any) -> np.ndarray:
    """``x @ matrix`` for a dense row vector ``x``."""
    _check_forced_failure()
    x = np.asarray(x, dtype=float)
    if _use_numba():  # pragma: no cover - numba CI leg
        indptr, indices, data = _csr_arrays(matrix)
        out = np.zeros((1, matrix.shape[1]), dtype=float)
        _nb_dense_spmm(
            indptr, indices, data, np.ascontiguousarray(x[None, :]), out
        )
        return out[0]
    dense = _cached_dense(matrix)
    if dense is not None:
        return x @ dense
    return np.asarray(x @ matrix, dtype=float)


def matmat(rows: Any, matrix: Any) -> np.ndarray:
    """``rows @ matrix`` -- the batched cohort sweep (dense stack x CSR)."""
    _check_forced_failure()
    rows = np.asarray(rows, dtype=float)
    if _use_numba():  # pragma: no cover - numba CI leg
        indptr, indices, data = _csr_arrays(matrix)
        out = np.empty((rows.shape[0], matrix.shape[1]), dtype=float)
        _nb_dense_spmm(
            indptr, indices, data, np.ascontiguousarray(rows), out
        )
        return out
    dense = _cached_dense(matrix)
    if dense is not None:
        return rows @ dense
    return np.asarray(rows @ matrix, dtype=float)


def ktimes_update(
    matrix: Any, block: Any, region_rows: Any
) -> np.ndarray:
    """One k-times count step: shift region rows right, then ``matrix @``.

    ``block`` is the ``(n_states, k+1)`` suffix-count block; rows listed
    in ``region_rows`` have their count distribution shifted one slot
    (count 0 zeroed) before the product, counting the visit that happens
    at this timestep.  Matches the unfused scipy path bit-for-bit in
    exact arithmetic.
    """
    _check_forced_failure()
    block = np.asarray(block, dtype=float)
    region_rows = np.asarray(region_rows, dtype=np.int64)
    if _use_numba():  # pragma: no cover - numba CI leg
        indptr, indices, data = _csr_arrays(matrix)
        is_region = np.zeros(block.shape[0], dtype=np.bool_)
        is_region[region_rows] = True
        out = np.empty((matrix.shape[0], block.shape[1]), dtype=float)
        _nb_ktimes_update(
            indptr, indices, data,
            np.ascontiguousarray(block), is_region, out,
        )
        return out
    shifted = block.copy()
    shifted[region_rows, 1:] = block[region_rows, :-1]
    shifted[region_rows, 0] = 0.0
    dense = _cached_dense(matrix)
    if dense is not None:
        return dense @ shifted
    return np.asarray(matrix @ shifted, dtype=float)


# ----------------------------------------------------------------------
# compilation / prewarm
# ----------------------------------------------------------------------
def prewarm() -> Dict[str, Any]:
    """Compile (numba) or exercise (fallback) every kernel on tiny inputs.

    Safe to call repeatedly; returns :func:`compile_status`.  With numba
    present this triggers JIT compilation ahead of the first real query
    (``cache=True`` persists the machine code, so fork-spawned dispatch
    workers inherit warm kernels).  Honoured even when a forced failure
    is armed -- prewarming must never raise.
    """
    global _PREWARMED
    try:
        import scipy.sparse as sp
    except ImportError:  # pragma: no cover - native requires scipy anyway
        return compile_status()
    n = 8
    rng_rows = np.arange(n, dtype=np.int64)
    tiny = sp.csr_matrix(
        (np.full(n, 0.5), (rng_rows, (rng_rows + 1) % n)),
        shape=(n, n), dtype=float,
    )
    block = np.ones((n, 3), dtype=float)
    forced = os.environ.pop("REPRO_NATIVE_FORCE_FAIL", None)
    try:
        spmm(tiny, block)
        matvec(tiny, block[:, 0])
        matmat(block.T[:2, :], tiny)
        vecmat(block[:, 0], tiny)
        ktimes_update(tiny, block, rng_rows[:2])
        _PREWARMED = True
    finally:
        if forced is not None:
            os.environ["REPRO_NATIVE_FORCE_FAIL"] = forced
    return compile_status()


def compile_status() -> Dict[str, Any]:
    """How native products will execute right now (doctor-reportable)."""
    kernels: List[str] = ["spmm", "matvec", "vecmat", "matmat", "ktimes_update"]
    return {
        "numba_installed": _HAVE_NUMBA,
        "numba_disabled": _disabled(),
        "mode": "numba-jit" if _use_numba() else "dense-blas",
        "prewarmed": _PREWARMED,
        "dense_cap_elements": dense_cap(),
        "kernels": kernels,
    }
