"""Sliding-window monitoring workloads.

The paper's motivating scenarios -- iceberg tracking, traffic
surveillance -- are *standing* queries: the same window re-issued every
tick as time advances, while objects enter the monitored area, are
re-sighted, and leave.  This generator produces exactly that shape on
top of the Table I synthetic model:

* a :class:`~repro.database.uncertain_db.TrajectoryDatabase` of
  initially-observed objects over one or more Table I chains;
* a base query window placed ``window_lead`` timestamps ahead, sliding
  ``stride`` timestamps per tick;
* a deterministic per-tick event script
  (:class:`TickEvents`): *arrivals* (new objects observed "now"),
  *re-sightings* (a later observation appended to a live object --
  always feasible, because it is generated around a state actually
  sampled from the object's own trajectory), and *departures*.

The script is data, not side effects: the caller applies each tick's
events through :meth:`MonitoringWorkload.apply` (which routes them
through the database's online
:meth:`~repro.database.uncertain_db.TrajectoryDatabase.append_observation`
/ :meth:`~repro.database.uncertain_db.TrajectoryDatabase.remove`
entry points), so incremental and from-scratch engines can be driven
over the *same* evolving database and compared tick by tick --
which is precisely what ``benchmarks/benchmark_streaming.py`` and the
streaming property tests do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.observation import Observation
from repro.core.query import PSTExistsQuery, SpatioTemporalWindow
from repro.core.state_space import LineStateSpace
from repro.core.trajectory import sample_trajectory
from repro.database.objects import UncertainObject
from repro.database.uncertain_db import TrajectoryDatabase
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

__all__ = [
    "MonitoringConfig",
    "TickEvents",
    "MonitoringWorkload",
    "make_monitoring_workload",
]


@dataclass(frozen=True)
class MonitoringConfig:
    """Parameters of one monitoring scenario.

    Attributes:
        n_objects: objects present at tick 0.
        n_states: Table I state-space size.
        n_chains: object classes (each with its own Table I chain).
        object_spread: states per observation pdf (Table I).
        state_spread: chain out-degree (Table I).
        max_step: chain locality bound (Table I).
        n_ticks: length of the event script.
        stride: timestamps the window advances per tick.
        window_low: lowest state of the query region.
        window_high: highest state of the query region.
        window_lead: how far ahead of the observations the window
            starts (``T_q`` begins at ``window_lead`` at tick 0).
        window_duration: number of query timestamps ``|T_q|``.
        arrivals_per_tick: new objects entering per tick.
        resightings_per_tick: live objects re-observed per tick.
        departures_per_tick: objects leaving per tick.
        seed: RNG seed; the full scenario is reproducible.
    """

    n_objects: int = 500
    n_states: int = 5_000
    n_chains: int = 1
    object_spread: int = 5
    state_spread: int = 5
    max_step: int = 40
    n_ticks: int = 50
    stride: int = 1
    window_low: int = 100
    window_high: int = 120
    window_lead: int = 20
    window_duration: int = 5
    arrivals_per_tick: int = 2
    resightings_per_tick: int = 2
    departures_per_tick: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValidationError(
                f"n_objects must be positive, got {self.n_objects}"
            )
        if self.n_chains < 1:
            raise ValidationError(
                f"n_chains must be positive, got {self.n_chains}"
            )
        if self.n_ticks < 1:
            raise ValidationError(
                f"n_ticks must be positive, got {self.n_ticks}"
            )
        if self.stride < 1:
            raise ValidationError(
                f"stride must be positive, got {self.stride}"
            )
        if self.window_lead < 1:
            raise ValidationError(
                f"window_lead must be positive (the window starts "
                f"ahead of the observations), got {self.window_lead}"
            )
        if not (
            0 <= self.window_low <= self.window_high < self.n_states
        ):
            raise ValidationError(
                f"window [{self.window_low}, {self.window_high}] "
                f"outside the {self.n_states}-state space"
            )


@dataclass(frozen=True)
class TickEvents:
    """The mutations arriving during one tick.

    Attributes:
        tick: the tick index the events precede.
        arrivals: new objects entering the database.
        resightings: ``(object_id, observation)`` pairs appended to
            live objects (each becomes a Section VI multi-observation
            object).
        departures: object ids leaving the database.
    """

    tick: int
    arrivals: Tuple[UncertainObject, ...] = ()
    resightings: Tuple[Tuple[str, Observation], ...] = ()
    departures: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return (
            len(self.arrivals)
            + len(self.resightings)
            + len(self.departures)
        )


@dataclass
class MonitoringWorkload:
    """A generated monitoring scenario.

    Attributes:
        config: the generating parameters.
        database: the tick-0 database (mutated in place by
            :meth:`apply`).
        query: the base (tick-0) standing query.
        events: one :class:`TickEvents` per tick.
    """

    config: MonitoringConfig
    database: TrajectoryDatabase
    query: PSTExistsQuery
    events: List[TickEvents]

    def apply(self, tick: int) -> TickEvents:
        """Apply tick ``tick``'s events to the database (returns them).

        Routes every event through the database's online mutation
        entry points, exercising the incremental R-tree/journal
        machinery exactly the way a live feed would.
        """
        events = self.events[tick]
        for obj in events.arrivals:
            self.database.add(obj)
        for object_id, observation in events.resightings:
            self.database.append_observation(object_id, observation)
        for object_id in events.departures:
            self.database.remove(object_id)
        return events

    def window_at(self, tick: int) -> SpatioTemporalWindow:
        """The query window evaluated at tick ``tick``."""
        offset = tick * self.config.stride
        return SpatioTemporalWindow(
            self.query.region,
            frozenset(t + offset for t in self.query.times),
        )


def _chain_id(index: int) -> str:
    return f"class-{index}"


def _walk(
    chain, state: int, steps: int, rng: np.random.Generator
) -> int:
    """Advance one sampled possible world ``steps`` transitions."""
    trajectory = sample_trajectory(
        chain,
        StateDistribution.point(chain.n_states, state),
        steps,
        rng,
    )
    return trajectory.states[-1]


def make_monitoring_workload(
    config: MonitoringConfig,
) -> MonitoringWorkload:
    """Generate a full monitoring scenario from ``config``.

    Tick ``k`` evaluates the window over times
    ``[window_lead + k * stride, window_lead + window_duration - 1 +
    k * stride]``; its events happen at "now" (``k * stride``), so
    every observation always precedes the window it is queried
    against.
    """
    rng = np.random.default_rng(config.seed)
    database = TrajectoryDatabase(
        config.n_states, state_space=LineStateSpace(config.n_states)
    )
    chains = []
    for index in range(config.n_chains):
        chain = make_line_chain(
            config.n_states,
            state_spread=config.state_spread,
            max_step=config.max_step,
            rng=rng,
        )
        database.register_chain(_chain_id(index), chain)
        chains.append(chain)

    for index in range(config.n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(
                    config.n_states, config.object_spread, rng
                ),
                chain_id=_chain_id(index % config.n_chains),
            )
        )

    window = SpatioTemporalWindow.from_ranges(
        config.window_low,
        config.window_high,
        config.window_lead,
        config.window_lead + config.window_duration - 1,
    )
    query = PSTExistsQuery(window)

    # script the events against a simulated "alive" set so departures
    # and re-sightings always reference live objects.  Each object
    # carries one sampled possible world (its "true" trajectory,
    # advanced lazily); re-sightings are uniform pdfs *around the true
    # state*, which keeps every appended observation feasible: the
    # true path has positive probability and positive weight under
    # each of its observations.
    alive: List[str] = list(database.object_ids)
    chain_index_of: dict = {}
    truth: dict = {}  # object_id -> (true state, its timestamp)
    for index, object_id in enumerate(database.object_ids):
        obj = database.get(object_id)
        chain_index_of[object_id] = index % config.n_chains
        truth[object_id] = (
            obj.initial.distribution.sample(rng),
            obj.initial.time,
        )
    events: List[TickEvents] = []
    next_arrival = 0
    last_sighting = {object_id: 0 for object_id in alive}
    for tick in range(config.n_ticks):
        now = tick * config.stride
        arrivals = []
        for _ in range(config.arrivals_per_tick):
            chain_index = next_arrival % config.n_chains
            distribution = make_object_distribution(
                config.n_states, config.object_spread, rng
            )
            obj = UncertainObject.with_distribution(
                f"arrival-{next_arrival}",
                distribution,
                time=now,
                chain_id=_chain_id(chain_index),
            )
            next_arrival += 1
            arrivals.append(obj)
            alive.append(obj.object_id)
            chain_index_of[obj.object_id] = chain_index
            truth[obj.object_id] = (distribution.sample(rng), now)
            last_sighting[obj.object_id] = now
        resightings = []
        if now >= 1:
            for _ in range(config.resightings_per_tick):
                object_id = alive[int(rng.integers(len(alive)))]
                if last_sighting[object_id] >= now:
                    continue  # already sighted this instant
                chain = chains[chain_index_of[object_id]]
                state, state_time = truth[object_id]
                state = _walk(chain, state, now - state_time, rng)
                truth[object_id] = (state, now)
                half = config.object_spread // 2
                observation = Observation.uniform(
                    now,
                    config.n_states,
                    range(
                        max(0, state - half),
                        min(config.n_states, state + half + 1),
                    ),
                )
                resightings.append((object_id, observation))
                last_sighting[object_id] = now
        departures = []
        for _ in range(config.departures_per_tick):
            if len(alive) <= 1:
                break
            object_id = alive.pop(int(rng.integers(len(alive))))
            if any(object_id == oid for oid, _ in resightings):
                alive.append(object_id)  # keep this tick consistent
                continue
            departures.append(object_id)
        events.append(
            TickEvents(
                tick=tick,
                arrivals=tuple(arrivals),
                resightings=tuple(resightings),
                departures=tuple(departures),
            )
        )
    return MonitoringWorkload(
        config=config,
        database=database,
        query=query,
        events=events,
    )
