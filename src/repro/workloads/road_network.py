"""Road-network workloads shaped like the paper's real datasets.

The paper evaluates on two road networks:

* **North America** -- 175,813 nodes / 179,102 edges (average degree
  ~2.04: almost tree-like),
* **Munich** -- 73,120 nodes / 93,925 edges (average degree ~2.57).

The raw datasets are not redistributable, so this module *synthesises*
networks with the same statistical signature (documented substitution,
DESIGN.md Section 4): nodes are placed on a jittered grid, connected into
a spanning structure plus extra local edges until the target edge count is
met.  Since the paper derives transition probabilities by randomising the
adjacency matrix rows ("set randomly and sum up to one"), degree
distribution and spatial locality are the only properties that matter for
runtime shape -- and those are matched.

Node counts default to one eighth of the originals so the benchmarks run
on a laptop; pass ``scale=1.0`` for full-size networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.markov import MarkovChain
from repro.core.state_space import GraphStateSpace
from repro.database.objects import UncertainObject
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = [
    "RoadNetworkConfig",
    "make_road_network",
    "make_road_transitions",
    "make_road_database",
    "munich_like_config",
    "north_america_like_config",
]


@dataclass(frozen=True)
class RoadNetworkConfig:
    """Shape parameters of a synthetic road network.

    Attributes:
        name: dataset label used in benchmark output.
        n_nodes: number of road-network nodes (= states).
        n_edges: number of undirected edges to generate.
        seed: RNG seed.
    """

    name: str
    n_nodes: int
    n_edges: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValidationError(
                f"n_nodes must be at least 2, got {self.n_nodes}"
            )
        if self.n_edges < self.n_nodes - 1:
            raise ValidationError(
                f"n_edges={self.n_edges} cannot connect "
                f"{self.n_nodes} nodes"
            )

    @property
    def average_degree(self) -> float:
        """``2 |E| / |V|`` of the generated network."""
        return 2.0 * self.n_edges / self.n_nodes


def munich_like_config(
    scale: float = 0.125, seed: int = 0
) -> RoadNetworkConfig:
    """A network with Munich's density (73,120 nodes / 93,925 edges).

    Args:
        scale: node-count scale factor (default 1/8 for laptop runs).
    """
    n_nodes = max(2, int(73_120 * scale))
    n_edges = max(n_nodes - 1, int(93_925 * scale))
    return RoadNetworkConfig("munich", n_nodes, n_edges, seed)


def north_america_like_config(
    scale: float = 0.125, seed: int = 0
) -> RoadNetworkConfig:
    """A network with North America's density (175,813 / 179,102)."""
    n_nodes = max(2, int(175_813 * scale))
    n_edges = max(n_nodes - 1, int(179_102 * scale))
    return RoadNetworkConfig("north_america", n_nodes, n_edges, seed)


def make_road_network(config: RoadNetworkConfig) -> GraphStateSpace:
    """Generate the synthetic road network graph.

    Nodes are laid out on a jittered ``w x h`` grid; a serpentine spanning
    path guarantees every node has at least one edge, then extra edges
    between grid neighbours are added (random order) until ``n_edges`` is
    reached.  The result is planar-ish and spatially local, like a real
    road network.
    """
    rng = np.random.default_rng(config.seed)
    n = config.n_nodes
    width = int(math.ceil(math.sqrt(n)))
    height = int(math.ceil(n / width))

    positions: Dict[int, Tuple[float, float]] = {}
    for node in range(n):
        gx, gy = node % width, node // width
        jitter = rng.uniform(-0.3, 0.3, size=2)
        positions[node] = (gx + float(jitter[0]), gy + float(jitter[1]))

    edges: List[Tuple[int, int]] = []
    # serpentine spanning path: gives connectivity with n-1 edges
    order: List[int] = []
    for gy in range(height):
        row = [gy * width + gx for gx in range(width)]
        row = [node for node in row if node < n]
        if gy % 2 == 1:
            row.reverse()
        order.extend(row)
    for a, b in zip(order, order[1:]):
        edges.append((a, b))

    # candidate extra edges: remaining grid-neighbour pairs
    used = set(frozenset(edge) for edge in edges)
    candidates: List[Tuple[int, int]] = []
    for node in range(n):
        gx, gy = node % width, node // width
        for dx, dy in ((1, 0), (0, 1), (1, 1), (1, -1)):
            ox, oy = gx + dx, gy + dy
            if 0 <= ox < width and 0 <= oy < height:
                other = oy * width + ox
                if other < n and frozenset((node, other)) not in used:
                    candidates.append((node, other))
    rng.shuffle(candidates)
    needed = config.n_edges - len(edges)
    for edge in candidates[: max(0, needed)]:
        edges.append(edge)

    return GraphStateSpace(
        nodes=list(range(n)),
        edges=edges,
        positions=positions,
        directed=False,
    )


def make_road_transitions(
    space: GraphStateSpace, seed: int = 0
) -> MarkovChain:
    """Random row-stochastic transitions over the network's adjacency.

    Exactly the paper's construction: "each node is treated as a state and
    each edge corresponds to two non-zero entries in the transition
    matrix.  The value of the non-zero entries of one line ... are set
    randomly and sum up to one."  Isolated nodes become absorbing.
    """
    rng = np.random.default_rng(seed)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for state in range(space.n_states):
        neighbors = space.out_neighbors(state)
        if not neighbors:
            rows.append(state)
            cols.append(state)
            vals.append(1.0)
            continue
        weights = rng.random(len(neighbors))
        weights /= weights.sum()
        for neighbor, weight in zip(neighbors, weights):
            rows.append(state)
            cols.append(neighbor)
            vals.append(float(weight))
    matrix = sp.csr_matrix(
        (vals, (rows, cols)),
        shape=(space.n_states, space.n_states),
        dtype=float,
    )
    return MarkovChain(matrix)


def make_road_database(
    config: RoadNetworkConfig,
    n_objects: int = 10_000,
    object_spread: int = 5,
) -> TrajectoryDatabase:
    """Full road-network database: network, chain, and random objects.

    Each object's initial pdf covers a node and up to
    ``object_spread - 1`` of its graph neighbours (random weights), the
    network analogue of Table I's ``object_spread``.
    """
    if n_objects < 1:
        raise ValidationError(
            f"n_objects must be positive, got {n_objects}"
        )
    space = make_road_network(config)
    chain = make_road_transitions(space, seed=config.seed + 1)
    database = TrajectoryDatabase.with_chain(chain, state_space=space)
    rng = np.random.default_rng(config.seed + 2)
    n_objects = min(n_objects, space.n_states)
    starts = rng.choice(space.n_states, size=n_objects, replace=False)
    for index, start in enumerate(starts):
        support = [int(start)]
        for neighbor in space.out_neighbors(int(start)):
            if len(support) >= object_spread:
                break
            support.append(neighbor)
        weights = rng.random(len(support))
        database.add(
            UncertainObject.with_distribution(
                f"car-{index}",
                StateDistribution.from_dict(
                    space.n_states,
                    {
                        state: float(weight)
                        for state, weight in zip(support, weights)
                    },
                    normalize=True,
                ),
            )
        )
    return database
