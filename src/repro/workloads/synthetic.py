"""The Table I synthetic workload generator.

The paper's synthetic datasets are parameterised by (Table I):

=============== =================== =========
parameter       value range         default
=============== =================== =========
``|D|``         1,000 - 100,000     10,000
``|S|``         2,000 - 100,000     100,000
object spread   5                   5
state spread    1 - 20              5
max step        10 - 100            40
=============== =================== =========

Semantics (Section VIII-A):

* each object's location at ``t_0`` is a pdf over ``object_spread``
  states;
* from each state it is possible to transition into ``state_spread``
  states;
* an object in state ``s_i`` can only transition into states
  ``s_j in [s_i - max_step/2, s_i + max_step/2]`` (transition locality);
* the default query window is states ``[100, 120]`` times ``[20, 25]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.markov import MarkovChain
from repro.core.query import SpatioTemporalWindow
from repro.core.state_space import LineStateSpace
from repro.database.objects import UncertainObject
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = [
    "SyntheticConfig",
    "make_line_chain",
    "make_synthetic_database",
    "default_paper_window",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic dataset (paper Table I).

    Attributes:
        n_objects: database size ``|D|``.
        n_states: state-space size ``|S|``.
        object_spread: states per object's initial pdf.
        state_spread: out-degree of each state.
        max_step: locality bound -- reachable window width per transition.
        seed: RNG seed for reproducible datasets.
    """

    n_objects: int = 10_000
    n_states: int = 100_000
    object_spread: int = 5
    state_spread: int = 5
    max_step: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValidationError(
                f"n_objects must be positive, got {self.n_objects}"
            )
        if self.n_states < 2:
            raise ValidationError(
                f"n_states must be at least 2, got {self.n_states}"
            )
        if self.object_spread < 1:
            raise ValidationError(
                f"object_spread must be positive, got {self.object_spread}"
            )
        if self.state_spread < 1:
            raise ValidationError(
                f"state_spread must be positive, got {self.state_spread}"
            )
        if self.max_step < 1:
            raise ValidationError(
                f"max_step must be positive, got {self.max_step}"
            )
        if self.state_spread > self.max_step + 1:
            raise ValidationError(
                f"state_spread={self.state_spread} exceeds the "
                f"max_step={self.max_step} locality window"
            )


def make_line_chain(
    n_states: int,
    state_spread: int = 5,
    max_step: int = 40,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> MarkovChain:
    """Generate the Table I transition matrix.

    Each state ``s_i`` gets ``state_spread`` distinct successor states
    drawn uniformly from ``[i - max_step/2, i + max_step/2]`` (clipped to
    the state space); the transition probabilities are random and
    normalised to sum one.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    half = max_step // 2
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    for state in range(n_states):
        low = max(0, state - half)
        high = min(n_states - 1, state + half)
        candidates = np.arange(low, high + 1)
        k = min(state_spread, candidates.size)
        targets = rng.choice(candidates, size=k, replace=False)
        weights = rng.random(k)
        weights /= weights.sum()
        rows.append(np.full(k, state, dtype=np.int64))
        cols.append(targets.astype(np.int64))
        vals.append(weights)
    matrix = sp.csr_matrix(
        (
            np.concatenate(vals),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(n_states, n_states),
        dtype=float,
    )
    return MarkovChain(matrix)


def make_object_distribution(
    n_states: int,
    object_spread: int,
    rng: np.random.Generator,
) -> StateDistribution:
    """One object's initial pdf: random weights over a contiguous block."""
    spread = min(object_spread, n_states)
    start = int(rng.integers(0, n_states - spread + 1))
    weights = rng.random(spread)
    return StateDistribution.from_dict(
        n_states,
        {start + offset: float(w) for offset, w in enumerate(weights)},
        normalize=True,
    )


def make_synthetic_database(
    config: SyntheticConfig,
) -> TrajectoryDatabase:
    """Build the full synthetic database for one parameter setting.

    Objects are "randomly distributed across the state space" as in the
    paper's experiments, each with an ``object_spread``-state pdf at
    ``t = 0``, all sharing one Table I chain.
    """
    rng = np.random.default_rng(config.seed)
    chain = make_line_chain(
        config.n_states,
        state_spread=config.state_spread,
        max_step=config.max_step,
        rng=rng,
    )
    space = LineStateSpace(config.n_states)
    database = TrajectoryDatabase.with_chain(chain, state_space=space)
    for index in range(config.n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(
                    config.n_states, config.object_spread, rng
                ),
            )
        )
    return database


def default_paper_window(
    n_states: Optional[int] = None,
    state_low: int = 100,
    state_high: int = 120,
    time_low: int = 20,
    time_high: int = 25,
) -> SpatioTemporalWindow:
    """The paper's default query: states [100, 120], times [20, 25].

    Args:
        n_states: when given, validate the window fits the state space.
    """
    window = SpatioTemporalWindow.from_ranges(
        state_low, state_high, time_low, time_high
    )
    if n_states is not None:
        window.validate_for(n_states)
    return window
