"""Workload generators for the paper's evaluation (Section VIII-A).

* :mod:`repro.workloads.synthetic` -- the Table I synthetic generator
  (``|D|``, ``|S|``, ``object_spread``, ``state_spread``, ``max_step``).
* :mod:`repro.workloads.road_network` -- road-network workloads shaped
  like the paper's Munich and North America datasets.
* :mod:`repro.workloads.icebergs` -- the iceberg-drift application from
  the paper's introduction (grid state space driven by an ocean-current
  field).
"""

from repro.workloads.synthetic import (
    SyntheticConfig,
    make_line_chain,
    make_synthetic_database,
    default_paper_window,
)
from repro.workloads.road_network import (
    RoadNetworkConfig,
    make_road_network,
    make_road_database,
    munich_like_config,
    north_america_like_config,
)
from repro.workloads.icebergs import (
    OceanCurrentField,
    make_iceberg_chain,
    make_iceberg_database,
)
from repro.workloads.monitoring import (
    MonitoringConfig,
    MonitoringWorkload,
    TickEvents,
    make_monitoring_workload,
)

__all__ = [
    "SyntheticConfig",
    "make_line_chain",
    "make_synthetic_database",
    "default_paper_window",
    "RoadNetworkConfig",
    "make_road_network",
    "make_road_database",
    "munich_like_config",
    "north_america_like_config",
    "OceanCurrentField",
    "make_iceberg_chain",
    "make_iceberg_database",
    "MonitoringConfig",
    "MonitoringWorkload",
    "TickEvents",
    "make_monitoring_workload",
]
