"""The iceberg-drift application from the paper's introduction.

The International Ice Patrol scenario: icebergs drift with ocean currents
near the Grand Banks; a database stores (uncertain, possibly stale)
sightings and must answer queries such as *"find all icebergs with
non-zero probability to enter a ship's route during its crossing"*.

The real IIP sighting data is not available offline, so this module
synthesises the same structure (documented substitution, DESIGN.md
Section 4):

* a 2-D :class:`~repro.core.state_space.GridStateSpace` over the ocean
  region;
* an :class:`OceanCurrentField` -- a smooth vector field (a configurable
  gyre plus a southward Labrador-current component) that determines drift
  direction;
* a Markov chain whose transition from a cell distributes probability
  over the neighbouring cells by alignment with the local current, plus
  isotropic diffusion for observation/model error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.markov import MarkovChain
from repro.core.state_space import GridStateSpace
from repro.database.objects import UncertainObject
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = [
    "OceanCurrentField",
    "make_iceberg_chain",
    "make_iceberg_database",
]


@dataclass(frozen=True)
class OceanCurrentField:
    """A smooth synthetic ocean-current field.

    The field combines a circular gyre around ``gyre_center`` with a
    constant southward drift -- qualitatively the Labrador current
    carrying icebergs south past the Grand Banks.

    Attributes:
        gyre_center: centre of the circular component (grid coordinates).
        gyre_strength: angular speed scale of the gyre.
        drift: constant ``(vx, vy)`` added everywhere.
    """

    gyre_center: Tuple[float, float] = (0.0, 0.0)
    gyre_strength: float = 0.5
    drift: Tuple[float, float] = (0.0, -1.0)

    def velocity(self, x: float, y: float) -> Tuple[float, float]:
        """Current velocity at a point (grid units per timestep)."""
        dx = x - self.gyre_center[0]
        dy = y - self.gyre_center[1]
        # rotate the radial vector 90 degrees for circular flow
        vx = -self.gyre_strength * dy + self.drift[0]
        vy = self.gyre_strength * dx + self.drift[1]
        return (vx, vy)


def make_iceberg_chain(
    grid: GridStateSpace,
    field: Optional[OceanCurrentField] = None,
    diffusion: float = 0.3,
    stay_probability: float = 0.1,
) -> MarkovChain:
    """Transition matrix for iceberg drift on ``grid``.

    From each cell, probability mass is distributed over the 8-neighbour
    cells (plus staying put) with weight
    ``exp(alignment / diffusion)`` where ``alignment`` is the dot product
    of the neighbour direction with the normalised local current --
    a softmax drift model.  Larger ``diffusion`` means noisier drift
    (more uncertainty per step).

    Args:
        grid: the ocean raster.
        field: the current field (default: mild gyre + southward drift).
        diffusion: softmax temperature, must be positive.
        stay_probability: baseline weight for remaining in the cell.
    """
    if diffusion <= 0:
        raise ValidationError(
            f"diffusion must be positive, got {diffusion}"
        )
    if not (0.0 <= stay_probability < 1.0):
        raise ValidationError(
            f"stay_probability must be in [0, 1), got {stay_probability}"
        )
    if field is None:
        center = (grid.width / 2.0, grid.height / 2.0)
        field = OceanCurrentField(gyre_center=center)

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for state in grid.all_states():
        x, y = grid.location_of(state)
        vx, vy = field.velocity(x, y)
        speed = math.hypot(vx, vy)
        if speed > 0:
            vx, vy = vx / speed, vy / speed
        neighbors = grid.neighbors(state, diagonal=True)
        weights = []
        for neighbor in neighbors:
            nx, ny = grid.location_of(neighbor)
            dx, dy = nx - x, ny - y
            norm = math.hypot(dx, dy)
            alignment = (dx * vx + dy * vy) / norm if norm else 0.0
            weights.append(math.exp(alignment / diffusion))
        total = sum(weights)
        stay_weight = (
            stay_probability / (1.0 - stay_probability) * total
            if total
            else 1.0
        )
        weights.append(stay_weight)
        neighbors.append(state)
        total += stay_weight
        for neighbor, weight in zip(neighbors, weights):
            rows.append(state)
            cols.append(neighbor)
            vals.append(weight / total)
    matrix = sp.csr_matrix(
        (vals, (rows, cols)),
        shape=(grid.n_states, grid.n_states),
        dtype=float,
    )
    return MarkovChain(matrix)


def make_iceberg_database(
    grid: GridStateSpace,
    n_icebergs: int = 50,
    sighting_uncertainty: int = 1,
    field: Optional[OceanCurrentField] = None,
    diffusion: float = 0.3,
    seed: int = 0,
) -> TrajectoryDatabase:
    """A database of icebergs with uncertain sightings.

    Each iceberg gets one sighting at ``t = 0``: a pdf spread over the
    cells within ``sighting_uncertainty`` (Chebyshev) of the true cell,
    weighted by a discrete Gaussian -- the "observation measurement
    error" of the introduction.

    Args:
        grid: the ocean raster.
        n_icebergs: number of tracked icebergs.
        sighting_uncertainty: radius (in cells) of the sighting pdf.
        field: current field forwarded to :func:`make_iceberg_chain`.
        diffusion: drift noise forwarded to :func:`make_iceberg_chain`.
        seed: RNG seed for iceberg placement.
    """
    if n_icebergs < 1:
        raise ValidationError(
            f"n_icebergs must be positive, got {n_icebergs}"
        )
    if sighting_uncertainty < 0:
        raise ValidationError(
            f"sighting_uncertainty must be non-negative, "
            f"got {sighting_uncertainty}"
        )
    chain = make_iceberg_chain(grid, field=field, diffusion=diffusion)
    database = TrajectoryDatabase.with_chain(chain, state_space=grid)
    rng = np.random.default_rng(seed)
    for index in range(n_icebergs):
        cx = int(rng.integers(0, grid.width))
        cy = int(rng.integers(0, grid.height))
        weights = {}
        r = sighting_uncertainty
        for dy in range(-r, r + 1):
            for dx in range(-r, r + 1):
                x, y = cx + dx, cy + dy
                if 0 <= x < grid.width and 0 <= y < grid.height:
                    weight = math.exp(-(dx * dx + dy * dy) / 2.0)
                    weights[grid.state_of_cell(x, y)] = weight
        database.add(
            UncertainObject.with_distribution(
                f"iceberg-{index}",
                StateDistribution.from_dict(
                    grid.n_states, weights, normalize=True
                ),
            )
        )
    return database
