"""Out-of-core sharded trajectory storage.

The storage tier under the engine: :class:`ShardedTrajectoryStore`
is a drop-in :class:`~repro.database.uncertain_db.TrajectoryDatabase`
whose observations live in memory-mapped columnar slabs partitioned by
chain × spatial tile, with an on-disk snapshot/journal format that
survives restarts and persistent shard workers that attach the slabs
zero-copy (see :mod:`repro.exec.dispatch`).
"""

from repro.store.journal import StoreJournal
from repro.store.slabs import RAM_CAP_ENV, SlabPool, global_pool, ram_cap_bytes
from repro.store.sharded import (
    ShardedTrajectoryStore,
    ShardView,
    SlabDistribution,
    attach_shard,
    open_store_chain,
    store_health,
    sweep_stale_snapshots,
)

__all__ = [
    "ShardedTrajectoryStore",
    "ShardView",
    "SlabDistribution",
    "StoreJournal",
    "SlabPool",
    "RAM_CAP_ENV",
    "global_pool",
    "ram_cap_bytes",
    "attach_shard",
    "open_store_chain",
    "store_health",
    "sweep_stale_snapshots",
]
