"""The out-of-core sharded trajectory store.

:class:`ShardedTrajectoryStore` is a drop-in
:class:`~repro.database.uncertain_db.TrajectoryDatabase` whose
observation payloads live in memory-mapped columnar slabs on disk,
partitioned by **chain × spatial tile**.  Planner, pipeline, streaming
and service tiers run on it unchanged; what changes is *where bytes
live*:

* every observation distribution is a :class:`SlabDistribution` that
  densifies its sparse slab row on access through the process-wide
  :class:`~repro.store.slabs.SlabPool` -- resident bytes are bounded
  by ``REPRO_STORE_RAM_CAP``, not by the dataset;
* shard workers (:func:`repro.exec.dispatch.run_store_shards`) attach
  the same slab files zero-copy through the OS page cache -- no
  pickling, no per-query shared-memory publish;
* mutations after a snapshot go to an in-RAM overlay plus the on-disk
  :class:`~repro.store.journal.StoreJournal`, routed to the owning
  shard, so a restart replays to the exact pre-crash state and
  :meth:`snapshot` folds the journal into a new slab generation.

On-disk layout (all writes atomic via tmp-file + rename)::

    store/
      manifest.json            # schema, chains, shard index, version
      positions.npy            # optional state coordinates
      chains/chain-000.*.npy   # CSR triples per registered chain
      snapshot-000001/
        shard-0000/
          obs_states.npy       # int32 support columns, ragged
          obs_weights.npy      # float64 support weights
          obs_indptr.npy       # int64 (n_obs + 1) row boundaries
          obs_times.npy        # int64 per-observation timestamps
          obj_indptr.npy       # int64 (n_objects + 1) object boundaries
          obj_mbr.npy          # float64 (n_objects, 4) first-obs MBRs
          obj_dbindex.npy      # int64 stable per-object seed positions
          objects.json         # object ids + chain id
      journal.jsonl            # mutations since the snapshot
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.distribution import StateDistribution
from repro.core.errors import SerializationError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.observation import Observation, ObservationSet
from repro.core.state_space import PointStateSpace, StateSpace
from repro.database.objects import UncertainObject
from repro.database.uncertain_db import TrajectoryDatabase
from repro.store.journal import StoreJournal
from repro.store.slabs import SlabPool, global_pool, write_slab

__all__ = [
    "ShardedTrajectoryStore",
    "SlabDistribution",
    "ShardView",
    "attach_shard",
    "open_store_chain",
    "store_health",
    "sweep_stale_snapshots",
]

_SCHEMA_VERSION = 1
_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"
_SNAPSHOT_PREFIX = "snapshot-"

#: journal records that trigger :meth:`ShardedTrajectoryStore.maybe_autosnapshot`
AUTOSNAPSHOT_ENV = "REPRO_STORE_AUTOSNAPSHOT"
_AUTOSNAPSHOT_DEFAULT = 4096

_SLAB_FILES = (
    "obs_states.npy",
    "obs_weights.npy",
    "obs_indptr.npy",
    "obs_times.npy",
    "obj_indptr.npy",
    "obj_mbr.npy",
    "obj_dbindex.npy",
)


def _snapshot_dir(root: Path, generation: int) -> Path:
    return Path(root) / f"{_SNAPSHOT_PREFIX}{int(generation):06d}"


def _write_json_atomic(path: Path, payload: Dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _load_manifest(root: Path) -> Dict:
    path = Path(root) / _MANIFEST
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise SerializationError(
            f"{root} is not a trajectory store (no {_MANIFEST})"
        ) from None
    except json.JSONDecodeError as error:
        raise SerializationError(
            f"corrupt store manifest {path}: {error}"
        ) from error
    if manifest.get("schema_version") != _SCHEMA_VERSION:
        raise SerializationError(
            f"store schema {manifest.get('schema_version')!r} not "
            f"supported (this build reads {_SCHEMA_VERSION})"
        )
    return manifest


# ----------------------------------------------------------------------
# lazy slab-backed distributions
# ----------------------------------------------------------------------
class SlabDistribution(StateDistribution):
    """A distribution whose weights live in a memory-mapped slab.

    Holds only *paths and offsets* -- cheap, picklable, and never pins
    slab pages: :attr:`_vector` densifies the sparse row on every
    access through the process-wide pool, so evicting the mapping is
    always safe and resident bytes stay under ``REPRO_STORE_RAM_CAP``.
    """

    __slots__ = ("_states_path", "_weights_path", "_lo", "_hi", "_n")

    def __init__(
        self,
        states_path: str,
        weights_path: str,
        lo: int,
        hi: int,
        n_states: int,
    ) -> None:
        self._states_path = str(states_path)
        self._weights_path = str(weights_path)
        self._lo = int(lo)
        self._hi = int(hi)
        self._n = int(n_states)

    @property
    def _vector(self) -> np.ndarray:  # shadows the base-class slot
        pool = global_pool()
        states = pool.map(self._states_path)[self._lo:self._hi]
        weights = pool.map(self._weights_path)[self._lo:self._hi]
        vector = np.zeros(self._n, dtype=float)
        vector[states] = weights
        vector.setflags(write=False)
        return vector

    @property
    def n_states(self) -> int:
        return self._n

    def support(self) -> Tuple[int, ...]:
        states = global_pool().map(self._states_path)[self._lo:self._hi]
        return tuple(int(s) for s in states)

    def support_size(self) -> int:
        return self._hi - self._lo

    def __repr__(self) -> str:
        return (
            f"SlabDistribution(n={self._n}, support={self.support_size()},"
            f" slab={os.path.basename(os.path.dirname(self._states_path))})"
        )


# ----------------------------------------------------------------------
# shard views (parent fallback + worker attachment)
# ----------------------------------------------------------------------
@dataclass
class ShardView:
    """One shard's columns, attached through the slab pool.

    The heavy ragged columns (support states/weights, per-object MBRs)
    stay memory-mapped and are accessed through :meth:`states` /
    :meth:`weights` / :meth:`mbrs`; the small index columns are copied
    into RAM once at attach time.
    """

    store_dir: str
    generation: int
    shard_id: str
    chain_id: str
    n_states: int
    object_ids: List[str]
    obs_indptr: np.ndarray
    obs_times: np.ndarray
    obj_indptr: np.ndarray
    obj_dbindex: np.ndarray
    displacement_bound: Optional[float]
    has_mbr: bool

    @property
    def slab_dir(self) -> Path:
        return _snapshot_dir(Path(self.store_dir), self.generation) / self.shard_id

    def states(self) -> np.ndarray:
        return global_pool().map(self.slab_dir / "obs_states.npy")

    def weights(self) -> np.ndarray:
        return global_pool().map(self.slab_dir / "obs_weights.npy")

    def mbrs(self) -> np.ndarray:
        return global_pool().map(self.slab_dir / "obj_mbr.npy")

    def n_objects(self) -> int:
        return len(self.object_ids)

    def observations_of(self, index: int) -> ObservationSet:
        """Materialise object ``index``'s observation set from the slab."""
        lo, hi = int(self.obj_indptr[index]), int(self.obj_indptr[index + 1])
        states = self.states()
        weights = self.weights()
        observations = []
        for row in range(lo, hi):
            a, b = int(self.obs_indptr[row]), int(self.obs_indptr[row + 1])
            # weights are exact copies of the source vector entries,
            # so the rebuilt dense row passes validation unchanged --
            # normalising here would perturb bits the parity suite
            # compares at 1e-12
            observations.append(Observation(
                int(self.obs_times[row]),
                StateDistribution.from_support(
                    self.n_states,
                    np.asarray(states[a:b]),
                    np.asarray(weights[a:b]),
                ),
            ))
        return ObservationSet(tuple(observations))


_ATTACH_LOCK = threading.Lock()
_SHARD_VIEWS: Dict[Tuple[str, int, str], ShardView] = {}
_MANIFESTS: Dict[Tuple[str, int], Dict] = {}
_CHAINS: Dict[Tuple[str, str], MarkovChain] = {}


def _manifest_for(store_dir: str, generation: int) -> Dict:
    key = (str(store_dir), int(generation))
    with _ATTACH_LOCK:
        cached = _MANIFESTS.get(key)
    if cached is not None:
        return cached
    manifest = _load_manifest(Path(store_dir))
    if int(manifest["generation"]) != int(generation):
        raise SerializationError(
            f"store {store_dir} is at generation "
            f"{manifest['generation']}, task expects {generation}"
        )
    with _ATTACH_LOCK:
        _MANIFESTS[key] = manifest
    return manifest


def attach_shard(
    store_dir: str, generation: int, shard_id: str
) -> Tuple[ShardView, bool]:
    """Attach one shard's slabs; returns ``(view, freshly_attached)``.

    Cached per process: a persistent shard worker attaches each slab
    exactly once per generation and serves every later query from the
    same mapping -- the "no re-publish per query" half of zero-copy
    (the other half is that the mapping shares pages with every other
    process through the OS page cache).
    """
    key = (str(store_dir), int(generation), str(shard_id))
    with _ATTACH_LOCK:
        view = _SHARD_VIEWS.get(key)
    if view is not None:
        return view, False
    manifest = _manifest_for(store_dir, generation)
    entry = next(
        (s for s in manifest["shards"] if s["shard_id"] == shard_id), None
    )
    if entry is None:
        raise SerializationError(
            f"store {store_dir} has no shard {shard_id!r}"
        )
    slab_dir = _snapshot_dir(Path(store_dir), generation) / shard_id
    with open(slab_dir / "objects.json", "r", encoding="utf-8") as handle:
        objects = json.load(handle)
    view = ShardView(
        store_dir=str(store_dir),
        generation=int(generation),
        shard_id=str(shard_id),
        chain_id=str(entry["chain_id"]),
        n_states=int(manifest["n_states"]),
        object_ids=list(objects["object_ids"]),
        obs_indptr=np.load(slab_dir / "obs_indptr.npy"),
        obs_times=np.load(slab_dir / "obs_times.npy"),
        obj_indptr=np.load(slab_dir / "obj_indptr.npy"),
        obj_dbindex=np.load(slab_dir / "obj_dbindex.npy"),
        displacement_bound=manifest["chains"]
        .get(str(entry["chain_id"]), {})
        .get("displacement_bound"),
        has_mbr=bool(manifest.get("has_positions")),
    )
    with _ATTACH_LOCK:
        _SHARD_VIEWS[key] = view
    return view, True


def open_store_chain(store_dir: str, chain_id: str) -> MarkovChain:
    """The chain's CSR, memory-mapped (cached per process)."""
    manifest = _load_manifest(Path(store_dir))
    entry = manifest["chains"][str(chain_id)]
    key = (str(store_dir), str(entry["fingerprint"]))
    with _ATTACH_LOCK:
        chain = _CHAINS.get(key)
    if chain is not None:
        return chain
    chain = _read_chain(Path(store_dir), entry, int(manifest["n_states"]))
    with _ATTACH_LOCK:
        _CHAINS[key] = chain
    return chain


def store_positions(store_dir: str) -> Optional[np.ndarray]:
    """State coordinates, memory-mapped (None without geometry)."""
    path = Path(store_dir) / "positions.npy"
    if not path.exists():
        return None
    return global_pool().map(path)


def _read_chain(
    root: Path, entry: Dict, n_states: int
) -> MarkovChain:
    stem = entry["files"]
    data = np.load(root / "chains" / f"{stem}.data.npy", mmap_mode="r")
    indices = np.load(root / "chains" / f"{stem}.indices.npy", mmap_mode="r")
    indptr = np.load(root / "chains" / f"{stem}.indptr.npy", mmap_mode="r")
    matrix = sp.csr_matrix(
        (data, indices, indptr), shape=(n_states, n_states), copy=False
    )
    chain = MarkovChain(matrix, validate=False)
    fingerprint = entry.get("fingerprint")
    if fingerprint:
        chain._fingerprint_cache = fingerprint
    return chain


def _write_chain(root: Path, stem: str, chain: MarkovChain) -> None:
    directory = root / "chains"
    directory.mkdir(parents=True, exist_ok=True)
    matrix = chain.matrix.tocsr()
    write_slab(directory / f"{stem}.data.npy",
               np.asarray(matrix.data, dtype=np.float64))
    write_slab(directory / f"{stem}.indices.npy",
               np.asarray(matrix.indices, dtype=np.int32))
    write_slab(directory / f"{stem}.indptr.npy",
               np.asarray(matrix.indptr, dtype=np.int32))


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
class ShardedTrajectoryStore(TrajectoryDatabase):
    """A :class:`TrajectoryDatabase` over memory-mapped columnar shards.

    Open an existing store with the constructor, build one from an
    in-RAM database with :meth:`create`.  Everything a
    ``TrajectoryDatabase`` can do works here -- adds, removes, online
    ``append_observation``, chain re-registration, streaming standing
    queries -- with mutations journaled to disk (routed to their
    owning shard) and folded into a new slab generation by
    :meth:`snapshot`.
    """

    #: pipeline marker: queries can scatter-gather over this database's
    #: shards through :func:`repro.exec.dispatch.run_store_shards`
    supports_shard_scatter = True

    def __init__(
        self,
        path: Union[str, Path],
        state_space: Optional[StateSpace] = None,
    ) -> None:
        self.path = Path(path)
        manifest = _load_manifest(self.path)
        self.store_id = str(manifest["store_id"])
        self.generation = int(manifest["generation"])
        if state_space is None and manifest.get("has_positions"):
            positions = np.array(np.load(self.path / "positions.npy"))
            state_space = PointStateSpace(positions)
        super().__init__(int(manifest["n_states"]), state_space)
        self._manifest = manifest
        self._persist = False  # suppress disk journaling during load
        self._chain_files: Dict[str, str] = {
            cid: entry["files"] for cid, entry in manifest["chains"].items()
        }
        #: object id -> owning shard id (assigned at snapshot or first add)
        self._shard_of: Dict[str, str] = {}
        #: snapshot members whose slab row no longer reflects them
        self._stale: Set[str] = set()
        #: ids present in the current slab generation
        self._snapshot_ids: Set[str] = set()
        self._seed_positions: Dict[str, int] = {}
        self._next_seed = 0
        self._load_chains(manifest)
        self._load_shards(manifest)
        self._version = int(manifest["version"])
        self._journal_dropped = self._version
        self._disk_journal = StoreJournal(
            self.path / _JOURNAL, base_version=self._version
        )
        for record in self._disk_journal.load():
            self._apply(record)
        self._persist = True

    # ------------------------------------------------------------------
    # construction from an in-RAM database
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        database: TrajectoryDatabase,
        shards_per_chain: int = 8,
    ) -> "ShardedTrajectoryStore":
        """Lay ``database`` out as a store at ``path`` and open it.

        Objects are partitioned per chain into ``shards_per_chain``
        spatial tiles (contiguous slices of the first-observation
        centroid ordering, so each tile is compact and the per-shard
        MBR prunes whole shards against a query region).
        """
        root = Path(path)
        if (root / _MANIFEST).exists():
            raise ValidationError(f"store already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        positions = database.state_positions()
        if positions is not None:
            write_slab(root / "positions.npy",
                       np.asarray(positions, dtype=float))
        chains_meta: Dict[str, Dict] = {}
        for index, chain_id in enumerate(database.chain_ids):
            stem = f"chain-{index:03d}"
            chain = database.chain(chain_id)
            _write_chain(root, stem, chain)
            chains_meta[chain_id] = {
                "files": stem,
                "fingerprint": chain.fingerprint(),
                "displacement_bound":
                    database.chain_displacement_bound(chain_id),
            }
        seed_of = getattr(database, "seed_positions", None)
        seed_of = seed_of() if callable(seed_of) else {
            oid: index for index, oid in enumerate(database.object_ids)
        }
        shards = _write_snapshot_dirs(
            root, 1, database.objects_by_chain(), positions,
            seed_of, shards_per_chain,
        )
        manifest = {
            "schema_version": _SCHEMA_VERSION,
            "store_id": os.urandom(6).hex(),
            "n_states": database.n_states,
            "generation": 1,
            "version": database.version,
            "has_positions": positions is not None,
            "chains": chains_meta,
            "shards": shards,
            "shard_journal_offsets": {},
        }
        _write_json_atomic(root / _MANIFEST, manifest)
        return cls(root, state_space=database.state_space)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load_chains(self, manifest: Dict) -> None:
        for chain_id, entry in manifest["chains"].items():
            chain = _read_chain(self.path, entry, self.n_states)
            self._chains[chain_id] = chain
            bound = entry.get("displacement_bound")
            if bound is not None:
                self._displacement_bounds[chain_id] = float(bound)

    def _load_shards(self, manifest: Dict) -> None:
        for entry in manifest["shards"]:
            shard_id = entry["shard_id"]
            slab_dir = _snapshot_dir(self.path, self.generation) / shard_id
            try:
                view, _fresh = attach_shard(
                    str(self.path), self.generation, shard_id
                )
            except (OSError, KeyError, ValueError) as error:
                raise SerializationError(
                    f"shard {shard_id} of store {self.path} is "
                    f"unreadable: {error}"
                ) from error
            states_path = str(slab_dir / "obs_states.npy")
            weights_path = str(slab_dir / "obs_weights.npy")
            for index, object_id in enumerate(view.object_ids):
                lo = int(view.obj_indptr[index])
                hi = int(view.obj_indptr[index + 1])
                observations = tuple(
                    Observation(
                        int(view.obs_times[row]),
                        SlabDistribution(
                            states_path,
                            weights_path,
                            int(view.obs_indptr[row]),
                            int(view.obs_indptr[row + 1]),
                            self.n_states,
                        ),
                    )
                    for row in range(lo, hi)
                )
                obj = UncertainObject(
                    object_id=object_id,
                    observations=ObservationSet(observations),
                    chain_id=view.chain_id,
                )
                self._objects[object_id] = obj
                self._shard_of[object_id] = shard_id
                self._snapshot_ids.add(object_id)
                seed = int(view.obj_dbindex[index])
                self._seed_positions[object_id] = seed
                self._next_seed = max(self._next_seed, seed + 1)

    def _apply(self, record: Dict) -> None:
        """Replay one journal record (disk journaling suppressed)."""
        op = record.get("op")
        object_id = record.get("id")
        if op == "chain":
            entry = {"files": record["files"],
                     "fingerprint": record.get("fingerprint")}
            self._chain_files[object_id] = record["files"]
            chain = _read_chain(self.path, entry, self.n_states)
            super().register_chain(object_id, chain)
        elif op == "add":
            observations = tuple(
                StoreJournal.decode_observation(obs, self.n_states)
                for obs in record["observations"]
            )
            self.add(UncertainObject(
                object_id=object_id,
                observations=ObservationSet(observations),
                chain_id=record["chain_id"],
            ))
        elif op == "observe":
            existing = self._objects.get(object_id)
            if existing is None:
                raise SerializationError(
                    f"journal observes unknown object {object_id!r}"
                )
            observations = tuple(
                StoreJournal.decode_observation(obs, self.n_states)
                for obs in record["observations"]
            )
            self._objects[object_id] = replace(
                existing, observations=ObservationSet(observations)
            )
            self._record("observe", object_id)
        elif op == "remove":
            self.remove(object_id)
        else:
            raise SerializationError(
                f"unknown journal op {op!r} in store {self.path}"
            )

    # ------------------------------------------------------------------
    # journaled mutation hooks
    # ------------------------------------------------------------------
    def _record(self, op: str, object_id: str) -> None:
        super()._record(op, object_id)
        record: Dict = {"op": op, "id": object_id, "v": self._version}
        if op == "chain":
            record["files"] = self._chain_files.get(object_id)
            chain = self._chains.get(object_id)
            if chain is not None:
                record["fingerprint"] = chain.fingerprint()
        elif op == "add":
            obj = self._objects[object_id]
            record["shard"] = self._route(obj)
            record["chain_id"] = obj.chain_id
            record["observations"] = [
                StoreJournal.encode_observation(obs)
                for obs in obj.observations
            ]
            self._seed_positions.setdefault(object_id, self._take_seed())
        elif op == "observe":
            obj = self._objects[object_id]
            record["shard"] = self._shard_of.get(object_id)
            record["observations"] = [
                StoreJournal.encode_observation(obs)
                for obs in obj.observations
            ]
            if object_id in self._snapshot_ids:
                self._stale.add(object_id)
        elif op == "remove":
            record["shard"] = self._shard_of.get(object_id)
            if object_id in self._snapshot_ids:
                self._stale.add(object_id)
        if self._persist:
            self._disk_journal.append(record)

    def register_chain(self, chain_id: str, chain: MarkovChain) -> None:
        chain_id = str(chain_id)
        if self._persist:
            stem = self._chain_files.get(
                chain_id, f"chain-{len(self._chain_files):03d}"
            )
            _write_chain(self.path, stem, chain)
            self._chain_files[chain_id] = stem
        super().register_chain(chain_id, chain)

    def _take_seed(self) -> int:
        seed = self._next_seed
        self._next_seed += 1
        return seed

    def _centroid(self, obj: UncertainObject) -> Optional[Tuple[float, float]]:
        positions = self.state_positions()
        support = list(obj.initial.distribution.support())
        if not support:
            return None
        if positions is None:
            return (float(np.mean(support)), 0.0)
        points = np.atleast_2d(positions[support])
        x = float(points[:, 0].mean())
        y = float(points[:, 1].mean()) if points.shape[1] > 1 else 0.0
        return (x, y)

    def _route(self, obj: UncertainObject) -> str:
        """The owning shard of an object (stable once assigned)."""
        existing = self._shard_of.get(obj.object_id)
        if existing is not None:
            return existing
        candidates = [
            entry for entry in self._manifest["shards"]
            if entry["chain_id"] == obj.chain_id and entry.get("mbr")
        ]
        centroid = self._centroid(obj)
        if not candidates or centroid is None:
            any_chain = [
                entry for entry in self._manifest["shards"]
                if entry["chain_id"] == obj.chain_id
            ]
            shard = (any_chain[0]["shard_id"] if any_chain
                     else f"overlay:{obj.chain_id}")
        else:
            def distance(entry: Dict) -> float:
                minx, miny, maxx, maxy = entry["mbr"]
                cx, cy = (minx + maxx) / 2.0, (miny + maxy) / 2.0
                return (cx - centroid[0]) ** 2 + (cy - centroid[1]) ** 2

            containing = [
                entry for entry in candidates
                if entry["mbr"][0] <= centroid[0] <= entry["mbr"][2]
                and entry["mbr"][1] <= centroid[1] <= entry["mbr"][3]
            ]
            pool = containing or candidates
            shard = min(pool, key=distance)["shard_id"]
        self._shard_of[obj.object_id] = shard
        return shard

    # ------------------------------------------------------------------
    # scatter-gather support (pipeline + dispatch)
    # ------------------------------------------------------------------
    def store_shards(
        self, chain_id: Optional[str] = None
    ) -> List[Dict]:
        """Manifest shard entries (optionally one chain's)."""
        return [
            dict(entry) for entry in self._manifest["shards"]
            if chain_id is None or entry["chain_id"] == chain_id
        ]

    def shard_count(self, chain_id: Optional[str] = None) -> int:
        """Number of slab shards (per chain when given) -- the planner
        reads this to size the process pool to the storage layout."""
        return len(self.store_shards(chain_id))

    def overlay_object_ids(self) -> Set[str]:
        """Ids whose current state is *not* served by the slabs.

        These are objects added or mutated since the snapshot; the
        pipeline evaluates them in the parent while shard workers
        cover the (unchanged) snapshot population.
        """
        return {
            object_id for object_id in self._objects
            if object_id not in self._snapshot_ids
            or object_id in self._stale
        }

    def shard_exclusions(self) -> Dict[str, Tuple[str, ...]]:
        """Per-shard ids a worker must skip (removed or superseded)."""
        exclusions: Dict[str, List[str]] = {}
        for object_id in self._stale:
            shard = self._shard_of.get(object_id)
            if shard is not None:
                exclusions.setdefault(shard, []).append(object_id)
        return {
            shard: tuple(sorted(ids))
            for shard, ids in exclusions.items()
        }

    def seed_positions(self) -> Dict[str, int]:
        """Stable per-object seed offsets (MC parity across layouts).

        A store enumerates objects shard-by-shard, so ``object_ids``
        order differs from the source database's insertion order; MC
        seeding uses these positions instead so every object draws the
        same paths in either layout.
        """
        return dict(self._seed_positions)

    @property
    def fusion_token(self) -> str:
        """Version token for service-tier fusion keys.

        Couples the mutation counter to the store identity and slab
        generation, so requests against a re-opened (or re-snapshotted)
        store never fuse with results computed from different slabs.
        """
        return f"{self.store_id}:g{self.generation}:v{self._version}"

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Fold journal + overlay into a new slab generation.

        Rewrites every shard's slabs from the current object set,
        updates the manifest atomically, truncates the journal, and
        re-points the in-RAM records at the new generation.  Returns
        the new generation number.  The previous generation's files
        stay on disk (a reader may still hold them) until
        :func:`sweep_stale_snapshots` removes them.
        """
        generation = self.generation + 1
        positions = self.state_positions()
        chains_meta: Dict[str, Dict] = {}
        for chain_id, chain in self._chains.items():
            stem = self._chain_files.get(chain_id)
            if stem is None:
                stem = f"chain-{len(self._chain_files):03d}"
                _write_chain(self.path, stem, chain)
                self._chain_files[chain_id] = stem
            chains_meta[chain_id] = {
                "files": stem,
                "fingerprint": chain.fingerprint(),
                "displacement_bound":
                    self.chain_displacement_bound(chain_id),
            }
        shards_per_chain = max(
            1,
            round(len(self._manifest["shards"])
                  / max(1, len(self._manifest["chains"]))),
        ) if self._manifest["shards"] else 8
        shards = _write_snapshot_dirs(
            self.path, generation, self.objects_by_chain(), positions,
            self._seed_positions, shards_per_chain,
        )
        manifest = {
            "schema_version": _SCHEMA_VERSION,
            "store_id": self.store_id,
            "n_states": self.n_states,
            "generation": generation,
            "version": self._version,
            "has_positions": positions is not None,
            "chains": chains_meta,
            "shards": shards,
            "shard_journal_offsets": dict(
                self._disk_journal.shard_offsets
            ),
        }
        _write_json_atomic(self.path / _MANIFEST, manifest)
        old_generation = self.generation
        self._manifest = manifest
        self.generation = generation
        self._disk_journal.truncate(self._version)
        # re-point in-RAM records at the new generation's slabs; the
        # in-RAM mutation journal and version are untouched (a snapshot
        # is not a mutation, streaming consumers stay in sync)
        self._objects.clear()
        self._shard_of.clear()
        self._snapshot_ids.clear()
        self._stale.clear()
        self._prefilters.clear()
        persist = self._persist
        self._persist = False
        self._load_shards(manifest)
        self._persist = persist
        global_pool().forget(_snapshot_dir(self.path, old_generation))
        return generation

    def maybe_autosnapshot(self) -> Optional[int]:
        """Snapshot when the journal outgrew ``REPRO_STORE_AUTOSNAPSHOT``.

        Called by the streaming engine after each committed tick so
        long-running monitors fold their appends into slabs without an
        operator in the loop.  Returns the new generation, or ``None``
        when below the threshold (0 disables).
        """
        raw = os.environ.get(AUTOSNAPSHOT_ENV, "").strip()
        try:
            threshold = int(raw) if raw else _AUTOSNAPSHOT_DEFAULT
        except ValueError:
            threshold = _AUTOSNAPSHOT_DEFAULT
        if threshold <= 0 or len(self._disk_journal) < threshold:
            return None
        return self.snapshot()

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """Store health for ``repro-bench doctor``."""
        report = store_health(self.path)
        report["overlay_objects"] = len(self.overlay_object_ids())
        report["stale_slab_rows"] = len(self._stale)
        return report

    def __repr__(self) -> str:
        return (
            f"ShardedTrajectoryStore(path={str(self.path)!r}, "
            f"objects={len(self)}, shards={self.shard_count()}, "
            f"generation={self.generation})"
        )


# ----------------------------------------------------------------------
# snapshot writing
# ----------------------------------------------------------------------
def _first_support_points(
    obj: UncertainObject, positions: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    support = list(obj.initial.distribution.support())
    if not support:
        return None
    if positions is None:
        return np.column_stack([
            np.asarray(support, dtype=float),
            np.zeros(len(support)),
        ])
    points = np.atleast_2d(np.asarray(positions, dtype=float)[support])
    if points.shape[1] == 1:
        points = np.column_stack([points[:, 0], np.zeros(len(points))])
    return points[:, :2]


def _write_snapshot_dirs(
    root: Path,
    generation: int,
    objects_by_chain: Dict[str, List[UncertainObject]],
    positions: Optional[np.ndarray],
    seed_of: Dict[str, int],
    shards_per_chain: int,
) -> List[Dict]:
    """Write every shard of one generation; returns manifest entries."""
    snapshot = _snapshot_dir(root, generation)
    snapshot.mkdir(parents=True, exist_ok=True)
    entries: List[Dict] = []
    shard_index = 0
    next_seed = max(seed_of.values(), default=-1) + 1
    for chain_id in sorted(objects_by_chain):
        objects = objects_by_chain[chain_id]
        if not objects:
            continue
        centroids = np.zeros(len(objects), dtype=float)
        for index, obj in enumerate(objects):
            points = _first_support_points(obj, positions)
            centroids[index] = (
                float(points[:, 0].mean()) if points is not None else 0.0
            )
        order = np.argsort(centroids, kind="stable")
        tiles = np.array_split(
            order, max(1, min(int(shards_per_chain), len(objects)))
        )
        for tile in tiles:
            if len(tile) == 0:
                continue
            shard_id = f"shard-{shard_index:04d}"
            shard_index += 1
            tile_objects = [objects[i] for i in tile]
            seeds = []
            for obj in tile_objects:
                if obj.object_id not in seed_of:
                    seed_of[obj.object_id] = next_seed
                    next_seed += 1
                seeds.append(seed_of[obj.object_id])
            entries.append(_write_shard(
                snapshot / shard_id, shard_id, chain_id, tile_objects,
                positions, seeds,
            ))
    return entries


def _write_shard(
    slab_dir: Path,
    shard_id: str,
    chain_id: str,
    objects: Sequence[UncertainObject],
    positions: Optional[np.ndarray],
    seeds: Sequence[int],
) -> Dict:
    slab_dir.mkdir(parents=True, exist_ok=True)
    states_parts: List[np.ndarray] = []
    weights_parts: List[np.ndarray] = []
    obs_indptr = [0]
    obs_times: List[int] = []
    obj_indptr = [0]
    mbr_rows: List[Tuple[float, float, float, float]] = []
    object_ids: List[str] = []
    n_multi = 0
    for obj in objects:
        object_ids.append(obj.object_id)
        if len(obj.observations) > 1:
            n_multi += 1
        for observation in obj.observations:
            vector = np.asarray(observation.distribution.vector, dtype=float)
            support = np.flatnonzero(vector > 0.0)
            states_parts.append(support.astype(np.int32))
            weights_parts.append(vector[support])
            obs_indptr.append(obs_indptr[-1] + len(support))
            obs_times.append(int(observation.time))
        obj_indptr.append(len(obs_times))
        points = _first_support_points(obj, positions)
        if points is None:
            mbr_rows.append((0.0, 0.0, 0.0, 0.0))
        else:
            mbr_rows.append((
                float(points[:, 0].min()), float(points[:, 1].min()),
                float(points[:, 0].max()), float(points[:, 1].max()),
            ))
    slab_bytes = 0
    slab_bytes += write_slab(
        slab_dir / "obs_states.npy",
        np.concatenate(states_parts) if states_parts
        else np.zeros(0, dtype=np.int32),
    )
    slab_bytes += write_slab(
        slab_dir / "obs_weights.npy",
        np.concatenate(weights_parts) if weights_parts
        else np.zeros(0, dtype=np.float64),
    )
    slab_bytes += write_slab(
        slab_dir / "obs_indptr.npy", np.asarray(obs_indptr, dtype=np.int64)
    )
    slab_bytes += write_slab(
        slab_dir / "obs_times.npy", np.asarray(obs_times, dtype=np.int64)
    )
    slab_bytes += write_slab(
        slab_dir / "obj_indptr.npy", np.asarray(obj_indptr, dtype=np.int64)
    )
    slab_bytes += write_slab(
        slab_dir / "obj_mbr.npy", np.asarray(mbr_rows, dtype=np.float64)
    )
    slab_bytes += write_slab(
        slab_dir / "obj_dbindex.npy", np.asarray(seeds, dtype=np.int64)
    )
    _write_json_atomic(slab_dir / "objects.json", {
        "object_ids": object_ids,
        "chain_id": chain_id,
    })
    mbr_array = np.asarray(mbr_rows, dtype=float)
    has_geometry = positions is not None and len(mbr_rows) > 0
    return {
        "shard_id": shard_id,
        "chain_id": chain_id,
        "n_objects": len(objects),
        "n_observations": len(obs_times),
        "n_multi": n_multi,
        "mbr": [
            float(mbr_array[:, 0].min()), float(mbr_array[:, 1].min()),
            float(mbr_array[:, 2].max()), float(mbr_array[:, 3].max()),
        ] if has_geometry else None,
        "slab_bytes": int(slab_bytes),
    }


# ----------------------------------------------------------------------
# health + sweeping (repro-bench doctor)
# ----------------------------------------------------------------------
def _tree_bytes(path: Path) -> int:
    total = 0
    for directory, _subdirs, files in os.walk(path):
        for name in files:
            try:
                total += os.path.getsize(os.path.join(directory, name))
            except OSError:
                pass
    return total


def store_health(path: Union[str, Path]) -> Dict[str, object]:
    """Health report of a store directory (no full open needed)."""
    root = Path(path)
    manifest = _load_manifest(root)
    current = _snapshot_dir(root, manifest["generation"]).name
    stale_dirs = sorted(
        entry.name for entry in root.iterdir()
        if entry.is_dir() and entry.name.startswith(_SNAPSHOT_PREFIX)
        and entry.name != current
    )
    journal = StoreJournal(root / _JOURNAL)
    pool = global_pool()
    return {
        "path": str(root),
        "store_id": manifest["store_id"],
        "generation": int(manifest["generation"]),
        "shards": len(manifest["shards"]),
        "objects": int(sum(
            entry["n_objects"] for entry in manifest["shards"]
        )),
        "slab_bytes": int(sum(
            entry["slab_bytes"] for entry in manifest["shards"]
        )),
        "journal_records": len(journal),
        "journal_bytes": journal.size_bytes(),
        "shard_journal_offsets": dict(journal.shard_offsets),
        "stale_snapshots": stale_dirs,
        "stale_snapshot_bytes": int(sum(
            _tree_bytes(root / name) for name in stale_dirs
        )),
        "pool": pool.stats(),
    }


def sweep_stale_snapshots(path: Union[str, Path]) -> Tuple[int, int]:
    """Remove non-current snapshot generations; ``(dirs, bytes)`` freed.

    The moral twin of the shared-memory janitor: snapshots keep the
    previous generation on disk so in-flight readers survive, and this
    sweep (wired into ``repro-bench doctor``) reclaims them once no
    query is older than the current generation.
    """
    root = Path(path)
    manifest = _load_manifest(root)
    current = _snapshot_dir(root, manifest["generation"]).name
    removed = 0
    freed = 0
    for entry in sorted(root.iterdir()):
        if (not entry.is_dir()
                or not entry.name.startswith(_SNAPSHOT_PREFIX)
                or entry.name == current):
            continue
        freed += _tree_bytes(entry)
        global_pool().forget(entry)
        with _ATTACH_LOCK:
            for key in [k for k in _SHARD_VIEWS
                        if k[0] == str(root)
                        and _snapshot_dir(root, k[1]).name == entry.name]:
                _SHARD_VIEWS.pop(key, None)
        shutil.rmtree(entry, ignore_errors=True)
        removed += 1
    return removed, freed


# re-exported for tests tuning the pool directly
_ = SlabPool
