"""Append-only mutation journal of the sharded store.

Every mutation that reaches a :class:`~repro.store.sharded.ShardedTrajectoryStore`
after it was opened -- adds, removes, appended observations, chain
registrations -- is recorded as one JSON line in ``journal.jsonl``
inside the store directory.  Re-opening the store replays the journal
over the last snapshot, so shards survive restarts with no mutation
lost; :meth:`~repro.store.sharded.ShardedTrajectoryStore.snapshot`
folds the journal into a new slab generation and truncates it.

Records are small and self-contained: observation distributions travel
as sparse ``{state: probability}`` maps (the same encoding
:mod:`repro.database.serialization` uses), and every record names the
*owning shard* its object routes to, which is what keeps per-shard
journal offsets computable without scanning payloads.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.core.errors import SerializationError

__all__ = ["StoreJournal"]


class StoreJournal:
    """One store's on-disk mutation journal.

    Args:
        path: the ``journal.jsonl`` file (created on first append).
        base_version: the database version the last snapshot captured;
            replayed records continue from it.
    """

    def __init__(
        self, path: Union[str, Path], base_version: int = 0
    ) -> None:
        self.path = Path(path)
        self.base_version = int(base_version)
        self._count = 0
        #: journal records per owning shard since the last snapshot --
        #: the "journal offset" of each shard, reported by doctor and
        #: persisted into the next snapshot's manifest
        self.shard_offsets: Dict[str, int] = {}
        if self.path.exists():
            for record in self.replay():
                self._count += 1
                shard = record.get("shard")
                if shard is not None:
                    self.shard_offsets[str(shard)] = (
                        self.shard_offsets.get(str(shard), 0) + 1
                    )

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def append(self, record: Dict) -> None:
        """Durably append one mutation record."""
        line = json.dumps(record, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._count += 1
        shard = record.get("shard")
        if shard is not None:
            self.shard_offsets[str(shard)] = (
                self.shard_offsets.get(str(shard), 0) + 1
            )

    def truncate(self, base_version: int) -> None:
        """Reset after a snapshot folded every record into slabs."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        self.base_version = int(base_version)
        self._count = 0
        self.shard_offsets = {}

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[Dict]:
        """Yield every record in append order.

        A truncated trailing line (crash mid-append) is dropped with
        the records after it -- the journal is append-only, so every
        complete prefix is a consistent state.
        """
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    return  # torn tail: stop at the last good record

    def load(self) -> List[Dict]:
        """All records, recomputing the per-shard offsets."""
        records = list(self.replay())
        self._count = len(records)
        self.shard_offsets = {}
        for record in records:
            shard = record.get("shard")
            if shard is not None:
                self.shard_offsets[str(shard)] = (
                    self.shard_offsets.get(str(shard), 0) + 1
                )
        return records

    def __len__(self) -> int:
        return self._count

    def size_bytes(self) -> int:
        """On-disk journal size (0 when absent)."""
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    @staticmethod
    def encode_observation(observation) -> Dict:
        """Sparse JSON encoding of one observation."""
        return {
            "time": int(observation.time),
            "distribution": {
                str(state): float(probability)
                for state, probability in observation.distribution.items()
            },
        }

    @staticmethod
    def decode_observation(record: Dict, n_states: int):
        """Inverse of :meth:`encode_observation`."""
        from repro.core.distribution import StateDistribution
        from repro.core.observation import Observation

        try:
            weights = {
                int(state): float(probability)
                for state, probability in record["distribution"].items()
            }
            return Observation(
                int(record["time"]),
                StateDistribution.from_dict(
                    n_states, weights, normalize=True
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(
                f"corrupt journal observation record: {error}"
            ) from error
