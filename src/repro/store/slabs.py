"""Memory-mapped numpy slabs with a bounded resident pool.

The sharded store keeps its heavy payloads -- observation supports,
weights, timestamps, per-object MBR columns -- as raw ``.npy`` files
("slabs").  Readers attach them through :class:`SlabPool`, which maps
each file at most once per process (``numpy.load(mmap_mode="r")``) and
keeps the set of live mappings LRU-bounded by ``REPRO_STORE_RAM_CAP``
bytes: past the cap the least recently used slab is *unmapped*, which
releases its resident pages back to the OS.  Because every page a query
touches comes from a mapping the pool accounts for, peak RSS
contributed by slab data is bounded by the cap, not by the dataset --
the property the out-of-core benchmark asserts with an address-space
rlimit.

Two deliberate differences from the shared-memory publication cache of
:mod:`repro.exec.dispatch`:

* slabs are backed by *files*, so "publishing" is free -- every worker
  process (and the parent) maps the same pages through the OS page
  cache with zero copies and zero pickling;
* eviction is safe at any time for pool consumers because they copy
  what they need out of a mapping before returning (the facade's lazy
  distributions densify per access; shard workers slice survivors
  into fresh arrays) -- nothing long-lived points into pooled pages.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["SlabPool", "write_slab", "ram_cap_bytes"]

#: environment knob bounding resident slab bytes per process; unset or
#: empty means unbounded (everything stays mapped -- fastest, in-RAM)
RAM_CAP_ENV = "REPRO_STORE_RAM_CAP"


def ram_cap_bytes() -> Optional[int]:
    """The configured resident-slab budget in bytes (None = unbounded).

    Accepts plain byte counts and ``k``/``m``/``g`` suffixes
    (``REPRO_STORE_RAM_CAP=64m``).
    """
    raw = os.environ.get(RAM_CAP_ENV, "").strip().lower()
    if not raw:
        return None
    scale = 1
    if raw[-1] in "kmg":
        scale = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * scale)
    except ValueError:
        return None
    return max(0, value)


def write_slab(path: Union[str, Path], array: np.ndarray) -> int:
    """Write one raw ``.npy`` slab atomically; returns its byte size.

    The write goes to a ``.tmp`` sibling first and is renamed into
    place, so a crash mid-snapshot never leaves a half-written slab
    where a reader would map it.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        np.save(handle, np.ascontiguousarray(array))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path.stat().st_size


class SlabPool:
    """Process-wide LRU of memory-mapped slab files.

    Args:
        cap_bytes: resident budget; ``None`` reads
            ``REPRO_STORE_RAM_CAP`` at each eviction check, so tests
            and operators can retune a live process.

    A mapping's "cost" is its file size -- an upper bound on the
    resident pages it can pin, which is the right ledger for a hard
    cap.  Eviction drops the pool's reference; the OS reclaims the
    pages once no caller-side view remains (callers copy out, so that
    is immediate in practice).
    """

    def __init__(self, cap_bytes: Optional[int] = None) -> None:
        self._cap = cap_bytes
        self._maps: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.attaches = 0  # total map() calls
        self.fresh_maps = 0  # calls that had to open the file
        self.evictions = 0
        self.high_water_bytes = 0

    def _cap_bytes(self) -> Optional[int]:
        return self._cap if self._cap is not None else ram_cap_bytes()

    def map(self, path: Union[str, Path]) -> np.ndarray:
        """The mmapped array for ``path`` (shared, read-only)."""
        key = str(path)
        with self._lock:
            self.attaches += 1
            array = self._maps.get(key)
            if array is not None:
                self._maps.move_to_end(key)
                return array
            size = os.path.getsize(key)
            # make room first: resident bytes never exceed the cap, not
            # even transiently while the new slab is being mapped
            self._evict(incoming=size)
            array = np.load(key, mmap_mode="r")
            self.fresh_maps += 1
            self._maps[key] = array
            self._sizes[key] = size
            self.high_water_bytes = max(
                self.high_water_bytes, self._total()
            )
            return array

    def _total(self) -> int:
        return sum(self._sizes[name] for name in self._maps)

    def _evict(self, incoming: int = 0) -> None:
        """Drop LRU mappings until ``incoming`` more bytes fit (lock held).

        The incoming slab is always admitted even when it alone exceeds
        the cap -- a query must be able to read its own shard.
        """
        cap = self._cap_bytes()
        if cap is None:
            return
        while self._maps and self._total() + incoming > cap:
            name, _array = self._maps.popitem(last=False)
            self._sizes.pop(name, None)
            self.evictions += 1

    def forget(self, prefix: Union[str, Path]) -> None:
        """Unmap every slab under ``prefix`` (a store or snapshot dir).

        Called when a snapshot generation is swept so stale mappings
        never pin deleted files' pages.
        """
        prefix = str(prefix)
        with self._lock:
            stale = [
                name for name in self._maps if name.startswith(prefix)
            ]
            for name in stale:
                self._maps.pop(name, None)
                self._sizes.pop(name, None)

    def clear(self) -> None:
        """Unmap everything (tests, interpreter shutdown)."""
        with self._lock:
            self._maps.clear()
            self._sizes.clear()

    def mapped_bytes(self) -> int:
        """Bytes of slab files currently mapped by this pool."""
        with self._lock:
            return self._total()

    def mapped_count(self) -> int:
        """Number of live slab mappings."""
        with self._lock:
            return len(self._maps)

    def stats(self) -> Dict[str, int]:
        """Counters for doctor/benchmark reporting."""
        with self._lock:
            return {
                "mapped_bytes": self._total(),
                "mapped_slabs": len(self._maps),
                "attaches": self.attaches,
                "fresh_maps": self.fresh_maps,
                "evictions": self.evictions,
                "high_water_bytes": self.high_water_bytes,
            }


#: the per-process pool every store reader shares (parent and each
#: shard worker get their own copy after fork; the fork inherits the
#: parent's mappings, which is exactly the zero-copy sharing we want)
_POOL: Optional[SlabPool] = None
_POOL_LOCK = threading.Lock()


def global_pool() -> SlabPool:
    """The process-wide slab pool (created on first use)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = SlabPool()
        return _POOL
