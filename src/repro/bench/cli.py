"""The ``repro-bench`` command line.

Examples::

    repro-bench --list
    repro-bench fig8a
    repro-bench --all --scale 0.5 --output results/

Each experiment prints an ASCII table to stdout; with ``--output`` it
also writes ``<id>.md`` and ``<id>.csv`` into the given directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import to_ascii_table, to_csv, to_markdown

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the evaluation of 'Querying Uncertain "
                    "Spatio-Temporal Data' (ICDE 2012).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="size multiplier for databases/state spaces (default 1.0 = "
             "laptop scale)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for per-experiment .md and .csv files",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    ids = sorted(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print(
            "no experiments selected (use ids, --all, or --list)",
            file=sys.stderr,
        )
        return 2
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)
    for experiment_id in ids:
        series = run_experiment(experiment_id, scale=args.scale)
        print(to_ascii_table(series))
        if args.output is not None:
            (args.output / f"{experiment_id}.md").write_text(
                to_markdown(series)
            )
            (args.output / f"{experiment_id}.csv").write_text(
                to_csv(series)
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
