"""The ``repro-bench`` command line.

Examples::

    repro-bench --list
    repro-bench fig8a
    repro-bench --all --scale 0.5 --output results/
    repro-bench calibrate --smoke

Each experiment prints an ASCII table to stdout; with ``--output`` it
also writes ``<id>.md`` and ``<id>.csv`` into the given directory.

``repro-bench calibrate`` is special: it measures every operator
kernel over a parameter grid (:mod:`repro.exec.calibrate`), fits the
planner's :class:`~repro.core.planner.CostModel` coefficients to this
machine, persists them (default ``~/.repro/costmodel.json``, see
``CostModel.from_calibration``) and fails when the fitted model picks
the observed-fastest kernel on less than 80% of the held-out grid.

``repro-bench doctor`` is the shared-memory health check: it lists
every ``repro-*`` segment on the machine with its owning PID and
liveness, sweeps segments leaked by dead sessions (skip with
``--no-sweep``), and prints the live-byte accounting of
:func:`repro.exec.dispatch.memory_stats`.  Exit code 0 means no leaked
bytes remain; 1 means orphans survived the sweep (or were left by
``--no-sweep``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import to_ascii_table, to_csv, to_markdown

__all__ = ["main"]

REQUIRED_CALIBRATION_ACCURACY = 0.8


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the evaluation of 'Querying Uncertain "
                    "Spatio-Temporal Data' (ICDE 2012).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list), or the special "
             "commands 'calibrate', 'doctor' and 'service'",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="calibrate/service: seconds-scale CI workload",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=64,
        help="service: concurrent clients per round (default 64)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="service: tenants the clients are spread over (default 4)",
    )
    parser.add_argument(
        "--distinct",
        type=int,
        default=4,
        help="service: distinct query windows in the mix -- 1 fuses "
             "everything, clients fuses nothing (default 4)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="service: measurement rounds (default 3)",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=5.0,
        help="service: broker fusion window in milliseconds "
             "(default 5.0)",
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="doctor: report orphaned shared-memory segments and "
             "stale store snapshots without removing them",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="doctor: also report the health of the sharded "
             "trajectory store at this path (shard count, slab and "
             "journal bytes, mapped-slab residency, stale snapshot "
             "generations) and sweep the stale generations",
    )
    parser.add_argument(
        "--costmodel-path",
        type=Path,
        default=None,
        help="calibrate: where to write the fitted coefficients "
             "(default ~/.repro/costmodel.json or "
             "$REPRO_COSTMODEL_PATH)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="size multiplier for databases/state spaces (default 1.0 = "
             "laptop scale)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for per-experiment .md and .csv files",
    )
    return parser


def _write_bench_result(name: str, payload: dict) -> Path:
    """Persist ``BENCH_<name>.json`` (same shape as benchmarks/)."""
    out_dir = Path(os.environ.get("BENCH_OUTPUT_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(
        {
            "name": name,
            "unix_time": time.time(),
            "cpu_count": os.cpu_count(),
            **payload,
        },
        indent=2,
        sort_keys=True,
    ))
    print(f"wrote {path}")
    return path


def _run_calibrate(args) -> int:
    """``repro-bench calibrate``: fit the cost model to this machine."""
    from repro.core.planner import CALIBRATED_COEFFICIENTS
    from repro.exec.calibrate import (
        CalibrationConfig,
        bench_payload,
        calibrate,
    )

    config = CalibrationConfig(smoke=args.smoke)
    result = calibrate(
        config,
        path=(
            str(args.costmodel_path)
            if args.costmodel_path is not None
            else None
        ),
        # a fit below the gate is reported and fails the run, but is
        # never persisted where from_calibration would pick it up
        min_accuracy=REQUIRED_CALIBRATION_ACCURACY,
    )
    destination = result.path or "(not persisted: below accuracy gate)"
    print(
        f"calibrated {result.n_points} grid points "
        f"({result.elapsed_seconds:.1f} s); coefficients -> "
        f"{destination}"
    )
    for name in CALIBRATED_COEFFICIENTS:
        print(f"  {name:<18} = {getattr(result.model, name):.3e}")
    backend_sets = result.model.backend_coefficients or {}
    print(
        "backend coefficient sets: "
        + (", ".join(sorted(backend_sets)) or "scipy (flat)")
    )
    print(
        f"held-out argmin accuracy: {result.accuracy:.0%} on "
        f"{result.n_holdout} points "
        f"(required: {REQUIRED_CALIBRATION_ACCURACY:.0%})"
    )
    _write_bench_result(
        "calibrate", {**bench_payload(result), "smoke": args.smoke}
    )
    if result.accuracy < REQUIRED_CALIBRATION_ACCURACY:
        print(
            f"FAIL: calibrated model picks the observed-fastest "
            f"kernel on only {result.accuracy:.0%} of the held-out "
            f"grid",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def _run_doctor(args) -> int:
    """``repro-bench doctor``: health check -- backends + shared memory.

    Reports which linear-algebra backends are importable and the
    native backend's compile status (JIT vs dense-BLAS fallback,
    prewarmed or cold), then runs the shared-memory janitor and
    accounting.  The exit code reflects only leaked bytes; a missing
    numba is informational, not an error.
    """
    from repro.exec.dispatch import (
        list_segments,
        memory_stats,
        sweep_orphans,
    )
    from repro.linalg import native
    from repro.linalg.ops import available_backends

    print(f"backends      : {', '.join(available_backends())}")
    status = native.compile_status()
    mode = status["mode"]
    if status["numba_disabled"]:
        mode += " (numba disabled via REPRO_DISABLE_NUMBA)"
    elif not status["numba_installed"]:
        mode += " (numba not installed)"
    print(
        f"native backend: mode={mode}, "
        f"prewarmed={status['prewarmed']}, "
        f"dense_cap={status['dense_cap_elements']} elements"
    )

    segments = list_segments()
    if segments:
        print(f"{'segment':<32} {'pid':>8} {'bytes':>12} state")
        for info in segments:
            state = "live" if info.alive else "ORPHAN"
            print(
                f"{info.name:<32} {info.pid:>8} {info.size:>12} "
                f"{state}"
            )
    else:
        print("no repro-* shared-memory segments found")
    if not args.no_sweep:
        swept = sweep_orphans()
        if swept:
            reclaimed = sum(info.size for info in swept)
            print(
                f"swept {len(swept)} orphaned segment(s), "
                f"reclaimed {reclaimed} bytes"
            )
        else:
            print("nothing to sweep")
    stats = memory_stats()
    print(
        f"session bytes : {stats['session_bytes']}\n"
        f"machine bytes : {stats['machine_bytes']} "
        f"({stats['segments']} segment(s))\n"
        f"leaked bytes  : {stats['orphan_bytes']}"
    )
    if args.store is not None:
        from repro.store.sharded import (
            store_health,
            sweep_stale_snapshots,
        )

        report = store_health(args.store)
        pool = report["pool"]
        print(
            f"store         : {report['path']} "
            f"(id={report['store_id']}, "
            f"generation={report['generation']})\n"
            f"  shards      : {report['shards']} holding "
            f"{report['objects']} object(s), "
            f"{report['slab_bytes']} slab bytes\n"
            f"  journal     : {report['journal_records']} record(s), "
            f"{report['journal_bytes']} bytes\n"
            f"  residency   : {pool['mapped_slabs']} slab(s) mapped, "
            f"{pool['mapped_bytes']} mapped bytes "
            f"(high water {pool['high_water_bytes']}), "
            f"{pool['evictions']} eviction(s)"
        )
        stale = report["stale_snapshots"]
        if stale:
            print(
                f"  stale       : {len(stale)} snapshot "
                f"generation(s), {report['stale_snapshot_bytes']} "
                f"bytes: {', '.join(stale)}"
            )
            if not args.no_sweep:
                removed, freed = sweep_stale_snapshots(args.store)
                print(
                    f"  swept {removed} stale snapshot(s), "
                    f"reclaimed {freed} bytes"
                )
        else:
            print("  stale       : none")
    return 0 if stats["orphan_bytes"] == 0 else 1


def _run_service(args) -> int:
    """``repro-bench service``: concurrent load against QueryService.

    Drives ``--clients`` concurrent submissions per round, spread over
    ``--tenants`` tenants and ``--distinct`` query windows, against a
    synthetic database; then replays the identical request stream as
    sequential ``QueryEngine.evaluate`` calls.  Reports throughput,
    the fusion ratio (requests answered per engine evaluation) and the
    speedup the broker's request fusion buys.
    """
    import asyncio

    import numpy as np

    from repro import (
        PSTExistsQuery,
        QueryEngine,
        QueryService,
        SpatioTemporalWindow,
        TrajectoryDatabase,
        UncertainObject,
    )
    from repro.core.state_space import LineStateSpace
    from repro.workloads.synthetic import (
        make_line_chain,
        make_object_distribution,
    )

    n_states = 120 if args.smoke else 300
    n_objects = 24 if args.smoke else 80
    n_chains = 3
    clients = min(args.clients, 16) if args.smoke else args.clients
    rounds = 1 if args.smoke else args.rounds
    distinct = max(1, min(args.distinct, clients))
    tenants = max(1, args.tenants)

    rng = np.random.default_rng(0)
    database = TrajectoryDatabase(
        n_states, state_space=LineStateSpace(n_states)
    )
    for index in range(n_chains):
        database.register_chain(
            f"chain-{index}", make_line_chain(n_states, rng=rng)
        )
    for index in range(n_objects):
        database.add(
            UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(n_states, 5, rng),
                time=int(rng.integers(0, 5)),
                chain_id=f"chain-{index % n_chains}",
            )
        )
    engine = QueryEngine(database)
    lo = n_states // 4
    queries = [
        PSTExistsQuery(
            SpatioTemporalWindow.from_ranges(
                lo + 2 * i, lo + n_states // 4 + 2 * i, 6, 10
            )
        )
        for i in range(distinct)
    ]
    # one warm pass so both sides measure steady-state (cached plans)
    for query in queries:
        engine.evaluate(query)

    request_stream = [
        (queries[i % distinct], f"tenant-{i % tenants}")
        for i in range(clients)
    ]

    started = time.perf_counter()
    for _ in range(rounds):
        for query, _tenant in request_stream:
            engine.evaluate(query)
    serial_seconds = time.perf_counter() - started

    async def drive(service):
        for _ in range(rounds):
            await asyncio.gather(
                *(
                    service.submit(query, tenant=tenant)
                    for query, tenant in request_stream
                )
            )

    async def run():
        async with QueryService(
            engine, fusion_window_ms=args.window_ms
        ) as service:
            begun = time.perf_counter()
            await drive(service)
            return service, time.perf_counter() - begun

    service, fused_seconds = asyncio.run(run())

    requests = clients * rounds
    speedup = serial_seconds / fused_seconds if fused_seconds else 0.0
    fusion_ratio = (
        requests / service.evaluations if service.evaluations else 0.0
    )
    print(
        f"{requests} requests, {clients} concurrent clients, "
        f"{distinct} distinct window(s), {tenants} tenant(s), "
        f"{args.window_ms:g} ms fusion window"
    )
    print(
        f"serial  : {serial_seconds:8.3f} s "
        f"({requests / serial_seconds:8.1f} req/s)"
    )
    print(
        f"service : {fused_seconds:8.3f} s "
        f"({requests / fused_seconds:8.1f} req/s)"
    )
    print(
        f"speedup : {speedup:.2f}x with {service.evaluations} "
        f"evaluation(s) for {requests} requests "
        f"({fusion_ratio:.1f} requests/evaluation)"
    )
    print(f"{'tenant':<12} {'admitted':>8} {'fused':>6} {'charged':>10}")
    for name, account in sorted(service.ledger.accounts().items()):
        print(
            f"{name:<12} {account.admitted:>8} {account.fused:>6} "
            f"{account.charged_seconds:>9.4f}s"
        )
    _write_bench_result(
        "service_loadgen",
        {
            "smoke": args.smoke,
            "clients": clients,
            "rounds": rounds,
            "distinct": distinct,
            "tenants": tenants,
            "fusion_window_ms": args.window_ms,
            "requests": requests,
            "evaluations": service.evaluations,
            "fused_calls": service.fused_calls,
            "fusion_ratio": fusion_ratio,
            "serial_seconds": serial_seconds,
            "service_seconds": fused_seconds,
            "speedup": speedup,
        },
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.experiments and args.experiments[0] in (
        "calibrate", "doctor", "service"
    ):
        command = args.experiments[0]
        if len(args.experiments) > 1:
            print(
                f"{command} takes no extra experiment ids",
                file=sys.stderr,
            )
            return 2
        if command == "doctor":
            return _run_doctor(args)
        if command == "service":
            return _run_service(args)
        return _run_calibrate(args)
    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    ids = sorted(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print(
            "no experiments selected (use ids, --all, or --list)",
            file=sys.stderr,
        )
        return 2
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)
    for experiment_id in ids:
        series = run_experiment(experiment_id, scale=args.scale)
        print(to_ascii_table(series))
        if args.output is not None:
            (args.output / f"{experiment_id}.md").write_text(
                to_markdown(series)
            )
            (args.output / f"{experiment_id}.csv").write_text(
                to_csv(series)
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
