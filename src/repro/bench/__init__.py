"""Benchmark harness regenerating the paper's evaluation (Section VIII).

* :mod:`repro.bench.harness` -- timing utilities and the experiment
  result container.
* :mod:`repro.bench.experiments` -- one driver per paper figure
  (Fig. 8(a) through Fig. 11(b)) plus the ablations from DESIGN.md.
* :mod:`repro.bench.reporting` -- ASCII / Markdown / CSV rendering.
* :mod:`repro.bench.cli` -- the ``repro-bench`` command-line entry point.
"""

from repro.bench.harness import ExperimentSeries, Timer, measure_seconds
from repro.bench.experiments import (
    EXPERIMENTS,
    run_experiment,
)
from repro.bench.reporting import (
    to_ascii_table,
    to_csv,
    to_markdown,
)

__all__ = [
    "ExperimentSeries",
    "Timer",
    "measure_seconds",
    "EXPERIMENTS",
    "run_experiment",
    "to_ascii_table",
    "to_csv",
    "to_markdown",
]
