"""Rendering of experiment series as ASCII, Markdown and CSV."""

from __future__ import annotations

import io
from typing import List

from repro.bench.harness import ExperimentSeries

__all__ = ["to_ascii_table", "to_markdown", "to_csv"]


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 1e-4:
        return f"{value:.3e}"
    return f"{value:.6g}"


def _rows(series: ExperimentSeries) -> List[List[str]]:
    labels = sorted(series.series)
    header = [series.x_label] + labels
    rows = [header]
    for index, x in enumerate(series.x_values):
        row = [_format_value(float(x))]
        for label in labels:
            row.append(_format_value(series.series[label][index]))
        rows.append(row)
    return rows


def to_ascii_table(series: ExperimentSeries) -> str:
    """A fixed-width table, one row per x value, one column per curve."""
    series.validate()
    rows = _rows(series)
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    out = io.StringIO()
    out.write(f"{series.title}\n")
    if series.notes:
        out.write(f"({series.notes})\n")
    separator = "-+-".join("-" * width for width in widths)
    for row_index, row in enumerate(rows):
        line = " | ".join(
            cell.rjust(width) for cell, width in zip(row, widths)
        )
        out.write(line + "\n")
        if row_index == 0:
            out.write(separator + "\n")
    return out.getvalue()


def to_markdown(series: ExperimentSeries) -> str:
    """A GitHub-flavoured Markdown table with title and notes."""
    series.validate()
    rows = _rows(series)
    out = io.StringIO()
    out.write(f"### {series.title} (`{series.experiment_id}`)\n\n")
    if series.notes:
        out.write(f"_{series.notes}_\n\n")
    out.write("| " + " | ".join(rows[0]) + " |\n")
    out.write("|" + "|".join("---" for _ in rows[0]) + "|\n")
    for row in rows[1:]:
        out.write("| " + " | ".join(row) + " |\n")
    return out.getvalue()


def to_csv(series: ExperimentSeries) -> str:
    """Plain CSV (header row, then one row per x value)."""
    series.validate()
    rows = _rows(series)
    return "\n".join(",".join(row) for row in rows) + "\n"
