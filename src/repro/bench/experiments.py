"""One driver per paper figure (Section VIII) plus DESIGN.md ablations.

Every driver returns an :class:`~repro.bench.harness.ExperimentSeries`
holding the same axes as the corresponding figure of the paper.  Sizes
default to laptop scale (documented in each series' ``notes``); the
``scale`` argument multiplies database/state sizes for larger runs.

The absolute numbers differ from the paper's 2011 MATLAB/Xeon setup; the
*shapes* are what the reproduction asserts (see EXPERIMENTS.md):
MC >> OB >> QB, OB growing with the query horizon while QB barely moves,
the naive independence model over-estimating with growing window length,
PSTkQ being the most expensive predicate, and near-linear scaling in
``max_step`` / ``state_spread``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.bench.harness import ExperimentSeries, measure_seconds
from repro.core.engine import QueryEngine
from repro.core.errors import ValidationError
from repro.core.planner import PlanOptions
from repro.core.ktimes import ktimes_distribution
from repro.core.matrices import build_absorbing_matrices
from repro.core.naive import naive_exists_probability
from repro.core.object_based import ob_exists_probability
from repro.core.query import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    SpatioTemporalWindow,
)
from repro.core.query_based import (
    QueryBasedEvaluator,
    QueryBasedKTimesEvaluator,
)
from repro.database.uncertain_db import TrajectoryDatabase
from repro.workloads.road_network import (
    make_road_database,
    munich_like_config,
    north_america_like_config,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    make_synthetic_database,
)

__all__ = ["EXPERIMENTS", "run_experiment"]


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _window(
    n_states: int,
    time_low: int = 20,
    time_high: int = 25,
    state_low: int = 100,
    state_high: int = 120,
) -> SpatioTemporalWindow:
    state_high = min(state_high, n_states - 1)
    return SpatioTemporalWindow.from_ranges(
        state_low, state_high, time_low, time_high
    )


# the figure sweeps time the *methods themselves* (the paper runs no
# pruning), so the planner's filter stages are forced off and the
# backend pinned: letting best_backend() promote only one side of an
# OB-vs-QB comparison to the native kernels would skew the ordering
_NO_FILTERS = PlanOptions(prefilter=False, bfs_prune=False, backend="scipy")


def _time_exists(
    database: TrajectoryDatabase,
    window: SpatioTemporalWindow,
    method: str,
    n_samples: int = 100,
) -> float:
    engine = QueryEngine(database)
    query = PSTExistsQuery(window)
    return measure_seconds(
        lambda: engine.evaluate(
            query,
            method=method,
            n_samples=n_samples,
            seed=0,
            options=_NO_FILTERS,
        )
    )


# ----------------------------------------------------------------------
# Figure 8: runtime vs number of states
# ----------------------------------------------------------------------
def fig8a(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 8(a): MC vs OB vs QB over a small state space."""
    result = ExperimentSeries(
        experiment_id="fig8a",
        title="Query runtime vs |S| (small state space, with Monte-Carlo)",
        x_label="states",
        y_label="runtime (s)",
        notes=(
            "paper: |D|=1,000, |S|=2,000..18,000, query [100,120]x[20,25], "
            "MC with 100 samples; here |D| scaled to "
            f"{_scaled(200, scale)} objects"
        ),
    )
    n_objects = _scaled(200, scale)
    for n_states in [2_000, 6_000, 10_000, 14_000, 18_000]:
        n_states = _scaled(n_states, scale, minimum=200)
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=n_objects, n_states=n_states, seed=7
            )
        )
        window = _window(n_states)
        result.x_values.append(n_states)
        result.add_point("MC", _time_exists(database, window, "mc"))
        result.add_point("OB", _time_exists(database, window, "ob"))
        result.add_point("QB", _time_exists(database, window, "qb"))
    result.validate()
    return result


def fig8b(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 8(b): OB vs QB over large state spaces."""
    result = ExperimentSeries(
        experiment_id="fig8b",
        title="Query runtime vs |S| (large state space)",
        x_label="states",
        y_label="runtime (s)",
        notes=(
            "paper: |D|=100,000 objects over |S|=10,000..90,000; "
            f"here |D|={_scaled(2_000, scale)}"
        ),
    )
    n_objects = _scaled(2_000, scale)
    for n_states in [10_000, 30_000, 50_000, 70_000, 90_000]:
        n_states = _scaled(n_states, scale, minimum=1_000)
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=n_objects, n_states=n_states, seed=11
            )
        )
        window = _window(n_states)
        result.x_values.append(n_states)
        result.add_point("OB", _time_exists(database, window, "ob"))
        result.add_point("QB", _time_exists(database, window, "qb"))
    result.validate()
    return result


# ----------------------------------------------------------------------
# Figure 9: runtime vs query start time; accuracy of the naive model
# ----------------------------------------------------------------------
def _starttime_sweep(
    database: TrajectoryDatabase,
    experiment_id: str,
    title: str,
    notes: str,
    start_times: Sequence[int] = tuple(range(5, 51, 5)),
    window_length: int = 5,
    region_states: int = 21,
) -> ExperimentSeries:
    result = ExperimentSeries(
        experiment_id=experiment_id,
        title=title,
        x_label="query start time",
        y_label="runtime (s)",
        notes=notes,
    )
    n_states = database.n_states
    region_low = min(100, n_states - region_states - 1)
    for start in start_times:
        window = SpatioTemporalWindow.from_ranges(
            region_low,
            region_low + region_states - 1,
            start,
            start + window_length,
        )
        result.x_values.append(start)
        result.add_point("OB", _time_exists(database, window, "ob"))
        result.add_point("QB", _time_exists(database, window, "qb"))
    result.validate()
    return result


def fig9a(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 9(a): runtime vs query start time, synthetic data."""
    n_objects = _scaled(500, scale)
    n_states = _scaled(20_000, scale, minimum=2_000)
    database = make_synthetic_database(
        SyntheticConfig(n_objects=n_objects, n_states=n_states, seed=13)
    )
    return _starttime_sweep(
        database,
        "fig9a",
        "Runtime vs query start time (synthetic)",
        f"|D|={n_objects}, |S|={n_states}; OB grows with the horizon, "
        "QB stays almost flat",
    )


def fig9b(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 9(b): runtime vs query start time, Munich-like network."""
    config = munich_like_config(scale=0.05 * scale, seed=17)
    database = make_road_database(
        config, n_objects=_scaled(500, scale)
    )
    return _starttime_sweep(
        database,
        "fig9b",
        "Runtime vs query start time (Munich-like road network)",
        f"synthetic stand-in: {config.n_nodes} nodes, "
        f"{config.n_edges} edges (paper: 73,120 / 93,925)",
    )


def fig9c(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 9(c): runtime vs query start time, NA-like network."""
    config = north_america_like_config(scale=0.05 * scale, seed=19)
    database = make_road_database(
        config, n_objects=_scaled(500, scale)
    )
    return _starttime_sweep(
        database,
        "fig9c",
        "Runtime vs query start time (North-America-like road network)",
        f"synthetic stand-in: {config.n_nodes} nodes, "
        f"{config.n_edges} edges (paper: 175,813 / 179,102)",
    )


def fig9d(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 9(d): accuracy -- Markov model vs temporal independence.

    For growing query windows, the average (over objects with a non-zero
    exact answer) PST-exists probability is reported for the correct
    Markov evaluation and for the naive model that multiplies marginal
    probabilities as if independent.  The naive answer is biased upward
    and the bias grows with the window -- the paper's justification for
    modelling time dependence.
    """
    result = ExperimentSeries(
        experiment_id="fig9d",
        title="Average query probability: temporal correlation vs "
              "independence",
        x_label="query window timeslots",
        y_label="average probability",
        notes="naive independence over-estimates; gap grows with window",
    )
    n_objects = _scaled(200, scale)
    n_states = _scaled(2_000, scale, minimum=500)
    database = make_synthetic_database(
        SyntheticConfig(n_objects=n_objects, n_states=n_states, seed=23)
    )
    chain = database.chain()
    start = 10
    for length in range(1, 11):
        window = SpatioTemporalWindow.from_ranges(
            100, min(120, n_states - 1), start, start + length - 1
        )
        evaluator = QueryBasedEvaluator(chain, window)
        exact: List[float] = []
        naive: List[float] = []
        for obj in database:
            p_exact = evaluator.probability(obj.initial.distribution)
            if p_exact <= 0.0:
                continue
            exact.append(p_exact)
            naive.append(
                naive_exists_probability(
                    chain, obj.initial.distribution, window
                )
            )
        result.x_values.append(length)
        result.add_point(
            "with temporal correlation",
            float(np.mean(exact)) if exact else 0.0,
        )
        result.add_point(
            "without temporal correlation",
            float(np.mean(naive)) if naive else 0.0,
        )
    result.validate()
    return result


# ----------------------------------------------------------------------
# Figure 10: query predicates (exists / for-all / k-times)
# ----------------------------------------------------------------------
def _predicate_sweep(
    method: str, experiment_id: str, scale: float
) -> ExperimentSeries:
    result = ExperimentSeries(
        experiment_id=experiment_id,
        title=f"Predicate runtimes ({method.upper()} approach)",
        x_label="query window timeslots",
        y_label="runtime (s)",
        notes="k-times is the most expensive predicate; exists and "
              "for-all are comparable",
    )
    n_objects = _scaled(100, scale)
    n_states = _scaled(5_000, scale, minimum=500)
    database = make_synthetic_database(
        SyntheticConfig(n_objects=n_objects, n_states=n_states, seed=29)
    )
    engine = QueryEngine(database)
    start = 20
    for length in range(1, 11):
        window = SpatioTemporalWindow.from_ranges(
            100, min(120, n_states - 1), start, start + length - 1
        )
        result.x_values.append(length)
        result.add_point(
            "exists",
            measure_seconds(
                lambda: engine.evaluate(
                    PSTExistsQuery(window), method=method
                )
            ),
        )
        result.add_point(
            "forall",
            measure_seconds(
                lambda: engine.evaluate(
                    PSTForAllQuery(window), method=method
                )
            ),
        )
        result.add_point(
            "ktimes",
            measure_seconds(
                lambda: engine.evaluate(
                    PSTKTimesQuery(window), method=method
                )
            ),
        )
    result.validate()
    return result


def fig10a(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 10(a): exists / for-all / k-times under OB."""
    return _predicate_sweep("ob", "fig10a", scale)


def fig10b(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 10(b): exists / for-all / k-times under QB.

    The engine's QB path uses the shared backward pass for exists and
    for-all; the k-times curve uses the C(t) algorithm per object (the
    dedicated blocked QB evaluator is benchmarked in the ablations).
    """
    return _predicate_sweep("qb", "fig10b", scale)


# ----------------------------------------------------------------------
# Figure 11: locality parameters
# ----------------------------------------------------------------------
def fig11a(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 11(a): impact of ``max_step`` on OB and QB."""
    result = ExperimentSeries(
        experiment_id="fig11a",
        title="Runtime vs max_step",
        x_label="max_step",
        y_label="runtime (s)",
        notes="both approaches scale at most linearly (paper Fig. 11(a))",
    )
    n_objects = _scaled(500, scale)
    n_states = _scaled(20_000, scale, minimum=2_000)
    for max_step in range(10, 101, 10):
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=n_objects,
                n_states=n_states,
                max_step=max_step,
                seed=31,
            )
        )
        window = _window(n_states)
        result.x_values.append(max_step)
        result.add_point("OB", _time_exists(database, window, "ob"))
        result.add_point("QB", _time_exists(database, window, "qb"))
    result.validate()
    return result


def fig11b(scale: float = 1.0) -> ExperimentSeries:
    """Fig. 11(b): impact of ``state_spread`` on OB and QB."""
    result = ExperimentSeries(
        experiment_id="fig11b",
        title="Runtime vs state_spread",
        x_label="state_spread",
        y_label="runtime (s)",
        notes="both approaches scale at most linearly (paper Fig. 11(b))",
    )
    n_objects = _scaled(500, scale)
    n_states = _scaled(20_000, scale, minimum=2_000)
    for state_spread in range(2, 21, 2):
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=n_objects,
                n_states=n_states,
                state_spread=state_spread,
                max_step=40,
                seed=37,
            )
        )
        window = _window(n_states)
        result.x_values.append(state_spread)
        result.add_point("OB", _time_exists(database, window, "ob"))
        result.add_point("QB", _time_exists(database, window, "qb"))
    result.validate()
    return result


# ----------------------------------------------------------------------
# Ablations (DESIGN.md Section 7)
# ----------------------------------------------------------------------
def ablation_backend(scale: float = 1.0) -> ExperimentSeries:
    """scipy CSR vs the pure-Python CSR backend on OB processing."""
    result = ExperimentSeries(
        experiment_id="ablation_backend",
        title="Linear-algebra backend: scipy vs pure-Python CSR",
        x_label="states",
        y_label="runtime (s)",
        notes="same algorithm, same results; quantifies how much the "
              "paper's 'use a fast matrix library' advice buys",
    )
    for n_states in [500, 1_000, 2_000]:
        n_states = _scaled(n_states, scale, minimum=200)
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=20, n_states=n_states, seed=41
            )
        )
        chain = database.chain()
        window = _window(n_states)
        initials = [
            obj.initial.distribution for obj in database
        ]
        result.x_values.append(n_states)
        for backend in ("scipy", "pure"):
            result.add_point(
                backend,
                measure_seconds(
                    lambda b=backend: [
                        ob_exists_probability(
                            chain, initial, window, backend=b
                        )
                        for initial in initials
                    ]
                ),
            )
    result.validate()
    return result


def ablation_pruning(scale: float = 1.0) -> ExperimentSeries:
    """OB with and without the reachability pruning filter.

    The query region sits at one end of the line state space, so most
    randomly-placed objects provably cannot reach it in time -- the
    setting where Section V-C's pruning argument pays off.
    """
    result = ExperimentSeries(
        experiment_id="ablation_pruning",
        title="Reachability pruning for object-based processing",
        x_label="states",
        y_label="runtime (s)",
        notes="query window near state 0; objects spread uniformly, so "
              "pruning discards most of them",
    )
    n_objects = _scaled(300, scale)
    for n_states in [5_000, 10_000, 20_000]:
        n_states = _scaled(n_states, scale, minimum=1_000)
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=n_objects, n_states=n_states, seed=43
            )
        )
        window = _window(n_states, time_low=10, time_high=15)
        engine = QueryEngine(database)
        query = PSTExistsQuery(window)
        result.x_values.append(n_states)
        result.add_point(
            "OB",
            measure_seconds(
                lambda: engine.evaluate(
                    query, method="ob", options=_NO_FILTERS
                )
            ),
        )
        result.add_point(
            "OB+pruning",
            measure_seconds(
                lambda: engine.evaluate(
                    query,
                    method="ob",
                    options=PlanOptions(bfs_prune=True, prefilter=False),
                )
            ),
        )
    result.validate()
    return result


def planner(scale: float = 1.0) -> ExperimentSeries:
    """ISSUE 2: cost-based planning + filter-refinement vs no pruning.

    The query window sits at the low end of the line state space while
    objects spread uniformly, so the per-chain R-tree prefilter
    eliminates most of the database geometrically and the BFS stage
    refines the rest -- the regime where the staged pipeline's win is
    largest.  Both engines are measured warm (repeated monitoring
    query) so the comparison is per-query work, not construction.
    """
    result = ExperimentSeries(
        experiment_id="planner",
        title="Cost-based planner + filter-refinement vs unpruned batching",
        x_label="states",
        y_label="runtime (s)",
        notes="selective window [100,120] x [20,25]; objects uniform, "
              "so the prefilter discards most of them before the "
              "batched kernels run",
    )
    n_objects = _scaled(1_000, scale)
    for n_states in [10_000, 20_000, 40_000]:
        n_states = _scaled(n_states, scale, minimum=2_000)
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=n_objects, n_states=n_states, seed=61
            )
        )
        window = _window(n_states)
        query = PSTExistsQuery(window)
        unpruned = QueryEngine(database)
        planned = QueryEngine(database)
        unpruned.evaluate(query, method="qb", options=_NO_FILTERS)
        planned.evaluate(query)
        result.x_values.append(n_states)
        result.add_point(
            "batched, no pruning (warm)",
            measure_seconds(
                lambda: unpruned.evaluate(
                    query, method="qb", options=_NO_FILTERS
                )
            ),
        )
        result.add_point(
            "planned auto (warm)",
            measure_seconds(lambda: planned.evaluate(query)),
        )
    result.validate()
    return result


def ablation_ktimes_algorithms(scale: float = 1.0) -> ExperimentSeries:
    """C(t) algorithm vs blocked matrices vs blocked QB for PSTkQ."""
    result = ExperimentSeries(
        experiment_id="ablation_ktimes",
        title="PSTkQ algorithms: C(t) vs blocked OB vs blocked QB",
        x_label="query window timeslots",
        y_label="runtime (s)",
        notes="C(t) avoids the |T|-fold blow-up of the blocked matrices",
    )
    n_states = _scaled(2_000, scale, minimum=500)
    database = make_synthetic_database(
        SyntheticConfig(n_objects=50, n_states=n_states, seed=47)
    )
    chain = database.chain()
    initials = [obj.initial.distribution for obj in database]
    start = 10
    from repro.core.ktimes import ktimes_distribution_blocked

    for length in (2, 4, 6, 8):
        window = SpatioTemporalWindow.from_ranges(
            100, min(120, n_states - 1), start, start + length - 1
        )
        result.x_values.append(length)
        result.add_point(
            "C(t)",
            measure_seconds(
                lambda: [
                    ktimes_distribution(chain, initial, window)
                    for initial in initials
                ]
            ),
        )
        result.add_point(
            "blocked OB",
            measure_seconds(
                lambda: [
                    ktimes_distribution_blocked(chain, initial, window)
                    for initial in initials
                ]
            ),
        )
        result.add_point(
            "blocked QB",
            measure_seconds(
                lambda: QueryBasedKTimesEvaluator(chain, window)
                and [
                    QueryBasedKTimesEvaluator(chain, window).distribution(
                        initial
                    )
                    for initial in initials[:1]
                ]
            ),
        )
    result.validate()
    return result


def batching(scale: float = 1.0) -> ExperimentSeries:
    """ISSUE 1: batched + plan-cached evaluation vs per-object OB.

    The per-object curve rebuilds the absorbing matrices every query
    and runs one forward pass per object; the batched curves stack all
    objects into one product per timestep, cold (first query, cache
    empty) and warm (repeated query, construction cached).
    """
    result = ExperimentSeries(
        experiment_id="batching",
        title="Batched evaluation + plan cache vs per-object processing",
        x_label="objects",
        y_label="runtime (s)",
        notes="single shared chain; warm = identical query repeated "
              "against the engine's hot plan cache",
    )
    n_states = _scaled(2_000, scale, minimum=300)
    for n_objects in [100, 250, 500]:
        n_objects = _scaled(n_objects, scale)
        database = make_synthetic_database(
            SyntheticConfig(
                n_objects=n_objects, n_states=n_states, seed=53
            )
        )
        chain = database.chain()
        window = _window(n_states)
        query = PSTExistsQuery(window)
        objects = list(database)

        def per_object() -> None:
            matrices = build_absorbing_matrices(chain, window.region)
            for obj in objects:
                ob_exists_probability(
                    chain,
                    obj.initial.distribution,
                    window,
                    start_time=obj.initial.time,
                    matrices=matrices,
                )

        engine = QueryEngine(database)
        result.x_values.append(n_objects)
        result.add_point("per-object OB", measure_seconds(per_object))
        result.add_point(
            "batched OB (cold cache)",
            measure_seconds(
                lambda: engine.evaluate(query, method="ob")
            ),
        )
        result.add_point(
            "batched OB (warm cache)",
            measure_seconds(
                lambda: engine.evaluate(query, method="ob")
            ),
        )
    result.validate()
    return result


EXPERIMENTS: Dict[str, Callable[[float], ExperimentSeries]] = {
    "batching": batching,
    "planner": planner,
    "fig8a": fig8a,
    "fig8b": fig8b,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig9c": fig9c,
    "fig9d": fig9d,
    "fig10a": fig10a,
    "fig10b": fig10b,
    "fig11a": fig11a,
    "fig11b": fig11b,
    "ablation_backend": ablation_backend,
    "ablation_pruning": ablation_pruning,
    "ablation_ktimes": ablation_ktimes_algorithms,
}


def run_experiment(
    experiment_id: str, scale: float = 1.0
) -> ExperimentSeries:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        ) from None
    return driver(scale)
