"""Timing utilities and the experiment result container."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.errors import ValidationError

__all__ = ["Timer", "measure_seconds", "ExperimentSeries"]


class Timer:
    """A context manager measuring wall-clock seconds.

    Example::

        with Timer() as timer:
            expensive()
        print(timer.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


def measure_seconds(
    function: Callable[[], object], repeat: int = 1
) -> float:
    """Best-of-``repeat`` wall-clock seconds of calling ``function``.

    Best-of is the standard noise-reduction strategy for micro-timings;
    the paper reports single-run wall clocks, so ``repeat=1`` matches it.
    """
    if repeat < 1:
        raise ValidationError(f"repeat must be positive, got {repeat}")
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class ExperimentSeries:
    """The data behind one paper figure.

    Attributes:
        experiment_id: identifier (e.g. ``"fig8a"``).
        title: human-readable title.
        x_label: meaning of the x values.
        y_label: meaning of the series values.
        x_values: the sweep parameter values.
        series: ``{curve label: values}`` -- one curve per method, each
            aligned with ``x_values``.
        notes: free-form remarks (scale factors, expected shape...).
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    x_values: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def add_point(self, label: str, value: float) -> None:
        """Append one measurement to a curve."""
        self.series.setdefault(label, []).append(float(value))

    def curve(self, label: str) -> List[float]:
        """One curve's values."""
        try:
            return self.series[label]
        except KeyError:
            raise ValidationError(
                f"no curve {label!r}; available: {sorted(self.series)}"
            ) from None

    def validate(self) -> None:
        """Check all curves are aligned with the x values."""
        for label, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValidationError(
                    f"curve {label!r} has {len(values)} points, "
                    f"x axis has {len(self.x_values)}"
                )

    def speedup(self, slow: str, fast: str) -> List[float]:
        """Pointwise ratio ``slow / fast`` between two curves."""
        numerator = self.curve(slow)
        denominator = self.curve(fast)
        return [
            (n / d if d > 0 else float("inf"))
            for n, d in zip(numerator, denominator)
        ]
