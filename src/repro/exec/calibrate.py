"""Measured cost-model calibration.

The planner's :class:`~repro.core.planner.CostModel` started as
hand-derived asymptotics of the batched scipy kernels; its argmin only
has to *rank* strategies correctly, but ranks shift with hardware
(cache sizes, BLAS builds, core counts), so this module makes the
coefficients measured instead of guessed:

1. :func:`measure_grid` runs each operator kernel -- matrix build, QB
   backward sweep + dots, stacked OB forward sweep, stacked Section
   VII k-times sweep, Monte-Carlo sampling -- over a small parameter
   grid spanning state count, chain non-zeros, query horizon and
   object count, timing every point through the same operator layer
   queries execute on;
2. :func:`fit` least-squares-fits the
   :data:`~repro.core.planner.CALIBRATED_COEFFICIENTS` to those
   measurements (non-negative least squares on relative error, so the
   small points count as much as the big ones);
3. :func:`holdout_accuracy` checks the fitted argmin against the
   *observed* fastest kernel on a held-out slice of the grid (a pick
   within 25% of the observed best counts as correct -- near-ties are
   genuinely interchangeable);
4. :func:`calibrate` ties it together and persists the result as JSON
   (default ``~/.repro/costmodel.json``) for
   :meth:`~repro.core.planner.CostModel.from_calibration`.

``repro-bench calibrate [--smoke]`` is the command-line entry point;
it regenerates the file on new hardware and fails below 80% held-out
accuracy.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.markov import MarkovChain
from repro.core.planner import (
    CALIBRATED_COEFFICIENTS,
    CostModel,
    GroupFeatures,
)
from repro.core.query import SpatioTemporalWindow

try:
    import scipy.optimize as _opt
    import scipy.sparse as _sp
except ImportError:  # pragma: no cover - exercised only without scipy
    _opt = None
    _sp = None

#: Seconds-scale process-dispatch threshold written alongside the
#: fitted (seconds-per-unit) coefficients: estimated serial kernel
#: time past which forking the worker pool pays off.  Applied both to
#: the persisted file and to the in-memory ``result.model`` so the
#: two plan identically.
PROCESS_MIN_COST_SECONDS = 0.5

__all__ = [
    "CalibrationConfig",
    "CalibrationResult",
    "GridPoint",
    "Measurement",
    "calibrate",
    "default_grid",
    "fit",
    "holdout_accuracy",
    "measure_grid",
]


@dataclass(frozen=True)
class GridPoint:
    """One cell of the calibration grid.

    Attributes:
        n_states: chain state count.
        degree: transitions per state (``nnz = n_states * degree``).
        horizon: query end time (observations sit at t=0).
        n_objects: single-observation objects sharing the chain.
    """

    n_states: int
    degree: int
    horizon: int
    n_objects: int


@dataclass(frozen=True)
class Measurement:
    """One timed kernel run at one grid point."""

    point: GridPoint
    kernel: str  # "build" | "qb" | "ob" | "ct" | "mc"
    seconds: float
    backend: str = "scipy"  # linear-algebra backend the kernel ran on


@dataclass(frozen=True)
class CalibrationConfig:
    """Knobs of one calibration run.

    Attributes:
        smoke: CI scale -- a 12-point grid that runs in seconds.
        repeats: timed repetitions per kernel (the minimum is kept).
        mc_samples: Monte-Carlo sample count for the MC kernel rows.
        holdout_every: every ``k``-th grid point is held out of the
            fit and used only for the argmin accuracy check.
        tie_tolerance: a predicted kernel within this factor of the
            observed fastest counts as a correct pick.
        seed: RNG seed for chain/object generation.
    """

    smoke: bool = False
    repeats: int = 2
    mc_samples: int = 16
    holdout_every: int = 3
    tie_tolerance: float = 1.25
    seed: int = 0


@dataclass
class CalibrationResult:
    """What one :func:`calibrate` run produced.

    Attributes:
        model: the fitted cost model.
        accuracy: held-out argmin accuracy in ``[0, 1]``.
        n_points: grid points measured.
        n_holdout: points held out for the accuracy check.
        measurements: every timed kernel run.
        path: where the JSON was written (None when not persisted).
        elapsed_seconds: wall-clock calibration time.
    """

    model: CostModel
    accuracy: float
    n_points: int
    n_holdout: int
    measurements: List[Measurement] = field(default_factory=list)
    path: Optional[str] = None
    elapsed_seconds: float = 0.0


def default_grid(smoke: bool = False) -> List[GridPoint]:
    """The measurement grid: states x nnz x horizon x object count.

    A few *dense* points (degree a sizable fraction of the state
    count) ride along so the per-backend fits see the regime the
    native dense kernels are built for; an all-sparse grid would make
    the native coefficient set pessimistic everywhere.
    """
    if smoke:
        states = (400, 1500)
        degrees = (4,)
        horizons = (12, 36)
        objects = (1, 16, 128)
        dense = [GridPoint(300, 75, 12, 64)]
    else:
        states = (500, 2000, 6000)
        degrees = (3, 9)
        horizons = (16, 64)
        objects = (1, 8, 64, 512)
        dense = [
            GridPoint(400, 100, 16, 128),
            GridPoint(800, 200, 16, 256),
        ]
    return [
        GridPoint(s, d, h, o)
        for s in states
        for d in degrees
        for h in horizons
        for o in objects
    ] + dense


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def _ring_chain(
    n_states: int, degree: int, rng: np.random.Generator
) -> MarkovChain:
    """A random walk on a ring with ``degree`` forward neighbours.

    Controlled sparsity (``nnz = n_states * degree``) with full
    reachability -- the shape the synthetic workloads use, small
    enough to rebuild per grid point.
    """
    rows = np.repeat(np.arange(n_states), degree)
    cols = (rows + np.tile(np.arange(degree), n_states)) % n_states
    values = rng.random(rows.size) + 0.1
    matrix = _sp.csr_matrix(
        (values, (rows, cols)), shape=(n_states, n_states)
    )
    matrix = matrix.multiply(1.0 / matrix.sum(axis=1))
    return MarkovChain(_sp.csr_matrix(matrix), validate=False)


def _window(point: GridPoint) -> SpatioTemporalWindow:
    region_high = max(1, point.n_states // 20)
    time_low = max(1, point.horizon - 4)
    return SpatioTemporalWindow.from_ranges(
        0, region_high, time_low, point.horizon
    )


def _duration(point: GridPoint) -> int:
    """``|T_q|`` of :func:`_window` at this point (without building it)."""
    return point.horizon - max(1, point.horizon - 4) + 1


def _timed(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def measure_grid(
    config: Optional[CalibrationConfig] = None,
    grid: Optional[Sequence[GridPoint]] = None,
    backends: Optional[Sequence[str]] = None,
) -> List[Measurement]:
    """Time every kernel at every grid point, per installed backend.

    The kernels run exactly as queries run them -- through
    :mod:`repro.core.batch` over the shared operator layer -- with
    matrices pre-built so the build cost is its own measurement.  The
    exact kernels (qb/ob/ct) are timed once per backend in
    ``backends`` (default: scipy plus native when installed), so
    :func:`calibrate` can grow one coefficient set per backend; build
    and Monte-Carlo rows are backend-independent (construction and
    sampling never touch the product kernels) and are duplicated into
    every backend's set to keep each design matrix well-posed.
    """
    from repro.core.batch import (
        batch_ktimes_distribution,
        batch_mc_exists,
        batch_ob_exists,
        batch_qb_exists,
    )
    from repro.core.distribution import StateDistribution
    from repro.core.matrices import build_absorbing_matrices
    from repro.core.observation import Observation, ObservationSet

    from repro.linalg.ops import available_backends

    config = config or CalibrationConfig()
    grid = list(grid) if grid is not None else default_grid(config.smoke)
    if backends is None:
        backends = ["scipy"] + (
            ["native"] if "native" in available_backends() else []
        )
    rng = np.random.default_rng(config.seed)
    measurements: List[Measurement] = []
    for point in grid:
        chain = _ring_chain(point.n_states, point.degree, rng)
        window = _window(point)
        states = rng.integers(0, point.n_states, size=point.n_objects)
        initials = [
            StateDistribution.point(point.n_states, int(state))
            for state in states
        ]
        build_seconds = _timed(
            lambda: build_absorbing_matrices(chain, window.region),
            config.repeats,
        )
        for backend in backends:
            measurements.append(
                Measurement(point, "build", build_seconds, backend)
            )
        mc_seconds: Optional[float] = None
        # Monte-Carlo rows only where sampling stays cheap: the fit
        # needs coverage, not another quadratic sweep
        if (
            point.n_objects * config.mc_samples * point.horizon
            <= 200_000
        ):
            observation_sets = [
                ObservationSet.single(
                    Observation(0, distribution)
                )
                for distribution in initials
            ]
            mc_seconds = _timed(
                lambda: batch_mc_exists(
                    chain,
                    observation_sets,
                    window,
                    n_samples=config.mc_samples,
                    seeds=list(range(point.n_objects)),
                ),
                config.repeats,
            )
        for backend in backends:
            # the OB forward stack adopts the backend carried by the
            # matrices, so the prebuild must happen per backend too
            matrices = build_absorbing_matrices(
                chain, window.region, backend
            )
            qb_seconds = _timed(
                lambda: batch_qb_exists(
                    chain,
                    initials,
                    window,
                    matrices=matrices,
                    backend=backend,
                ),
                config.repeats,
            )
            ob_seconds = _timed(
                lambda: batch_ob_exists(
                    chain,
                    initials,
                    window,
                    matrices=matrices,
                    backend=backend,
                ),
                config.repeats,
            )
            measurements.append(
                Measurement(point, "qb", qb_seconds, backend)
            )
            measurements.append(
                Measurement(point, "ob", ob_seconds, backend)
            )
            # k-times: one shared suffix-count pass + one dot per
            # object (cheap at every grid point -- no cap needed)
            ct_seconds = _timed(
                lambda: batch_ktimes_distribution(
                    chain, initials, window, backend=backend
                ),
                config.repeats,
            )
            measurements.append(
                Measurement(point, "ct", ct_seconds, backend)
            )
            if mc_seconds is not None:
                measurements.append(
                    Measurement(point, "mc", mc_seconds, backend)
                )
    return measurements


# ----------------------------------------------------------------------
# fitting
# ----------------------------------------------------------------------
def _features(point: GridPoint) -> GroupFeatures:
    return GroupFeatures(
        n_single=point.n_objects,
        n_multi=0,
        n_states=point.n_states + 1,
        nnz=point.n_states * point.degree,
        horizon=point.horizon,
        duration=_duration(point),
        absorbing_cached=True,  # kernels were timed with prebuilt
    )


def _design_row(
    measurement: Measurement, mc_samples: int
) -> np.ndarray:
    """The measurement's loads per coefficient, in
    :data:`~repro.core.planner.CALIBRATED_COEFFICIENTS` order."""
    point = measurement.point
    nnz = point.n_states * point.degree
    row = np.zeros(len(CALIBRATED_COEFFICIENTS), dtype=float)
    index = {
        name: i for i, name in enumerate(CALIBRATED_COEFFICIENTS)
    }
    if measurement.kernel == "build":
        row[index["build_unit"]] = nnz
    elif measurement.kernel == "qb":
        row[index["sweep_unit"]] = point.horizon * nnz
        row[index["dot_unit"]] = point.n_objects * (point.n_states + 1)
        row[index["object_overhead"]] = point.n_objects
    elif measurement.kernel == "ob":
        row[index["dense_sweep_unit"]] = (
            point.horizon * nnz * max(1, point.n_objects)
        )
        row[index["object_overhead"]] = point.n_objects
    elif measurement.kernel == "ct":
        rows_ct = _duration(point) + 1
        row[index["ktimes_unit"]] = point.horizon * nnz * rows_ct
        row[index["dot_unit"]] = (
            point.n_objects * (point.n_states + 1) * rows_ct
        )
        row[index["object_overhead"]] = point.n_objects
    elif measurement.kernel == "mc":
        row[index["mc_step_unit"]] = (
            point.n_objects * mc_samples * point.horizon
        )
        row[index["object_overhead"]] = point.n_objects
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown kernel {measurement.kernel!r}")
    return row


def fit(
    measurements: Sequence[Measurement],
    config: Optional[CalibrationConfig] = None,
) -> CostModel:
    """Non-negative least squares over the measured kernel times.

    Rows are weighted by ``1 / seconds`` so the fit minimises
    *relative* error -- the argmin only cares about ratios, and an
    absolute fit would let the one slowest grid point dominate.
    Coefficients are in seconds-per-unit-load, so fitted costs are
    directly comparable wall-time estimates.
    """
    config = config or CalibrationConfig()
    rows = []
    targets = []
    for measurement in measurements:
        weight = 1.0 / max(measurement.seconds, 1e-5)
        rows.append(
            _design_row(measurement, config.mc_samples) * weight
        )
        targets.append(measurement.seconds * weight)
    matrix = np.vstack(rows)
    target = np.asarray(targets, dtype=float)
    coefficients, _residual = _opt.nnls(matrix, target)
    # a coefficient nnls zeroed still needs a tiny positive floor so
    # cost estimates stay monotone in every feature
    floor = 1e-12
    fitted = {
        name: max(float(value), floor)
        for name, value in zip(CALIBRATED_COEFFICIENTS, coefficients)
    }
    # fitted units are seconds, so the dispatch threshold must be the
    # seconds-scale bound too -- matching what from_calibration loads
    return CostModel(
        **fitted, process_min_cost=PROCESS_MIN_COST_SECONDS
    )


def holdout_accuracy(
    model: CostModel,
    holdout: Sequence[GridPoint],
    by_point: Dict[GridPoint, Dict[str, float]],
    tie_tolerance: float = 1.25,
) -> float:
    """Fraction of held-out points where the model picks the observed
    fastest exact kernel (within ``tie_tolerance`` of the best)."""
    if not holdout:
        return 1.0
    correct = 0
    for point in holdout:
        observed = by_point[point]
        features = _features(point)
        costs = {
            "qb": model.qb_cost(features),
            "ob": model.ob_cost(features),
        }
        picked = min(costs, key=costs.get)
        best = min(observed["qb"], observed["ob"])
        if observed[picked] <= tie_tolerance * best:
            correct += 1
    return correct / len(holdout)


# ----------------------------------------------------------------------
# persistence + entry point
# ----------------------------------------------------------------------
def _write_calibration(
    path: str, model: CostModel, result_fields: Dict
) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    document = {
        "coefficients": {
            name: getattr(model, name)
            for name in CALIBRATED_COEFFICIENTS
        },
        # one fitted set per measured backend; the flat
        # "coefficients" above stay the scipy set so files written
        # here load unchanged into older readers, and files written
        # by older calibrators (no "backends" section) load as
        # scipy-only -- see CostModel.from_calibration
        "backends": {
            backend: {"coefficients": dict(coefficients)}
            for backend, coefficients in sorted(
                (model.backend_coefficients or {}).items()
            )
        },
        # fitted coefficients are seconds-per-unit-load, so the
        # dispatch threshold becomes a wall-time bound: estimated
        # serial kernel time past which forking a pool pays off
        "thresholds": {"process_min_cost": PROCESS_MIN_COST_SECONDS},
        "meta": {
            "created_unix": time.time(),
            "hostname": platform.node(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            **result_fields,
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def calibrate(
    config: Optional[CalibrationConfig] = None,
    path: Optional[str] = None,
    write: bool = True,
    min_accuracy: Optional[float] = None,
) -> CalibrationResult:
    """Measure, fit, validate, and (optionally) persist a cost model.

    Args:
        config: grid/repeat knobs (default: full grid).
        path: output JSON (default:
            :meth:`~repro.core.planner.CostModel.calibration_path`).
        write: persist the fitted coefficients.
        min_accuracy: when set, a fit below this held-out accuracy is
            *not* persisted (``result.path`` stays None), so a failed
            calibration never silently poisons later
            ``CostModel.from_calibration()`` loads.

    Returns:
        The :class:`CalibrationResult`; ``result.model`` is what
        ``CostModel.from_calibration()`` will reload (same
        coefficients and same seconds-scale dispatch threshold).
    """
    config = config or CalibrationConfig()
    started = time.perf_counter()
    grid = default_grid(config.smoke)
    holdout = [
        point
        for index, point in enumerate(grid)
        if index % config.holdout_every == config.holdout_every - 1
    ]
    holdout_set = set(holdout)
    measurements = measure_grid(config, grid)
    training = [
        m for m in measurements if m.point not in holdout_set
    ]
    # one coefficient set per measured backend; the scipy set stays
    # the model's flat (default) coefficients for back-compat
    by_backend: Dict[str, List[Measurement]] = {}
    for measurement in training:
        by_backend.setdefault(measurement.backend, []).append(
            measurement
        )
    fitted_models = {
        backend: fit(rows, config)
        for backend, rows in sorted(by_backend.items())
    }
    backend_sets = {
        backend: {
            name: getattr(fitted, name)
            for name in CALIBRATED_COEFFICIENTS
        }
        for backend, fitted in fitted_models.items()
    }
    model = replace(
        fitted_models["scipy"], backend_coefficients=backend_sets
    )
    # holdout argmin accuracy is judged on the default (scipy)
    # backend's observed times
    by_point: Dict[GridPoint, Dict[str, float]] = {}
    for measurement in measurements:
        if measurement.backend != "scipy":
            continue
        by_point.setdefault(measurement.point, {})[
            measurement.kernel
        ] = measurement.seconds
    accuracy = holdout_accuracy(
        model, holdout, by_point, config.tie_tolerance
    )
    result = CalibrationResult(
        model=model,
        accuracy=accuracy,
        n_points=len(grid),
        n_holdout=len(holdout),
        measurements=measurements,
        elapsed_seconds=time.perf_counter() - started,
    )
    if write and (min_accuracy is None or accuracy >= min_accuracy):
        target = path or CostModel.calibration_path()
        _write_calibration(
            target,
            model,
            {
                "holdout_accuracy": accuracy,
                "n_points": len(grid),
                "smoke": config.smoke,
            },
        )
        result.path = target
        result.model = CostModel(
            **{
                name: getattr(model, name)
                for name in CALIBRATED_COEFFICIENTS
            },
            process_min_cost=PROCESS_MIN_COST_SECONDS,
            backend_coefficients=model.backend_coefficients,
            calibrated_from=target,
        )
    return result


def bench_payload(result: CalibrationResult) -> Dict:
    """The ``BENCH_calibrate.json`` document body."""
    return {
        "kind": "calibration",
        "accuracy": result.accuracy,
        "n_points": result.n_points,
        "n_holdout": result.n_holdout,
        "elapsed_seconds": result.elapsed_seconds,
        "coefficients": {
            name: getattr(result.model, name)
            for name in CALIBRATED_COEFFICIENTS
        },
        "backends": sorted(
            (result.model.backend_coefficients or {"scipy": {}})
        ),
        "measurements": [
            {
                **asdict(m.point),
                "kernel": m.kernel,
                "seconds": m.seconds,
                "backend": m.backend,
            }
            for m in result.measurements
        ],
    }
