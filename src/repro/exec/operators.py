"""The operator layer: one implementation of every execution kernel.

The Emrich et al. reduction turns every query mode into compositions of
a small number of primitives -- build augmented matrices, sweep a
stacked state forward, sweep an indicator backward, fuse evidence,
sample paths, extend a backward ladder, filter candidates.  Before this
module those primitives were implemented four separate times (batched
kernels, per-object fallbacks, Monte Carlo, streaming); now each exists
exactly once as an :class:`Operator` and every caller -- including the
process-pool workers of :mod:`repro.exec.dispatch` -- routes through
the same code.

Operators share a uniform call shape::

    operator(inputs, chain, region, backend, context=ctx, ...) -> arrays

where ``inputs`` carries the operator-specific payload (matrices, a
:class:`SweepSchedule`, a ladder base vector, ...), ``chain`` /
``region`` / ``backend`` identify the artefact space, and ``context``
is an optional :class:`ExecutionContext` whose timing hooks record one
``(calls, seconds)`` entry per operator name -- the numbers
``QueryPlan.describe()`` renders and :mod:`repro.exec.calibrate` fits
the cost model against.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.core.errors import InfeasibleEvidenceError, QueryError
from repro.core.matrices import (
    build_absorbing_matrices,
    build_doubled_matrices,
)
from repro.linalg import native as native_kernels
from repro.linalg.ops import matvec
from repro.linalg.sparse import CSRMatrix

__all__ = [
    "ExecutionContext",
    "Operator",
    "OperatorStats",
    "SweepSchedule",
    "KTimesSchedule",
    "BuildMatrices",
    "ForwardSweep",
    "BackwardSweep",
    "KTimesSweep",
    "KTimesCore",
    "PosteriorCollapse",
    "MCSample",
    "LadderExtend",
    "Prefilter",
    "BfsPrune",
    "BUILD_ABSORBING",
    "BUILD_DOUBLED",
    "FORWARD_SWEEP",
    "BACKWARD_SWEEP",
    "KTIMES_SWEEP",
    "KTIMES_CORE",
    "POSTERIOR_COLLAPSE",
    "MC_SAMPLE",
    "LADDER_EXTEND",
    "PREFILTER",
    "BFS_PRUNE",
]


@dataclass
class OperatorStats:
    """Aggregated timing of one operator within one context.

    Attributes:
        calls: operator invocations recorded.
        seconds: total wall-clock seconds across those calls.
    """

    calls: int = 0
    seconds: float = 0.0

    def add(self, seconds: float, calls: int = 1) -> None:
        """Fold one measurement (or a merged batch) in."""
        self.calls += calls
        self.seconds += seconds


class ExecutionContext:
    """Shared state threaded through one query's operator calls.

    Carries the artefact sources every operator resolves against (the
    plan cache and the backend name) and collects the per-operator
    timing hooks.  Worker processes build their own context and ship
    its timings back; :meth:`merge` folds them into the parent's.

    Args:
        plan_cache: construction cache operators resolve matrices from.
        backend: linear-algebra backend name.
        faults: optional :class:`~repro.exec.faults.FaultInjector`
            whose chaos hooks every operator call reports to (fault
            injection tests only; ``None`` -- one attribute check per
            call -- in production).
    """

    def __init__(
        self,
        plan_cache=None,
        backend: Optional[str] = None,
        faults=None,
    ) -> None:
        self.plan_cache = plan_cache
        self.backend = backend
        self.faults = faults
        self.timings: Dict[str, OperatorStats] = {}
        # recovery events (pool rebuilds, retries) the supervisor
        # records; the pipeline copies them onto plan.degradations
        self.events: List[str] = []
        # one context is shared across the thread-dispatch pool, so
        # the counters must fold in atomically
        self._lock = threading.Lock()

    def record(self, name: str, seconds: float) -> None:
        """Per-call timing hook: fold one operator call in."""
        with self._lock:
            self.timings.setdefault(name, OperatorStats()).add(seconds)

    def record_event(self, message: str) -> None:
        """Note one recovery event (retry, rebuild, degradation)."""
        with self._lock:
            self.events.append(message)

    def merge(self, timings: Mapping[str, Any]) -> None:
        """Fold another context's (possibly serialized) timings in."""
        with self._lock:
            for name, stats in timings.items():
                if isinstance(stats, OperatorStats):
                    calls, seconds = stats.calls, stats.seconds
                else:  # (calls, seconds) pair from a worker process
                    calls, seconds = int(stats[0]), float(stats[1])
                self.timings.setdefault(name, OperatorStats()).add(
                    seconds, calls
                )

    def serializable_timings(self) -> Dict[str, Tuple[int, float]]:
        """Timings as plain tuples (for worker -> parent transport)."""
        with self._lock:
            return {
                name: (stats.calls, stats.seconds)
                for name, stats in self.timings.items()
            }


class Operator:
    """Base class: uniform signature plus the per-call timing hook.

    Subclasses implement :meth:`run`; ``__call__`` wraps it with the
    wall-clock measurement recorded on the ``context`` (when given --
    operators stay usable standalone without one).
    """

    name = "operator"

    def __call__(
        self,
        inputs: Any,
        chain=None,
        region: Optional[FrozenSet[int]] = None,
        backend: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
        **kwargs: Any,
    ) -> Any:
        if context is not None and context.faults is not None:
            context.faults.fire(f"operator:{self.name}")
        started = _time.perf_counter()
        try:
            return self.run(
                inputs, chain, region, backend, context=context, **kwargs
            )
        finally:
            if context is not None:
                context.record(
                    self.name, _time.perf_counter() - started
                )

    def run(
        self, inputs, chain, region, backend, context=None, **kwargs
    ):  # pragma: no cover - abstract
        raise NotImplementedError


# ----------------------------------------------------------------------
# BuildMatrices
# ----------------------------------------------------------------------
class BuildMatrices(Operator):
    """Resolve the augmented matrices for ``(chain, region)``.

    ``inputs`` may carry pre-built matrices (validated against the
    region and passed through); otherwise the context's plan cache is
    probed and construction runs only on a miss, so a cache hit costs
    (and records) almost nothing.
    """

    def __init__(self, kind: str) -> None:
        if kind not in ("absorbing", "doubled"):
            raise QueryError(f"unknown matrix kind {kind!r}")
        self.kind = kind
        self.name = f"build_{kind}"

    def run(
        self, inputs, chain, region, backend, context=None,
        plan_cache=None, **_,
    ):
        prebuilt = inputs
        if prebuilt is not None:
            if prebuilt.region != region:
                raise QueryError(
                    "pre-built matrices were constructed for a "
                    "different region"
                )
            return prebuilt
        if plan_cache is None and context is not None:
            plan_cache = context.plan_cache
        if plan_cache is not None:
            getter = (
                plan_cache.absorbing
                if self.kind == "absorbing"
                else plan_cache.doubled
            )
            return getter(chain, region, backend)
        builder = (
            build_absorbing_matrices
            if self.kind == "absorbing"
            else build_doubled_matrices
        )
        return builder(chain, region, backend)


# ----------------------------------------------------------------------
# ForwardSweep
# ----------------------------------------------------------------------
@dataclass
class SweepSchedule:
    """What one stacked forward sweep activates, fuses, and reads.

    The schedule is plain data (times -> row payloads), so it can be
    built identically by the batch kernels, the per-object fallbacks,
    and the shard workers of :mod:`repro.exec.dispatch`.

    Attributes:
        n_rows: objects stacked into the sweep.
        first: timestamp of the earliest activation.
        last: timestamp after which every row has been harvested.
        times: the query timestamps ``T_q`` (selects ``M_plus``).
        activations: per timestamp, ``(row, initial vector)`` pairs
            entering the sweep when it reaches that timestamp.  The
            *raw* ``n_states`` vectors are stored (usually references
            to the objects' own distributions, no copies);
            ``extend_initial`` runs lazily at activation time, so the
            schedule never materialises a second stack-sized buffer.
        fusions: per timestamp, ``(row, tiled observation pdf)`` pairs
            applied as Lemma 1 evidence fusion (elementwise product,
            renormalise; zero mass raises
            :class:`~repro.core.errors.InfeasibleEvidenceError`).
        harvests: per timestamp, rows whose result is read there.
        read: ``"top"`` reads the TOP component, ``"tail"`` sums the
            shadow block from ``read_offset`` (Section VI).
        read_offset: first index of the shadow block for ``"tail"``.
        stop_threshold: early termination (Section V-C): stop as soon
            as every *unharvested* row's read value reaches this bound
            (single-row threshold queries); the values read so far are
            returned as lower bounds.
    """

    n_rows: int
    first: int
    last: int
    times: FrozenSet[int]
    activations: Dict[int, List[Tuple[int, np.ndarray]]]
    fusions: Dict[int, List[Tuple[int, np.ndarray]]] = field(
        default_factory=dict
    )
    harvests: Dict[int, List[int]] = field(default_factory=dict)
    read: str = "top"
    read_offset: int = 0
    stop_threshold: Optional[float] = None


class _ForwardStack:
    """The stacked distributions of all objects during one sweep.

    For the scipy backend the stack is kept *transposed* -- a
    C-contiguous ``(size, n_objects)`` array -- so each transition is
    ``M^T @ X^T`` over the matrices' cached transposes: one CSR
    matvecs kernel call per timestep with no copies in the loop
    (measurably faster than ``X @ M``, which scipy evaluates through
    CSC).  The pure-Python backend falls back to row-wise
    :func:`~repro.linalg.ops.matmat`.
    """

    def __init__(self, matrices, n_objects: int) -> None:
        self.matrices = matrices
        self._transposed = not isinstance(matrices.m_minus, CSRMatrix)
        # the backend travels with the matrices, so shard workers that
        # rehydrate a published CSR adopt the compiled kernels too
        self._native = (
            getattr(matrices.backend, "name", None) == "native"
        )
        if self._transposed:
            self.stack = np.zeros(
                (matrices.size, n_objects), dtype=float
            )
        else:
            self.stack = np.zeros(
                (n_objects, matrices.size), dtype=float
            )

    def set_row(self, row: int, vector: np.ndarray) -> None:
        if self._transposed:
            self.stack[:, row] = vector
        else:
            self.stack[row] = vector

    def row(self, row: int) -> np.ndarray:
        return (
            self.stack[:, row] if self._transposed else self.stack[row]
        )

    def column(self, index: int) -> np.ndarray:
        """One entry per object (e.g. the TOP component)."""
        return (
            self.stack[index].copy()
            if self._transposed
            else self.stack[:, index].copy()
        )

    def tail_sums(self, row: int, offset: int) -> float:
        """Sum of entries ``offset:`` of one object's vector."""
        return float(self.row(row)[offset:].sum())

    def step(self, time: int, times) -> None:
        if self._transposed:
            minus_t, plus_t = self.matrices.transposed()
            matrix = plus_t if time in times else minus_t
            if self._native:
                self.stack = native_kernels.spmm(matrix, self.stack)
            else:
                self.stack = matrix @ self.stack
        else:
            self.stack = np.asarray(
                self.matrices.backend.matmat(
                    self.stack,
                    self.matrices.matrix_for_target_time(time, times),
                ),
                dtype=float,
            )


class ForwardSweep(Operator):
    """One stacked forward pass executing a :class:`SweepSchedule`.

    This is the single implementation behind the Section V-A
    object-based pass, the Section VI doubled-space pass (via
    ``fusions`` + ``read="tail"``), and the per-object OB fallback
    (a one-row schedule).  ``inputs`` is ``(matrices, schedule)``;
    the result is one value per schedule row.
    """

    name = "forward_sweep"

    def run(self, inputs, chain, region, backend, context=None, **_):
        matrices, schedule = inputs
        stack = _ForwardStack(matrices, schedule.n_rows)
        result = np.zeros(schedule.n_rows, dtype=float)

        def read_value(row: int) -> float:
            if schedule.read == "tail":
                return stack.tail_sums(row, schedule.read_offset)
            return float(stack.row(row)[schedule.read_offset])

        def visit(time: int) -> bool:
            for row, initial in schedule.activations.get(time, ()):
                stack.set_row(row, matrices.extend_initial(
                    np.asarray(initial, dtype=float),
                    time,
                    schedule.times,
                ))
            for row, tiled in schedule.fusions.get(time, ()):
                fused = stack.row(row) * tiled
                total = float(fused.sum())
                if total <= 0.0:
                    raise InfeasibleEvidenceError(
                        f"observation at t={time} contradicts the "
                        f"trajectory model: posterior mass is zero"
                    )
                stack.set_row(row, fused / total)
            for row in schedule.harvests.get(time, ()):
                result[row] = read_value(row)
            if schedule.stop_threshold is not None:
                # Section V-C early termination: a lower bound at the
                # threshold already answers the query
                return all(
                    read_value(row) >= schedule.stop_threshold
                    for row in range(schedule.n_rows)
                )
            return False

        if visit(schedule.first):
            for row in range(schedule.n_rows):
                result[row] = read_value(row)
            return result
        for time in range(schedule.first + 1, schedule.last + 1):
            stack.step(time, schedule.times)
            if visit(time):
                for row in range(schedule.n_rows):
                    result[row] = read_value(row)
                return result
        return result


# ----------------------------------------------------------------------
# BackwardSweep
# ----------------------------------------------------------------------
class BackwardSweep(Operator):
    """Section V-B backward vectors for every requested start time.

    ``inputs`` is ``(matrices, window, start_times)``.  One pass from
    ``t_end`` down to the earliest start yields ``v(t)`` for *all*
    intermediate ``t``; the requested ones are copied out.  Each
    returned vector is bit-identical to the one the per-object
    query-based evaluator computes for that start time alone.
    """

    name = "backward_sweep"

    def run(self, inputs, chain, region, backend, context=None, **_):
        matrices, window, start_times = inputs
        wanted = sorted({int(t) for t in start_times})
        if not wanted:
            return {}
        if wanted[0] < 0:
            raise QueryError(
                f"start_time must be non-negative, got {wanted[0]}"
            )
        if window.t_start < wanted[-1]:
            raise QueryError(
                f"query time {window.t_start} precedes start_time "
                f"{wanted[-1]}"
            )
        use_backend = backend or getattr(
            matrices.backend, "name", None
        )
        vector = np.zeros(matrices.size, dtype=float)
        vector[matrices.top_index] = 1.0
        result: Dict[int, np.ndarray] = {}
        if window.t_end in wanted:  # degenerate: observation at t_end
            result[window.t_end] = vector.copy()
        remaining = set(wanted) - set(result)
        for time in range(window.t_end - 1, wanted[0] - 1, -1):
            matrix = matrices.matrix_for_target_time(
                time + 1, window.times
            )
            vector = np.asarray(
                matvec(matrix, vector, backend=use_backend), dtype=float
            )
            if time in remaining:
                result[time] = vector.copy()
        return result


# ----------------------------------------------------------------------
# KTimesSweep
# ----------------------------------------------------------------------
@dataclass
class KTimesSchedule:
    """What one stacked Section VII C(t) sweep activates and harvests.

    The per-object ``C`` matrix is ``(|T_q|+1) x |S|``; the cohort
    stacks every object's ``C`` into one block so each timestep costs
    one sparse product for *all* objects, exactly as
    :class:`SweepSchedule` batches the exists sweeps.

    Attributes:
        n_objects: objects stacked into the sweep.
        n_rows: visit-count rows per object (``|T_q| + 1``).
        first: timestamp of the earliest activation.
        last: ``t_end`` -- every block is harvested there.
        times: the query timestamps ``T_q`` (selects the column shift).
        region_columns: the query region as a sorted index array.
        activations: per timestamp, ``(object, initial vector)`` pairs
            entering the sweep when it reaches that timestamp (raw
            ``n_states`` vectors, no copies).
    """

    n_objects: int
    n_rows: int
    first: int
    last: int
    times: FrozenSet[int]
    region_columns: np.ndarray
    activations: Dict[int, List[Tuple[int, np.ndarray]]]


class KTimesSweep(Operator):
    """One stacked Section VII C(t) pass executing a
    :class:`KTimesSchedule`.

    The cohort is kept *transposed* -- a C-contiguous
    ``(n_states, live_rows, n_objects)`` array -- so each transition
    is ``M^T @ X`` over the chain's cached transpose: one CSR kernel
    call per timestep for every object, mirroring the exists sweeps'
    layout.  The count dimension grows *progressively*: after the
    ``i``-th query timestamp at most ``i + 1`` visit counts carry
    mass, so below the window every object is a single column (the
    naive per-object C(t) drags all ``|T_q|+1`` rows over the whole
    horizon -- most of the refactor's speedup is not multiplying
    structural zeros).  The paper's column shift (the visit count
    incrementing for mass inside the region) is fused into the growth
    step as one fancy-indexed row shift over the whole cohort.  Per
    object the products are identical to
    :func:`repro.core.ktimes.ktimes_distribution`, so results agree
    to 1e-12 (asserted in the test suite).

    ``inputs`` is the schedule; the result is one ``(n_rows,)`` count
    distribution per object, stacked ``(n_objects, n_rows)``.
    """

    name = "ktimes_sweep"

    def run(self, inputs, chain, region, backend, context=None, **_):
        schedule = inputs
        n = chain.n_states
        n_objects = schedule.n_objects
        live = 1  # count rows that can be non-zero so far
        stack = np.zeros((n, 1, n_objects), dtype=float)
        transpose = chain.transpose_matrix()
        columns = schedule.region_columns

        def visit(time: int) -> None:
            nonlocal stack, live
            for obj, initial in schedule.activations.get(time, ()):
                stack[:, 0, obj] = np.asarray(initial, dtype=float)
            if time in schedule.times:
                # footnote 3 for just-activated objects, the regular
                # count increment for everyone already in flight
                if live < schedule.n_rows:
                    grown = np.zeros(
                        (n, live + 1, n_objects), dtype=float
                    )
                    grown[:, :live, :] = stack
                    grown[columns, 1:live + 1, :] = stack[columns]
                    grown[columns, 0, :] = 0.0
                    stack = grown
                    live += 1
                else:  # defensive: a count beyond |T_q| cannot occur
                    stack[columns, 1:, :] = stack[columns, :-1, :]
                    stack[columns, 0, :] = 0.0

        visit(schedule.first)
        for time in range(schedule.first + 1, schedule.last + 1):
            if backend == "native":
                flat = native_kernels.spmm(
                    transpose, stack.reshape(n, live * n_objects)
                )
            else:
                flat = np.asarray(
                    transpose @ stack.reshape(n, live * n_objects),
                    dtype=float,
                )
            stack = flat.reshape(n, live, n_objects)
            visit(time)
        result = np.zeros((n_objects, schedule.n_rows), dtype=float)
        result[:, :live] = stack.sum(axis=0).T
        return result


class KTimesCore(Operator):
    """The k-times backward blocks ``D(t)`` (suffix-count recursion).

    ``D(t)[s, k]`` is the probability of visiting the region at
    exactly ``k`` query timestamps strictly after ``t``, given the
    object sits at state ``s`` at time ``t`` -- the suffix-count
    decomposition of Definition 4.  The recursion mirrors the forward
    C(t) algorithm run backwards::

        D(t_end) = [1, 0, ..., 0] per state
        D(t)     = M . E(t+1)

    where ``E(t+1)`` is ``D(t+1)`` with the region rows' counts
    shifted up one when ``t+1 in T_q`` (below the window every step
    is a plain ``M`` product).  An object observed at ``t_0 <
    min(T_q)`` with pdf ``pi`` then answers in one dense dot:
    ``p = pi . D(t_0)`` -- the k-times analogue of the Section V-B
    backward vector, amortising one pass over arbitrarily many
    objects.  Like the exists backward vector, the blocks are
    *shift-invariant* (``D`` of the slid window is ``M^stride`` times
    the old one), which is what the C-block ladder of
    :mod:`repro.core.streaming` extends per tick.

    ``inputs`` is ``(window, start_times)``; one pass from ``t_end``
    down to the earliest requested start yields ``D(t)`` for every
    intermediate ``t`` -- the requested ones are copied out as a
    ``{start: (n_states, n_rows) block}`` dict.
    """

    name = "ktimes_core"

    def run(self, inputs, chain, region, backend, context=None, **_):
        window, start_times = inputs
        wanted = sorted({int(t) for t in start_times})
        if not wanted:
            return {}
        if wanted[0] < 0:
            raise QueryError(
                f"start_time must be non-negative, got {wanted[0]}"
            )
        if wanted[-1] >= window.t_start:
            raise QueryError(
                f"suffix-count blocks exist only strictly before the "
                f"window start {window.t_start}; got {wanted[-1]}"
            )
        n = chain.n_states
        n_rows = window.duration + 1
        columns = np.fromiter(
            window.region, dtype=int, count=len(window.region)
        )
        columns.sort()
        block = np.zeros((n, n_rows), dtype=float)
        block[:, 0] = 1.0  # zero suffix visits after t_end, surely
        matrix = chain.matrix
        remaining = set(wanted)
        result: Dict[int, np.ndarray] = {}
        for target in range(window.t_end, wanted[0], -1):
            if backend == "native":
                # fused count-row update: shift + product in one kernel
                if target in window.times:
                    block = native_kernels.ktimes_update(
                        matrix, block, columns
                    )
                else:
                    block = native_kernels.spmm(matrix, block)
            elif target in window.times:
                shifted = block.copy()
                shifted[columns, 1:] = block[columns, :-1]
                shifted[columns, 0] = 0.0
                block = np.asarray(matrix @ shifted, dtype=float)
            else:
                block = np.asarray(matrix @ block, dtype=float)
            if target - 1 in remaining:
                # safe without a copy: the loop only rebinds `block`
                result[target - 1] = block
        return result


# ----------------------------------------------------------------------
# PosteriorCollapse
# ----------------------------------------------------------------------
class PosteriorCollapse(Operator):
    """Lemma 1 forward filtering of a multi-observation object.

    ``inputs`` is ``(observations, resume)`` where ``resume`` is an
    optional ``(time, pdf)`` pair to extend from (the streaming engine
    caches the posterior of the previous re-sighting).  Returns
    ``(t_last, P(X_t_last | all observations))``: once every
    observation precedes the query window, the object is exactly
    Markov from this pdf and rides the same backward columns as a
    single-observation object.
    """

    name = "posterior_collapse"

    def run(self, inputs, chain, region, backend, context=None, **_):
        observations, resume = inputs
        t_last = observations.last.time
        if resume is not None:
            time, vector = resume
            vector = np.asarray(vector, dtype=float).copy()
        else:
            time = observations.first.time
            vector = np.asarray(
                observations.first.distribution.vector, dtype=float
            )
        transpose = chain.transpose_matrix()
        for observation in observations.after(time):
            while time < observation.time:
                if backend == "native":
                    vector = native_kernels.matvec(transpose, vector)
                else:
                    vector = np.asarray(
                        transpose @ vector, dtype=float
                    ).reshape(-1)
                time += 1
            vector = vector * np.asarray(
                observation.distribution.vector, dtype=float
            )
            total = float(vector.sum())
            if total <= 0.0:
                raise InfeasibleEvidenceError(
                    f"observation at t={time} contradicts the "
                    f"trajectory model: posterior mass is zero"
                )
            vector = vector / total
        return t_last, vector


# ----------------------------------------------------------------------
# MCSample
# ----------------------------------------------------------------------
class MCSample(Operator):
    """Monte-Carlo PST-exists for many objects sharing a chain.

    ``inputs`` is ``(observation_sets, window, n_samples, seeds)``.
    One sampler serves every object (its per-chain CDF tables are
    built once), reseeded per object so each estimate is independent
    of which other objects a pruning stage removed.
    """

    name = "mc_sample"

    def run(self, inputs, chain, region, backend, context=None, **_):
        from repro.core.montecarlo import MonteCarloSampler

        observation_sets, window, n_samples, seeds = inputs
        sampler = MonteCarloSampler(chain)
        result = np.zeros(len(observation_sets), dtype=float)
        for row, observations in enumerate(observation_sets):
            sampler.reseed(seeds[row])
            if len(observations) > 1:
                estimate = sampler.exists_probability_multi(
                    observations, window, n_samples
                )
            else:
                estimate = sampler.exists_probability(
                    observations.first.distribution,
                    window,
                    n_samples,
                    start_time=observations.first.time,
                )
            result[row] = estimate.estimate
        return result


# ----------------------------------------------------------------------
# LadderExtend
# ----------------------------------------------------------------------
class LadderExtend(Operator):
    """Extend a backward-vector ladder by repeated ``M_minus`` steps.

    ``inputs`` is ``(m_minus, base, steps)``; returns the list of
    ``steps`` new rungs ``[M.base, M^2.base, ...]``.  This is the
    streaming engine's per-tick kernel: shift invariance makes every
    slid window's backward column a pure ``M_minus`` extension of the
    previous one.
    """

    name = "ladder_extend"

    def run(self, inputs, chain, region, backend, context=None, **_):
        m_minus, base, steps = inputs
        rungs: List[np.ndarray] = []
        vector = base
        for _step in range(steps):
            if isinstance(m_minus, CSRMatrix):
                vector = np.asarray(matvec(m_minus, vector), dtype=float)
            elif backend == "native":
                vector = native_kernels.matvec(m_minus, vector)
            else:
                vector = np.asarray(m_minus @ vector, dtype=float)
            rungs.append(vector)
        return rungs


# ----------------------------------------------------------------------
# filter-stage wrappers
# ----------------------------------------------------------------------
class Prefilter(Operator):
    """R-tree geometric prefilter probe (timed wrapper).

    ``inputs`` is ``(prefilter, window, min_start)``; returns the
    ``(candidate ids, nodes visited)`` pair of
    :meth:`~repro.database.pruning.GeometricPrefilter.probe`.
    """

    name = "prefilter"

    def run(self, inputs, chain, region, backend, context=None, **_):
        prefilter, window, min_start = inputs
        return prefilter.probe(window, min_start)


class BfsPrune(Operator):
    """Exact Section V-C reachability filter over a candidate list.

    ``inputs`` is ``(pruner, objects, window)``; returns
    ``(kept, removed)`` object lists.  Safe by construction: a removed
    object provably has probability zero in the window.
    """

    name = "bfs_prune"

    def run(self, inputs, chain, region, backend, context=None, **_):
        pruner, objects, window = inputs
        kept, removed = [], []
        for obj in objects:
            (kept if pruner.can_satisfy(obj, window) else removed).append(
                obj
            )
        return kept, removed


# Shared singleton instances -- operators are stateless, so one of each
# serves every caller (including forked workers).
BUILD_ABSORBING = BuildMatrices("absorbing")
BUILD_DOUBLED = BuildMatrices("doubled")
FORWARD_SWEEP = ForwardSweep()
BACKWARD_SWEEP = BackwardSweep()
KTIMES_SWEEP = KTimesSweep()
KTIMES_CORE = KTimesCore()
POSTERIOR_COLLAPSE = PosteriorCollapse()
MC_SAMPLE = MCSample()
LADDER_EXTEND = LadderExtend()
PREFILTER = Prefilter()
BFS_PRUNE = BfsPrune()
