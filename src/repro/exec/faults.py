"""Deterministic fault injection for the execution layer.

The fault-tolerant dispatch of :mod:`repro.exec.dispatch` (supervised
timeouts, pool rebuilds, tier degradation) and the transactional
streaming ticks of :mod:`repro.core.streaming` are only trustworthy if
their recovery paths can be *driven on demand*.  This module provides
the chaos hooks: a :class:`FaultInjector` holds a list of
:class:`FaultSpec` rules and is threaded through the
:class:`~repro.exec.operators.ExecutionContext` (and pickled into
worker-process shard tasks), and the execution layer calls
:meth:`FaultInjector.fire` at named *sites*.  A spec that matches a
site fires its action -- raise, kill the worker, sleep past a
deadline, unlink or corrupt a shared-memory segment -- a configured
number of times, deterministically.

Sites currently wired through the engine:

``worker:shard``
    entry of :func:`repro.exec.dispatch._evaluate_shard` in a pool
    worker; info carries ``row_lo``, ``fingerprint``, ``attempt``.
``worker:store-shard``
    entry of :func:`repro.exec.dispatch._evaluate_store_shard` when a
    query scatters over a sharded trajectory store; info carries
    ``shard_id``, ``attempt``, ``pid``.  Exhausted retries degrade the
    shard to in-parent evaluation instead of raising.
``operator:<name>``
    every :class:`~repro.exec.operators.Operator` call (e.g.
    ``operator:forward_sweep``); fires on the calling side, which is
    the worker process under process dispatch.
``dispatch:published``
    parent side, once per shared-memory segment published for a
    dispatch call; info carries ``name`` (segment) and ``kind``
    (``"chain"``/``"absorbing"``/``"stack"``) -- the site ``unlink``
    and ``corrupt`` actions target.
``streaming:tick`` / ``streaming:commit``
    inside :meth:`~repro.core.streaming.StandingQuery.tick`, after the
    journal sync and after evaluation (before the commit point); info
    carries ``tick``.

Example -- kill the worker evaluating the first shard, first attempt
only (the supervisor's pool rebuild then recovers the query)::

    faults = FaultInjector(
        FaultSpec(site="worker:shard", action="kill",
                  match={"row_lo": 0, "attempt": 0}),
    )
    engine.evaluate(query, options=PlanOptions(
        dispatch="process", faults=faults))

Injectors are deliberately cheap when idle (one attribute check per
site) and never installed by default -- production queries carry
``faults=None`` everywhere.
"""

from __future__ import annotations

import os
import signal
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.core.errors import InjectedFaultError, ValidationError

__all__ = ["FaultSpec", "FaultInjector"]

_ACTIONS = ("raise", "kill", "delay", "unlink", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic chaos rule.

    Attributes:
        site: the hook name the rule listens on (see module docs).
        action: ``"raise"`` (raise :attr:`exception`), ``"kill"``
            (SIGKILL the current process -- only honoured in a child
            of the process that built the injector, so a spec can
            never kill the test runner itself; in the origin process
            it raises instead), ``"delay"`` (sleep
            :attr:`delay_seconds`), ``"unlink"`` (remove the shared
            memory segment named by the event's ``name``), or
            ``"corrupt"`` (bit-flip that segment's payload in place).
        match: event-info keys that must all be present and equal for
            the rule to count the event (e.g. ``{"attempt": 0}`` fires
            on first attempts only, making retries succeed).
        times: how many matching events fire the action before the
            rule disarms; ``None`` fires forever.
        after: matching events to skip before the first firing (e.g.
            ``after=2`` poisons the third streaming tick).
        delay_seconds: sleep length for ``"delay"``.
        exception: the type ``"raise"`` instantiates.
        message: text for the raised exception.
    """

    site: str
    action: str = "raise"
    match: Mapping[str, Any] = field(default_factory=dict)
    times: Optional[int] = 1
    after: int = 0
    delay_seconds: float = 0.0
    exception: Type[BaseException] = InjectedFaultError
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValidationError(
                f"unknown fault action {self.action!r}; expected one "
                f"of {_ACTIONS}"
            )
        if self.times is not None and self.times < 1:
            raise ValidationError(
                f"times must be >= 1 or None, got {self.times!r}"
            )
        if self.after < 0:
            raise ValidationError(
                f"after must be >= 0, got {self.after!r}"
            )
        if self.delay_seconds < 0:
            raise ValidationError(
                f"delay_seconds must be >= 0, got "
                f"{self.delay_seconds!r}"
            )


class FaultInjector:
    """Fires :class:`FaultSpec` actions at named execution sites.

    Deterministic by construction: rules match on explicit event info
    (shard row, attempt number, tick index) and count matching events,
    never on wall-clock or randomness.  The injector pickles into
    worker tasks -- each task carries its own counter state, which is
    why specs that should fire once per *query* match on
    ``attempt``/``row_lo`` rather than relying on shared counters.

    Thread-safe on the parent side (one lock around the counters);
    the lock is dropped on pickling and re-created on load.
    """

    def __init__(self, *specs: FaultSpec) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._seen: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._origin_pid = os.getpid()
        self._lock = threading.Lock()

    # -- pickling: locks do not cross the process boundary -------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def add(self, spec: FaultSpec) -> "FaultInjector":
        """Arm one more rule; returns self for chaining."""
        self.specs.append(spec)
        return self

    def fired(self, site: Optional[str] = None) -> int:
        """Total actions fired (optionally for one site) -- parent
        side only; worker-side counters live in the worker's copy."""
        with self._lock:
            return sum(
                count
                for index, count in self._fired.items()
                if site is None or self.specs[index].site == site
            )

    def _matching(self, site: str, info: Mapping[str, Any]):
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if any(
                key not in info or info[key] != value
                for key, value in spec.match.items()
            ):
                continue
            yield index, spec

    def fire(self, site: str, **info: Any) -> None:
        """Report one event; execute every armed rule it matches."""
        actions: List[Tuple[FaultSpec, Dict[str, Any]]] = []
        with self._lock:
            for index, spec in self._matching(site, info):
                seen = self._seen.get(index, 0) + 1
                self._seen[index] = seen
                if seen <= spec.after:
                    continue
                if (
                    spec.times is not None
                    and seen > spec.after + spec.times
                ):
                    continue
                self._fired[index] = self._fired.get(index, 0) + 1
                actions.append((spec, dict(info)))
        for spec, event in actions:
            self._execute(spec, event)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _execute(self, spec: FaultSpec, info: Dict[str, Any]) -> None:
        if spec.action == "delay":
            _time.sleep(spec.delay_seconds)
            return
        if spec.action == "kill":
            if os.getpid() != self._origin_pid:
                os.kill(os.getpid(), signal.SIGKILL)
            # in the origin process a kill would take down the caller
            # (typically the test runner); degrade to a raise so the
            # spec still exercises a failure path
            raise spec.exception(
                spec.message
                or f"injected kill at {spec.site} refused in origin "
                f"process {self._origin_pid}"
            )
        if spec.action in ("unlink", "corrupt"):
            name = info.get("name")
            if name:
                if spec.action == "unlink":
                    _unlink_segment(name)
                else:
                    _corrupt_segment(name)
            return
        raise spec.exception(
            spec.message or f"injected fault at {spec.site}: {info}"
        )


def _unlink_segment(name: str) -> None:
    """Remove a shared-memory segment out from under its users."""
    path = os.path.join("/dev/shm", name)
    try:
        os.unlink(path)
        return
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        pass
    # non-Linux fallback: attach through the stdlib and unlink
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        segment.unlink()
    finally:
        segment.close()


def _corrupt_segment(name: str) -> None:
    """Flip every payload bit of a segment (checksums must notice)."""
    from multiprocessing import shared_memory

    import numpy as np

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        view = np.frombuffer(segment.buf, dtype=np.uint8)
        view ^= 0xFF
        del view
    finally:
        segment.close()
