"""Unified operator execution layer.

Every execution mode of the engine -- the batched qb/ob sweeps, the
per-object fallbacks, the Monte-Carlo sampler, the streaming ladder,
and the filter stages -- used to carry its own copy of the same few
kernels.  This package is the single home of those kernels:

* :mod:`repro.exec.operators` -- the operator abstraction
  (:class:`~repro.exec.operators.BuildMatrices`,
  :class:`~repro.exec.operators.ForwardSweep`,
  :class:`~repro.exec.operators.BackwardSweep`,
  :class:`~repro.exec.operators.PosteriorCollapse`,
  :class:`~repro.exec.operators.MCSample`,
  :class:`~repro.exec.operators.LadderExtend`, plus the
  :class:`~repro.exec.operators.Prefilter` /
  :class:`~repro.exec.operators.BfsPrune` filter wrappers) with uniform
  ``(inputs, chain, region, backend) -> arrays`` signatures and
  per-call timing hooks collected on an
  :class:`~repro.exec.operators.ExecutionContext`;
* :mod:`repro.exec.dispatch` -- serial / thread-pool / process-pool
  dispatch of operator work, with CSR matrices and stacked state
  vectors published once into :mod:`multiprocessing.shared_memory`
  and rebuilt pickle-free on the worker side, run under a supervisor
  (cost-priced deadlines, retry with pool rebuild, tier degradation)
  with a startup janitor for segments leaked by crashed sessions;
* :mod:`repro.exec.faults` -- deterministic fault injection
  (:class:`~repro.exec.faults.FaultInjector` /
  :class:`~repro.exec.faults.FaultSpec`) driving the recovery paths
  on demand in the fault-tolerance test suite;
* :mod:`repro.exec.calibrate` -- measures each operator over a
  parameter grid and least-squares-fits the
  :class:`~repro.core.planner.CostModel` coefficients so the planner's
  choices reflect the hardware it actually runs on.
"""

from repro.exec.dispatch import (
    SegmentInfo,
    list_segments,
    memory_stats,
    sweep_orphans,
)
from repro.exec.faults import FaultInjector, FaultSpec
from repro.exec.operators import (
    BACKWARD_SWEEP,
    BFS_PRUNE,
    BUILD_ABSORBING,
    BUILD_DOUBLED,
    FORWARD_SWEEP,
    LADDER_EXTEND,
    MC_SAMPLE,
    POSTERIOR_COLLAPSE,
    PREFILTER,
    BackwardSweep,
    BfsPrune,
    BuildMatrices,
    ExecutionContext,
    ForwardSweep,
    LadderExtend,
    MCSample,
    Operator,
    OperatorStats,
    PosteriorCollapse,
    Prefilter,
    SweepSchedule,
)

__all__ = [
    "BACKWARD_SWEEP",
    "BFS_PRUNE",
    "BUILD_ABSORBING",
    "BUILD_DOUBLED",
    "FORWARD_SWEEP",
    "LADDER_EXTEND",
    "MC_SAMPLE",
    "POSTERIOR_COLLAPSE",
    "PREFILTER",
    "BackwardSweep",
    "BfsPrune",
    "BuildMatrices",
    "ExecutionContext",
    "ForwardSweep",
    "LadderExtend",
    "MCSample",
    "Operator",
    "OperatorStats",
    "PosteriorCollapse",
    "Prefilter",
    "SweepSchedule",
    "FaultInjector",
    "FaultSpec",
    "SegmentInfo",
    "list_segments",
    "memory_stats",
    "sweep_orphans",
]
