"""Process-pool dispatch with shared-memory matrices.

The batched kernels hold the GIL for the duration of every sparse
product, so a thread pool only scales across *independent chain
groups* -- a single-chain database is capped at one core.  This module
lifts that cap: chain groups **and within-chain object shards** run
across a pool of worker processes, and the large arrays they need --
the chain CSR, the augmented absorbing matrices (plus their cached
transposes), and the stacked initial state vectors -- are published
*once* into :mod:`multiprocessing.shared_memory` segments.  Workers
rebuild ``scipy.sparse`` matrices as zero-copy views over those
segments (no pickling of matrix payloads ever happens) and adopt them
into a worker-local :class:`~repro.core.plan_cache.PlanCache` keyed by
the chain's *content fingerprint*, so cache hits are
address-space-independent and repeated queries pay publication and
rehydration once per worker, not once per task.

Only small task descriptions (segment names, shapes, row ranges, the
window) and small results (per-shard probability arrays, operator
timings) cross the process boundary.

The public surface is :func:`run_groups_in_processes`, called by
:class:`~repro.core.pipeline.QueryPipeline` when the planner (or
``PlanOptions.dispatch="process"``) selects process dispatch, and
:func:`shutdown`, which drains the pool and unlinks every published
segment (also registered via :mod:`atexit`).
"""

from __future__ import annotations

import atexit
import threading
import time as _time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import BackendError

try:  # process dispatch needs the scipy backend's CSR layout
    import scipy.sparse as _sp
except ImportError:  # pragma: no cover - exercised only without scipy
    _sp = None

__all__ = [
    "process_dispatch_available",
    "run_groups_in_processes",
    "shutdown",
    "publish_csr",
    "attach_csr",
    "SharedCSR",
]


def process_dispatch_available() -> bool:
    """Whether this platform supports the shared-memory process path."""
    return _sp is not None


# ----------------------------------------------------------------------
# shared-memory publication / attachment
# ----------------------------------------------------------------------
#: (segment name, shape, dtype string) -- everything needed to attach.
ArrayMeta = Tuple[str, Tuple[int, ...], str]


@dataclass(frozen=True)
class SharedCSR:
    """The metadata of one CSR matrix published to shared memory."""

    data: ArrayMeta
    indices: ArrayMeta
    indptr: ArrayMeta
    shape: Tuple[int, int]


def _publish_array(
    array: np.ndarray, segments: List[shared_memory.SharedMemory]
) -> ArrayMeta:
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(
        create=True, size=max(1, array.nbytes)
    )
    segments.append(segment)
    view = np.ndarray(
        array.shape, dtype=array.dtype, buffer=segment.buf
    )
    view[...] = array
    return (segment.name, array.shape, array.dtype.str)


def _attach_array(meta: ArrayMeta) -> np.ndarray:
    name, shape, dtype = meta
    segment = _attached_segment(name)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)


def publish_csr(
    matrix, segments: List[shared_memory.SharedMemory]
) -> SharedCSR:
    """Publish one ``scipy.sparse.csr_matrix`` into shared memory.

    The three CSR arrays become one segment each; ``segments``
    collects the handles so the owner can unlink them later.
    """
    if _sp is None or not _sp.issparse(matrix):
        raise BackendError(
            "process dispatch requires the scipy backend"
        )
    csr = matrix.tocsr()
    return SharedCSR(
        data=_publish_array(csr.data, segments),
        indices=_publish_array(csr.indices, segments),
        indptr=_publish_array(csr.indptr, segments),
        shape=tuple(csr.shape),
    )


def attach_csr(handle: SharedCSR):
    """Rebuild a CSR matrix as zero-copy views over shared memory.

    The returned matrix shares its buffers with every other process
    attached to the same segments; consumers must treat it as
    immutable (the plan cache's artefacts already are).
    """
    matrix = _sp.csr_matrix(
        (
            _attach_array(handle.data),
            _attach_array(handle.indices),
            _attach_array(handle.indptr),
        ),
        shape=handle.shape,
        copy=False,
    )
    return matrix


# worker-side segment registry for the *cached* artefacts (chains,
# absorbing matrices): attach each segment once per process and keep
# it alive while views point into it.  Per-query segments (the
# stacked initials) must NOT go through here -- they are attached
# transiently by _read_shard_rows and closed immediately, or every
# query would pin pages the parent already unlinked.  The registry is
# bounded: past the cap the oldest segments are closed, except those
# whose pages live views still reference (closing raises BufferError
# -- exactly the ones the worker PlanCache still serves).
_SEGMENTS: "OrderedDict[str, shared_memory.SharedMemory]" = (
    OrderedDict()
)
_SEGMENTS_CAP = 128
_SEGMENTS_LOCK = threading.Lock()


def _attached_segment(name: str) -> shared_memory.SharedMemory:
    with _SEGMENTS_LOCK:
        segment = _SEGMENTS.get(name)
        if segment is not None:
            _SEGMENTS.move_to_end(name)
            return segment
        # Attaching registers the name with the resource tracker a
        # second time; with fork every process shares the parent's
        # tracker, where registration is idempotent and the parent's
        # unlink() unregisters exactly once -- so no extra
        # bookkeeping is needed (or safe) here.
        segment = shared_memory.SharedMemory(name=name)
        _SEGMENTS[name] = segment
        overflow = len(_SEGMENTS) - _SEGMENTS_CAP
        while overflow > 0:
            stale_name, stale = _SEGMENTS.popitem(last=False)
            overflow -= 1
            try:
                stale.close()
            except BufferError:
                # live views (cached matrices) still use it: keep it
                # and treat it as recently used so the next overflow
                # pass tries genuinely stale segments first
                _SEGMENTS[stale_name] = stale
    return segment


# ----------------------------------------------------------------------
# parent-side publication cache + worker pool
# ----------------------------------------------------------------------
#: LRU bound on cached published artefacts (chains; absorbing matrix
#: quadruples).  Beyond it the least recently used entry's segments
#: are unlinked -- but only while no query is in flight, so a task's
#: handles can never name a vanished segment.
_PUBLISH_CACHE_SIZE = 16


def _unlink_segments(
    segments: List[shared_memory.SharedMemory],
) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass


class _Publisher:
    """Owns every published segment; publishes each artefact once.

    Matrices are keyed by ``(fingerprint, region, backend)`` so a
    monitoring workload re-issuing windows over the same chains
    publishes once per artefact, not once per query.  The cache is
    LRU-bounded (unlike an address-space cache, stale entries hold
    real ``/dev/shm`` pages): every in-flight dispatch call *pins*
    the entries its task handles name (a lease of keys), and
    :meth:`release` unlinks unpinned LRU overflow -- so eviction
    keeps up even under sustained query overlap, and a worker can
    never be handed a name whose segment vanished.  ``close``
    unlinks everything (also run at interpreter exit).
    """

    def __init__(self, maxsize: int = _PUBLISH_CACHE_SIZE) -> None:
        self.maxsize = maxsize
        self._chains: "OrderedDict[str, Tuple[SharedCSR, list]]" = (
            OrderedDict()
        )
        self._absorbing: "OrderedDict[tuple, Tuple[tuple, list]]" = (
            OrderedDict()
        )
        self._pins: Dict[tuple, int] = {}
        self._lock = threading.Lock()

    def acquire(self) -> list:
        """A fresh lease; every key handed out against it is pinned."""
        return []

    def _pin(self, key: tuple, lease: Optional[list]) -> None:
        if lease is not None:
            self._pins[key] = self._pins.get(key, 0) + 1
            lease.append(key)

    def release(self, lease: list) -> None:
        """Unpin a lease's keys and drop unpinned LRU overflow."""
        with self._lock:
            for key in lease:
                count = self._pins.get(key, 0) - 1
                if count > 0:
                    self._pins[key] = count
                else:
                    self._pins.pop(key, None)
            lease.clear()
            self._evict_overflow()

    def _evict_overflow(self) -> None:
        """Unlink oldest unpinned entries beyond the bound (lock held)."""
        for kind, cache in (
            ("chain", self._chains), ("absorbing", self._absorbing)
        ):
            while len(cache) > self.maxsize:
                victim = next(
                    (
                        key for key in cache
                        if self._pins.get((kind, key), 0) == 0
                    ),
                    None,
                )
                if victim is None:  # everything live is in flight
                    break
                _handles, segments = cache.pop(victim)
                _unlink_segments(segments)

    def chain(
        self, chain, lease: Optional[list] = None
    ) -> Tuple[str, SharedCSR]:
        fingerprint = chain.fingerprint()
        with self._lock:
            entry = self._chains.get(fingerprint)
            if entry is None:
                segments: list = []
                entry = (
                    publish_csr(chain.matrix, segments), segments
                )
                self._chains[fingerprint] = entry
            self._chains.move_to_end(fingerprint)
            self._pin(("chain", fingerprint), lease)
        return fingerprint, entry[0]

    def absorbing(
        self, chain, matrices, backend: Optional[str],
        lease: Optional[list] = None,
    ) -> Tuple[SharedCSR, SharedCSR, SharedCSR, SharedCSR]:
        """Publish ``(M_minus, M_plus, M_minus^T, M_plus^T)`` once."""
        key = (chain.fingerprint(), matrices.region, backend)
        with self._lock:
            entry = self._absorbing.get(key)
            if entry is None:
                minus_t, plus_t = matrices.transposed()
                segments = []
                handles = (
                    publish_csr(matrices.m_minus, segments),
                    publish_csr(matrices.m_plus, segments),
                    publish_csr(minus_t, segments),
                    publish_csr(plus_t, segments),
                )
                entry = (handles, segments)
                self._absorbing[key] = entry
            self._absorbing.move_to_end(key)
            self._pin(("absorbing", key), lease)
        return entry[0]

    def stack(self, csr) -> Tuple[SharedCSR, List[shared_memory.SharedMemory]]:
        """Publish a per-query stacked-vector CSR (caller unlinks)."""
        segments: List[shared_memory.SharedMemory] = []
        return publish_csr(csr, segments), segments

    def close(self) -> None:
        with self._lock:
            for cache in (self._chains, self._absorbing):
                for _handles, segments in cache.values():
                    _unlink_segments(segments)
                cache.clear()


_PUBLISHER: Optional[_Publisher] = None
_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_WORKERS = 0
_EXECUTOR_ACTIVE = 0  # dispatch calls currently using the pool
_POOL_LOCK = threading.Lock()


def _publisher() -> _Publisher:
    global _PUBLISHER
    with _POOL_LOCK:
        if _PUBLISHER is None:
            _PUBLISHER = _Publisher()
        return _PUBLISHER


def _acquire_executor(max_workers: int) -> ProcessPoolExecutor:
    """A persistent fork-based pool, grown on demand, refcounted.

    Fork keeps worker start-up at milliseconds (the parent's imports
    are inherited); platforms without fork fall back to spawn.  The
    pool is only replaced (to grow) while no other dispatch call is
    in flight -- a concurrent caller keeps the existing (smaller)
    pool rather than having its futures cancelled under it.  Pair
    every call with :func:`_release_executor`.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_ACTIVE
    with _POOL_LOCK:
        needs_growth = (
            _EXECUTOR is None or _EXECUTOR_WORKERS < max_workers
        )
        if needs_growth and _EXECUTOR_ACTIVE == 0:
            if _EXECUTOR is not None:
                _EXECUTOR.shutdown(wait=True, cancel_futures=True)
            try:
                context = get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                context = get_context("spawn")
            _EXECUTOR = ProcessPoolExecutor(
                max_workers=max_workers, mp_context=context
            )
            _EXECUTOR_WORKERS = max_workers
        _EXECUTOR_ACTIVE += 1
        return _EXECUTOR


def _release_executor() -> None:
    global _EXECUTOR_ACTIVE
    with _POOL_LOCK:
        _EXECUTOR_ACTIVE -= 1


def shutdown() -> None:
    """Drain the worker pool and unlink every published segment."""
    global _EXECUTOR, _EXECUTOR_WORKERS, _PUBLISHER
    with _POOL_LOCK:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=True, cancel_futures=True)
            _EXECUTOR = None
            _EXECUTOR_WORKERS = 0
        publisher, _PUBLISHER = _PUBLISHER, None
    if publisher is not None:
        publisher.close()


atexit.register(shutdown)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardTask:
    """One unit of worker work: a row range of one chain group.

    Everything here is cheap to pickle; the heavy payloads travel as
    :class:`SharedCSR` metadata.  The absorbing-matrix handles are
    ``None`` for k-times (``method="ct"``) shards -- the stacked C(t)
    sweep runs on the chain CSR alone, with the visit-count dimension
    living in the worker's stack rather than in an augmented matrix.
    """

    fingerprint: str
    chain: SharedCSR
    initials: SharedCSR
    row_lo: int
    row_hi: int
    starts: Tuple[int, ...]
    region: Tuple[int, ...]
    times: Tuple[int, ...]
    method: str
    backend: Optional[str]
    m_minus: Optional[SharedCSR] = None
    m_plus: Optional[SharedCSR] = None
    m_minus_t: Optional[SharedCSR] = None
    m_plus_t: Optional[SharedCSR] = None


# worker-local caches, populated lazily after the fork
_WORKER_CACHE = None


def _worker_cache():
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        from repro.core.plan_cache import PlanCache

        _WORKER_CACHE = PlanCache()
    return _WORKER_CACHE


def _rehydrate(task: _ShardTask):
    """Chain (+ absorbing matrices) from shared memory, cache-adopted.

    The worker cache is keyed by the *fingerprint* shipped with the
    task -- never by object identity -- so the first task of a chain
    rehydrates and every later task (and every later query) hits.
    k-times tasks carry no absorbing handles; ``matrices`` is None.
    """
    from repro.core.markov import MarkovChain
    from repro.core.matrices import AbsorbingMatrices
    from repro.linalg.ops import get_backend

    cache = _worker_cache()
    region = frozenset(task.region)
    adopted = cache.lookup_fingerprint(
        "chain", task.fingerprint, frozenset(), task.backend
    )
    if adopted is None:
        chain = MarkovChain(attach_csr(task.chain), validate=False)
        chain._fingerprint_cache = task.fingerprint
        adopted = cache.adopt(
            "chain", task.fingerprint, frozenset(), task.backend, chain
        )
    chain = adopted
    if task.m_minus is None:
        return chain, None, cache
    matrices = cache.lookup_fingerprint(
        "absorbing", task.fingerprint, region, task.backend
    )
    if matrices is None:
        rebuilt = AbsorbingMatrices(
            n_states=chain.n_states,
            region=region,
            m_minus=attach_csr(task.m_minus),
            m_plus=attach_csr(task.m_plus),
            backend=get_backend(task.backend),
        )
        rebuilt._transposed = (
            attach_csr(task.m_minus_t),
            attach_csr(task.m_plus_t),
        )
        matrices = cache.adopt(
            "absorbing", task.fingerprint, region, task.backend, rebuilt
        )
    return chain, matrices, cache


def _read_shard_rows(
    handle: SharedCSR, lo: int, hi: int
) -> np.ndarray:
    """Densify rows ``[lo, hi)`` of a per-query stacked CSR; release.

    Unlike the cached chain/matrix segments, the initials stack is
    published fresh per query and unlinked by the parent as soon as
    the query finishes -- caching its segments in ``_SEGMENTS`` would
    pin one segment's pages per query for the worker's lifetime.  So:
    attach, copy the shard out, close.
    """
    segments: List[shared_memory.SharedMemory] = []
    try:
        arrays = []
        for meta in (handle.data, handle.indices, handle.indptr):
            name, shape, dtype = meta
            segment = shared_memory.SharedMemory(name=name)
            segments.append(segment)
            arrays.append(
                np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=segment.buf
                )
            )
        matrix = _sp.csr_matrix(
            tuple(arrays), shape=handle.shape, copy=False
        )
        dense = matrix[lo:hi].toarray()
        del matrix, arrays  # drop the views before unmapping
        return dense
    finally:
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - error paths only
                pass  # views still alive (exception mid-attach)


def _evaluate_shard(task: _ShardTask):
    """Run one shard through the shared operators; return its slice."""
    from repro.core.query import SpatioTemporalWindow
    from repro.exec.operators import (
        FORWARD_SWEEP,
        KTIMES_SWEEP,
        ExecutionContext,
        KTimesSchedule,
        SweepSchedule,
    )

    shard_started = _time.perf_counter()
    chain, matrices, cache = _rehydrate(task)
    window = SpatioTemporalWindow(
        frozenset(task.region), frozenset(task.times)
    )
    context = ExecutionContext(cache, task.backend)
    rows = _read_shard_rows(
        task.initials, task.row_lo, task.row_hi
    )
    starts = task.starts[task.row_lo:task.row_hi]

    if task.method == "ct":
        # stacked Section VII C(t) sweep: one (n_rows,) count
        # distribution per shard row instead of a scalar
        activations: Dict[int, list] = {}
        for row in range(rows.shape[0]):
            activations.setdefault(starts[row], []).append(
                (row, rows[row])
            )
        region_columns = np.asarray(task.region, dtype=int)
        region_columns.sort()
        schedule = KTimesSchedule(
            n_objects=rows.shape[0],
            n_rows=len(task.times) + 1,
            first=min(starts),
            last=window.t_end,
            times=window.times,
            region_columns=region_columns,
            activations=activations,
        )
        values = KTIMES_SWEEP(
            schedule,
            chain,
            window.region,
            task.backend,
            context=context,
        )
    elif task.method == "ob":
        activations: Dict[int, list] = {}
        for row in range(rows.shape[0]):
            activations.setdefault(starts[row], []).append(
                (row, rows[row])
            )
        schedule = SweepSchedule(
            n_rows=rows.shape[0],
            first=min(starts),
            last=window.t_end,
            times=window.times,
            activations=activations,
            harvests={window.t_end: list(range(rows.shape[0]))},
            read="top",
            read_offset=matrices.top_index,
        )
        values = FORWARD_SWEEP(
            (matrices, schedule),
            chain,
            window.region,
            task.backend,
            context=context,
        )
    else:  # qb: the backward pass amortises inside the worker cache
        vectors = cache.backward_vectors(
            chain,
            window,
            sorted(set(starts)),
            task.backend,
            context=context,
        )
        values = np.zeros(rows.shape[0], dtype=float)
        for row in range(rows.shape[0]):
            extended = matrices.extend_initial(
                np.ascontiguousarray(rows[row], dtype=float),
                starts[row],
                window.times,
            )
            values[row] = float(extended @ vectors[starts[row]])
    return (
        task.row_lo,
        task.row_hi,
        values,
        context.serializable_timings(),
        _time.perf_counter() - shard_started,
    )


# ----------------------------------------------------------------------
# parent-side entry point
# ----------------------------------------------------------------------
def run_groups_in_processes(
    tasks: Sequence[Tuple[object, object, list, str]],
    window,
    *,
    max_workers: int,
    shard_min_objects: int,
    backend: Optional[str] = None,
    plan_cache=None,
    context=None,
) -> Tuple[Dict[str, object], List[float]]:
    """Evaluate single-observation chain groups across worker processes.

    Args:
        tasks: ``(chain, matrices, objects, method)`` per chain group,
            with ``matrices`` the group's absorbing matrices (resolved
            in the parent so the publication is the same artefact the
            serial path would use; ``None`` for ``method="ct"``
            k-times groups, whose stacked sweep needs only the chain
            CSR) and ``objects`` single-observation
            :class:`~repro.database.objects.UncertainObject` lists.
        window: the evaluated window.
        max_workers: pool size.
        shard_min_objects: smallest within-chain shard; stacked-sweep
            groups (``"ob"`` exists, ``"ct"`` k-times) are split into
            up to ``max_workers`` shards of at least this many rows.
        backend: linear-algebra backend name.
        plan_cache: parent cache (only used to keep artefacts shared).
        context: parent :class:`~repro.exec.operators.ExecutionContext`
            receiving the merged worker timings.

    Returns:
        ``(values, group_seconds)``: per-object answers across all
        groups -- scalar probabilities for exists shards, ``(|T_q|+1,)``
        count-distribution arrays for k-times shards -- identical (to
        the bit) to the serial kernels, asserted at 1e-12 in the
        dispatch parity tests -- plus, per input task, the summed
        worker-side wall seconds of its shards (the per-group EXPLAIN
        ANALYZE timing).
    """
    publisher = _publisher()
    executor = _acquire_executor(max_workers)
    futures = []
    stack_segments: List[shared_memory.SharedMemory] = []
    id_slices: List[Tuple[List[str], int]] = []
    group_seconds: List[float] = []
    lease = publisher.acquire()

    try:
        for task_index, (chain, matrices, objects, method) in enumerate(
            tasks
        ):
            group_seconds.append(0.0)
            if not objects:
                continue
            fingerprint, chain_handle = publisher.chain(chain, lease)
            if matrices is not None:
                minus_h, plus_h, minus_t_h, plus_t_h = (
                    publisher.absorbing(chain, matrices, backend, lease)
                )
            else:  # ct: the chain CSR is the whole matrix payload
                minus_h = plus_h = minus_t_h = plus_t_h = None
            stacked = _sp.vstack(
                [
                    _sp.csr_matrix(
                        np.asarray(
                            obj.initial.distribution.vector,
                            dtype=float,
                        ).reshape(1, -1)
                    )
                    for obj in objects
                ],
                format="csr",
            )
            stack_handle, segments = publisher.stack(stacked)
            stack_segments.extend(segments)
            starts = tuple(obj.initial.time for obj in objects)
            ids = [obj.object_id for obj in objects]

            n_rows = len(objects)
            if method in ("ob", "ct"):
                n_shards = max(
                    1,
                    min(
                        max_workers,
                        n_rows // max(1, shard_min_objects) or 1,
                    ),
                )
            else:
                n_shards = 1  # qb: one backward pass serves the group
            bounds = np.linspace(
                0, n_rows, n_shards + 1, dtype=int
            )
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if lo == hi:
                    continue
                task = _ShardTask(
                    fingerprint=fingerprint,
                    chain=chain_handle,
                    m_minus=minus_h,
                    m_plus=plus_h,
                    m_minus_t=minus_t_h,
                    m_plus_t=plus_t_h,
                    initials=stack_handle,
                    row_lo=int(lo),
                    row_hi=int(hi),
                    starts=starts,
                    region=tuple(sorted(window.region)),
                    times=tuple(sorted(window.times)),
                    method=method,
                    backend=backend,
                )
                futures.append(
                    executor.submit(_evaluate_shard, task)
                )
                id_slices.append((ids, task_index))

        values: Dict[str, object] = {}
        for future, (ids, task_index) in zip(futures, id_slices):
            row_lo, _row_hi, shard_values, timings, elapsed = (
                future.result()
            )
            shard_values = np.asarray(shard_values)
            for offset, answer in enumerate(shard_values):
                values[ids[row_lo + offset]] = (
                    # ct shards return one count distribution per row
                    np.asarray(answer, dtype=float)
                    if shard_values.ndim == 2
                    else float(answer)
                )
            group_seconds[task_index] += elapsed
            if context is not None:
                context.merge(timings)
        return values, group_seconds
    finally:
        # on an early exception, queued shards are cancelled and
        # running ones drained *before* their segments vanish -- a
        # worker must never observe a mid-query unlink
        for future in futures:
            future.cancel()
        _wait_futures(futures)
        _unlink_segments(stack_segments)
        publisher.release(lease)
        _release_executor()
