"""Process-pool dispatch with shared-memory matrices.

The batched kernels hold the GIL for the duration of every sparse
product, so a thread pool only scales across *independent chain
groups* -- a single-chain database is capped at one core.  This module
lifts that cap: chain groups **and within-chain object shards** run
across a pool of worker processes, and the large arrays they need --
the chain CSR, the augmented absorbing matrices (plus their cached
transposes), and the stacked initial state vectors -- are published
*once* into :mod:`multiprocessing.shared_memory` segments.  Workers
rebuild ``scipy.sparse`` matrices as zero-copy views over those
segments (no pickling of matrix payloads ever happens) and adopt them
into a worker-local :class:`~repro.core.plan_cache.PlanCache` keyed by
the chain's *content fingerprint*, so cache hits are
address-space-independent and repeated queries pay publication and
rehydration once per worker, not once per task.

Only small task descriptions (segment names, shapes, row ranges, the
window) and small results (per-shard probability arrays, operator
timings) cross the process boundary.

The public surface is :func:`run_groups_in_processes`, called by
:class:`~repro.core.pipeline.QueryPipeline` when the planner (or
``PlanOptions.dispatch="process"``) selects process dispatch, and
:func:`shutdown`, which drains the pool and unlinks every published
segment (also registered via :mod:`atexit`).

**Fault tolerance.**  Task submission runs under a supervisor: every
shard gets a deadline priced from the calibrated cost model, a worker
crash (``BrokenProcessPool``) rebuilds the pool and resubmits only the
unfinished shards with exponential backoff, and a hung task tears the
poisoned pool down instead of stalling the query.  Exhausted retries
raise :class:`~repro.core.errors.WorkerCrashError` /
:class:`~repro.core.errors.TaskTimeoutError` /
:class:`~repro.core.errors.SegmentLostError`, which the pipeline
catches to degrade process -> thread -> serial -- the query still
returns the exact answer.  Every published segment is named
``repro-<session>-<pid>-<seq>`` so the startup *janitor*
(:func:`sweep_orphans`, run on every pool build and by ``repro-bench
doctor``) can identify and unlink segments leaked by crashed sessions,
and :func:`memory_stats` accounts for this session's live bytes.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time as _time
import zlib
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as _wait_futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace as _dc_replace
from multiprocessing import get_context, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple
from uuid import uuid4

import numpy as np

from repro.core.errors import (
    BackendError,
    ExecutionError,
    SegmentLostError,
    TaskTimeoutError,
    WorkerCrashError,
)

try:  # process dispatch needs the scipy backend's CSR layout
    import scipy.sparse as _sp
except ImportError:  # pragma: no cover - exercised only without scipy
    _sp = None

__all__ = [
    "process_dispatch_available",
    "run_groups_in_processes",
    "run_store_shards",
    "prewarm",
    "shutdown",
    "publish_csr",
    "attach_csr",
    "SharedCSR",
    "SegmentInfo",
    "list_segments",
    "sweep_orphans",
    "memory_stats",
]


def process_dispatch_available() -> bool:
    """Whether this platform supports the shared-memory process path."""
    return _sp is not None


# ----------------------------------------------------------------------
# shared-memory publication / attachment
# ----------------------------------------------------------------------
#: (segment name, shape, dtype string) -- everything needed to attach.
ArrayMeta = Tuple[str, Tuple[int, ...], str]

# Every segment this session publishes is named
# ``repro-<session>-<pid>-<seq>`` (short enough for macOS's 31-char
# PSHM limit).  The embedded PID is what makes leaks *attributable*:
# the janitor can tell a dead session's orphan from a live neighbour's
# working set and sweep only the former.
_SESSION_ID = uuid4().hex[:8]
_SEGMENT_COUNTER = itertools.count()
_SEGMENT_PREFIX = "repro-"
_SHM_DIR = "/dev/shm"


def _segment_name() -> str:
    return (
        f"{_SEGMENT_PREFIX}{_SESSION_ID}-{os.getpid()}-"
        f"{next(_SEGMENT_COUNTER)}"
    )


@dataclass(frozen=True)
class SharedCSR:
    """The metadata of one CSR matrix published to shared memory.

    ``checksum`` is the CRC-32 of the three payload buffers at
    publication time; workers re-verify it on attach when the
    supervisor policy asks (``verify_segments``), so a corrupted
    segment fails loudly as
    :class:`~repro.core.errors.SegmentLostError` instead of silently
    producing wrong probabilities.
    """

    data: ArrayMeta
    indices: ArrayMeta
    indptr: ArrayMeta
    shape: Tuple[int, int]
    checksum: Optional[int] = None


def _publish_array(
    array: np.ndarray, segments: List[shared_memory.SharedMemory]
) -> ArrayMeta:
    array = np.ascontiguousarray(array)
    while True:
        try:
            segment = shared_memory.SharedMemory(
                name=_segment_name(),
                create=True,
                size=max(1, array.nbytes),
            )
            break
        except FileExistsError:  # pragma: no cover - counter collision
            continue
    segments.append(segment)
    view = np.ndarray(
        array.shape, dtype=array.dtype, buffer=segment.buf
    )
    view[...] = array
    return (segment.name, array.shape, array.dtype.str)


def _attach_array(meta: ArrayMeta) -> np.ndarray:
    name, shape, dtype = meta
    segment = _attached_segment(name)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)


def _csr_checksum(arrays: Sequence[np.ndarray]) -> int:
    crc = 0
    for array in arrays:
        crc = zlib.crc32(np.ascontiguousarray(array), crc)
    return crc


def publish_csr(
    matrix, segments: List[shared_memory.SharedMemory]
) -> SharedCSR:
    """Publish one ``scipy.sparse.csr_matrix`` into shared memory.

    The three CSR arrays become one segment each; ``segments``
    collects the handles so the owner can unlink them later.  The
    returned handle carries a payload checksum for optional
    verification on attach.
    """
    if _sp is None or not _sp.issparse(matrix):
        raise BackendError(
            "process dispatch requires the scipy backend"
        )
    csr = matrix.tocsr()
    return SharedCSR(
        data=_publish_array(csr.data, segments),
        indices=_publish_array(csr.indices, segments),
        indptr=_publish_array(csr.indptr, segments),
        shape=tuple(csr.shape),
        checksum=_csr_checksum((csr.data, csr.indices, csr.indptr)),
    )


def attach_csr(handle: SharedCSR, verify: bool = False):
    """Rebuild a CSR matrix as zero-copy views over shared memory.

    The returned matrix shares its buffers with every other process
    attached to the same segments; consumers must treat it as
    immutable (the plan cache's artefacts already are).  With
    ``verify=True`` the payload is re-checksummed against the
    publication checksum and a mismatch raises
    :class:`~repro.core.errors.SegmentLostError`.
    """
    arrays = (
        _attach_array(handle.data),
        _attach_array(handle.indices),
        _attach_array(handle.indptr),
    )
    if verify and handle.checksum is not None:
        observed = _csr_checksum(arrays)
        if observed != handle.checksum:
            raise SegmentLostError(
                f"segment {handle.data[0]} failed checksum "
                f"verification (published {handle.checksum:#010x}, "
                f"observed {observed:#010x}); the publisher's pages "
                f"were corrupted or re-used"
            )
    matrix = _sp.csr_matrix(
        arrays,
        shape=handle.shape,
        copy=False,
    )
    return matrix


# worker-side segment registry for the *cached* artefacts (chains,
# absorbing matrices): attach each segment once per process and keep
# it alive while views point into it.  Per-query segments (the
# stacked initials) must NOT go through here -- they are attached
# transiently by _read_shard_rows and closed immediately, or every
# query would pin pages the parent already unlinked.  The registry is
# bounded: past the cap the oldest segments are closed, except those
# whose pages live views still reference (closing raises BufferError
# -- exactly the ones the worker PlanCache still serves).
_SEGMENTS: "OrderedDict[str, shared_memory.SharedMemory]" = (
    OrderedDict()
)
_SEGMENTS_CAP = 128
_SEGMENTS_LOCK = threading.Lock()


def _attached_segment(name: str) -> shared_memory.SharedMemory:
    with _SEGMENTS_LOCK:
        segment = _SEGMENTS.get(name)
        if segment is not None:
            _SEGMENTS.move_to_end(name)
            return segment
        # Attaching registers the name with the resource tracker a
        # second time; with fork every process shares the parent's
        # tracker, where registration is idempotent and the parent's
        # unlink() unregisters exactly once -- so no extra
        # bookkeeping is needed (or safe) here.
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError as exc:
            # the publisher unlinked (or a janitor swept) the segment
            # between task submission and attach; the supervisor
            # republishes and retries on this specific error
            raise SegmentLostError(
                f"shared-memory segment {name!r} vanished before "
                f"attach"
            ) from exc
        _SEGMENTS[name] = segment
        overflow = len(_SEGMENTS) - _SEGMENTS_CAP
        while overflow > 0:
            stale_name, stale = _SEGMENTS.popitem(last=False)
            overflow -= 1
            try:
                stale.close()
            except BufferError:
                # live views (cached matrices) still use it: keep it
                # and treat it as recently used so the next overflow
                # pass tries genuinely stale segments first
                _SEGMENTS[stale_name] = stale
    return segment


# ----------------------------------------------------------------------
# parent-side publication cache + worker pool
# ----------------------------------------------------------------------
#: LRU bound on cached published artefacts (chains; absorbing matrix
#: quadruples).  Beyond it the least recently used entry's segments
#: are unlinked -- but only while no query is in flight, so a task's
#: handles can never name a vanished segment.
_PUBLISH_CACHE_SIZE = 16


def _unlink_segments(
    segments: List[shared_memory.SharedMemory],
) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass


class _Publisher:
    """Owns every published segment; publishes each artefact once.

    Matrices are keyed by ``(fingerprint, region, backend)`` so a
    monitoring workload re-issuing windows over the same chains
    publishes once per artefact, not once per query.  The cache is
    LRU-bounded (unlike an address-space cache, stale entries hold
    real ``/dev/shm`` pages): every in-flight dispatch call *pins*
    the entries its task handles name (a lease of keys), and
    :meth:`release` unlinks unpinned LRU overflow -- so eviction
    keeps up even under sustained query overlap, and a worker can
    never be handed a name whose segment vanished.  ``close``
    unlinks everything (also run at interpreter exit).
    """

    def __init__(self, maxsize: int = _PUBLISH_CACHE_SIZE) -> None:
        self.maxsize = maxsize
        self._chains: "OrderedDict[str, Tuple[SharedCSR, list]]" = (
            OrderedDict()
        )
        self._absorbing: "OrderedDict[tuple, Tuple[tuple, list]]" = (
            OrderedDict()
        )
        # per-chain Monte-Carlo CDF tables: (cdf, targets) ArrayMeta
        # pair, or None for chains too dense to tabulate
        self._tables: "OrderedDict[str, Tuple[object, list]]" = (
            OrderedDict()
        )
        self._pins: Dict[tuple, int] = {}
        self._lock = threading.Lock()

    def acquire(self) -> list:
        """A fresh lease; every key handed out against it is pinned."""
        return []

    def _pin(self, key: tuple, lease: Optional[list]) -> None:
        if lease is not None:
            self._pins[key] = self._pins.get(key, 0) + 1
            lease.append(key)

    def release(self, lease: list) -> None:
        """Unpin a lease's keys and drop unpinned LRU overflow."""
        with self._lock:
            for key in lease:
                count = self._pins.get(key, 0) - 1
                if count > 0:
                    self._pins[key] = count
                else:
                    self._pins.pop(key, None)
            lease.clear()
            self._evict_overflow()

    def _evict_overflow(self) -> None:
        """Unlink oldest unpinned entries beyond the bound (lock held)."""
        for kind, cache in (
            ("chain", self._chains),
            ("absorbing", self._absorbing),
            ("tables", self._tables),
        ):
            while len(cache) > self.maxsize:
                victim = next(
                    (
                        key for key in cache
                        if self._pins.get((kind, key), 0) == 0
                    ),
                    None,
                )
                if victim is None:  # everything live is in flight
                    break
                _handles, segments = cache.pop(victim)
                _unlink_segments(segments)

    def chain(
        self, chain, lease: Optional[list] = None
    ) -> Tuple[str, SharedCSR]:
        fingerprint = chain.fingerprint()
        with self._lock:
            entry = self._chains.get(fingerprint)
            if entry is None:
                segments: list = []
                entry = (
                    publish_csr(chain.matrix, segments), segments
                )
                self._chains[fingerprint] = entry
            self._chains.move_to_end(fingerprint)
            self._pin(("chain", fingerprint), lease)
        return fingerprint, entry[0]

    def absorbing(
        self, chain, matrices, backend: Optional[str],
        lease: Optional[list] = None,
    ) -> Tuple[SharedCSR, SharedCSR, SharedCSR, SharedCSR]:
        """Publish ``(M_minus, M_plus, M_minus^T, M_plus^T)`` once."""
        key = (chain.fingerprint(), matrices.region, backend)
        with self._lock:
            entry = self._absorbing.get(key)
            if entry is None:
                minus_t, plus_t = matrices.transposed()
                segments = []
                handles = (
                    publish_csr(matrices.m_minus, segments),
                    publish_csr(matrices.m_plus, segments),
                    publish_csr(minus_t, segments),
                    publish_csr(plus_t, segments),
                )
                entry = (handles, segments)
                self._absorbing[key] = entry
            self._absorbing.move_to_end(key)
            self._pin(("absorbing", key), lease)
        return entry[0]

    def stack(self, csr) -> Tuple[SharedCSR, List[shared_memory.SharedMemory]]:
        """Publish a per-query stacked-vector CSR (caller unlinks)."""
        segments: List[shared_memory.SharedMemory] = []
        return publish_csr(csr, segments), segments

    def mc_tables(
        self, chain, lease: Optional[list] = None
    ) -> Optional[Tuple[ArrayMeta, ArrayMeta]]:
        """Publish the chain's Monte-Carlo CDF tables once.

        Returns the ``(cdf, targets)`` segment metadata, or None for
        chains too dense to tabulate (workers then fall back to their
        per-row CDFs, exactly like the serial sampler).
        """
        from repro.core.montecarlo import MonteCarloSampler

        fingerprint = chain.fingerprint()
        with self._lock:
            entry = self._tables.get(fingerprint)
            if entry is None:
                tables = MonteCarloSampler.shared_cdf_tables(chain)
                segments: list = []
                if tables is None:
                    entry = (None, segments)
                else:
                    cdf, targets = tables
                    entry = (
                        (
                            _publish_array(cdf, segments),
                            _publish_array(targets, segments),
                        ),
                        segments,
                    )
                self._tables[fingerprint] = entry
            self._tables.move_to_end(fingerprint)
            self._pin(("tables", fingerprint), lease)
        return entry[0]

    def live_bytes(self) -> int:
        """Total ``/dev/shm`` bytes held by cached publications."""
        with self._lock:
            return sum(
                segment.size
                for cache in (
                    self._chains, self._absorbing, self._tables
                )
                for _handles, segments in cache.values()
                for segment in segments
            )

    def forget(self) -> None:
        """Unlink every cached publication, pinned or not.

        Called when a worker reports a lost/corrupt segment: none of
        the cached handles can be trusted any more (the corruption is
        not attributable to one entry), so the next query republishes
        from the parent's matrices.  Dropping pinned entries is safe:
        any other in-flight dispatch whose worker loses the segment
        mid-attach fails with the same supervised
        :class:`~repro.core.errors.SegmentLostError` and degrades to
        an exact lower tier.
        """
        with self._lock:
            for cache in (
                self._chains, self._absorbing, self._tables
            ):
                for _handles, segments in cache.values():
                    _unlink_segments(segments)
                cache.clear()

    def close(self) -> None:
        with self._lock:
            for cache in (
                self._chains, self._absorbing, self._tables
            ):
                for _handles, segments in cache.values():
                    _unlink_segments(segments)
                cache.clear()


_PUBLISHER: Optional[_Publisher] = None
_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_WORKERS = 0
_EXECUTOR_ACTIVE = 0  # dispatch calls currently using the pool
_EXECUTOR_BROKEN = False  # poisoned by a crash/timeout; rebuild next
_POOL_LOCK = threading.Lock()


def _publisher() -> _Publisher:
    global _PUBLISHER
    with _POOL_LOCK:
        if _PUBLISHER is None:
            _PUBLISHER = _Publisher()
        return _PUBLISHER


def _build_pool(max_workers: int) -> ProcessPoolExecutor:
    try:
        context = get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        context = get_context("spawn")
    # every pool build doubles as janitor duty: segments leaked by a
    # crashed earlier session are swept before this one adds its own
    try:
        sweep_orphans()
    except OSError:  # pragma: no cover - exotic /dev/shm perms
        pass
    return ProcessPoolExecutor(
        max_workers=max_workers, mp_context=context
    )


def _acquire_executor(
    max_workers: int,
) -> Tuple[ProcessPoolExecutor, bool]:
    """A persistent fork-based pool, grown on demand, refcounted.

    Fork keeps worker start-up at milliseconds (the parent's imports
    are inherited); platforms without fork fall back to spawn.  The
    shared pool is only replaced (to grow, or after
    :func:`_invalidate_executor` marked it broken) while no other
    dispatch call is in flight -- a concurrent caller would have its
    futures cancelled under it.  A caller that needs a pool while the
    shared one is broken *and* busy gets a private throwaway pool
    instead of the poisoned one.

    Returns ``(executor, owned)``; pass both to
    :func:`_release_executor` (an owned pool is shut down there).
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_ACTIVE
    global _EXECUTOR_BROKEN
    with _POOL_LOCK:
        needs_rebuild = (
            _EXECUTOR is None
            or _EXECUTOR_BROKEN
            or _EXECUTOR_WORKERS < max_workers
        )
        if needs_rebuild and _EXECUTOR_ACTIVE == 0:
            if _EXECUTOR is not None:
                # a broken pool may contain hung workers: never block
                # on them, just abandon and let SIGKILL/atexit reap
                _EXECUTOR.shutdown(
                    wait=not _EXECUTOR_BROKEN, cancel_futures=True
                )
            workers = max(max_workers, _EXECUTOR_WORKERS)
            _EXECUTOR = _build_pool(workers)
            _EXECUTOR_WORKERS = workers
            _EXECUTOR_BROKEN = False
        elif _EXECUTOR_BROKEN:
            # shared pool is poisoned but another dispatch call still
            # holds it: serve this caller from a private pool
            return _build_pool(max_workers), True
        _EXECUTOR_ACTIVE += 1
        return _EXECUTOR, False


def _release_executor(
    executor: Optional[ProcessPoolExecutor] = None,
    owned: bool = False,
) -> None:
    global _EXECUTOR_ACTIVE
    if owned:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        return
    with _POOL_LOCK:
        _EXECUTOR_ACTIVE -= 1


def _invalidate_executor(executor: ProcessPoolExecutor) -> None:
    """Mark the shared pool poisoned so the next acquire rebuilds it.

    Called by the supervisor after a crash or timeout.  If the caller
    was using a private (owned) pool this is a no-op for the shared
    state -- comparing identities keeps a stale invalidation from
    condemning a healthy replacement pool.
    """
    global _EXECUTOR_BROKEN
    with _POOL_LOCK:
        if executor is _EXECUTOR:
            _EXECUTOR_BROKEN = True


def prewarm(max_workers: int, compile_native: bool = True) -> None:
    """Build the persistent worker pool ahead of the first dispatch.

    The first ``dispatch="process"`` evaluation of a session pays the
    pool fork (and triggers the janitor sweep); a long-lived caller --
    the :mod:`repro.service` front end at startup, a benchmark
    harness before its measured section -- calls this once so that
    cost lands outside any latency-sensitive window.  No-op when a
    pool with at least ``max_workers`` workers is already up; safe
    without scipy (the pool itself has no backend dependency).

    With ``compile_native`` (the default) the ``native`` backend's
    kernels are also compiled/exercised on tiny inputs
    (:func:`repro.linalg.native.prewarm`) *before* the pool forks, so
    first-query latency never eats the JIT cost and fork-spawned
    workers inherit the warm kernels (numba's ``cache=True`` persists
    the machine code for spawn-start pools too).  Kernel prewarm never
    raises -- a backend that cannot compile simply degrades to scipy
    at execution time.
    """
    if compile_native:
        try:
            from repro.linalg import native as _native

            _native.prewarm()
        except Exception:  # pragma: no cover - defensive: never block
            pass
    executor, owned = _acquire_executor(max_workers)
    _release_executor(executor, owned)


def shutdown() -> None:
    """Drain the worker pool and unlink every published segment.

    Idempotent and safe after worker death: a second call (or a call
    racing the :mod:`atexit` hook) finds the globals already cleared
    and returns; a broken pool is abandoned without waiting on
    workers that will never drain.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_BROKEN, _PUBLISHER
    with _POOL_LOCK:
        executor, _EXECUTOR = _EXECUTOR, None
        broken, _EXECUTOR_BROKEN = _EXECUTOR_BROKEN, False
        _EXECUTOR_WORKERS = 0
        publisher, _PUBLISHER = _PUBLISHER, None
    if executor is not None:
        try:
            executor.shutdown(wait=not broken, cancel_futures=True)
        except Exception:  # pragma: no cover - interpreter teardown
            pass
    if publisher is not None:
        publisher.close()


atexit.register(shutdown)


# ----------------------------------------------------------------------
# shared-memory janitor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentInfo:
    """One ``repro-`` shared-memory segment found on this machine."""

    name: str
    pid: int
    size: int
    alive: bool  # does the owning process still exist?


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    return True


def list_segments(shm_dir: str = _SHM_DIR) -> List[SegmentInfo]:
    """Every ``repro-*`` segment in ``/dev/shm``, with owner liveness.

    Only meaningful on platforms backing POSIX shared memory with a
    tmpfs directory (Linux); elsewhere the scan finds nothing and the
    janitor is a no-op -- leaked segments there are reclaimed by the
    OS at reboot, which is also the platform's own guarantee.
    """
    found: List[SegmentInfo] = []
    try:
        names = sorted(os.listdir(shm_dir))
    except (FileNotFoundError, NotADirectoryError):
        return found
    for name in names:
        if not name.startswith(_SEGMENT_PREFIX):
            continue
        parts = name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue  # not our naming scheme; leave it alone
        try:
            size = os.stat(os.path.join(shm_dir, name)).st_size
        except OSError:
            continue  # vanished between listdir and stat
        found.append(
            SegmentInfo(
                name=name, pid=pid, size=size, alive=_pid_alive(pid)
            )
        )
    return found


def sweep_orphans(shm_dir: str = _SHM_DIR) -> List[SegmentInfo]:
    """Unlink ``repro-*`` segments whose owning process is dead.

    Runs on every pool build and from ``repro-bench doctor``.  Uses
    ``os.unlink`` directly rather than attaching through the stdlib:
    attaching would register the orphan with *this* process's resource
    tracker and emit leak warnings for a segment we are deliberately
    destroying.  Returns the segments that were reclaimed.
    """
    swept: List[SegmentInfo] = []
    for info in list_segments(shm_dir):
        if info.alive:
            continue
        try:
            os.unlink(os.path.join(shm_dir, info.name))
        except FileNotFoundError:
            continue  # another janitor got there first
        swept.append(info)
    return swept


def memory_stats() -> Dict[str, int]:
    """Shared-memory accounting for this session and the machine.

    Returns a dict with ``session_bytes`` (live bytes held by this
    session's publication cache), ``machine_bytes`` (all ``repro-*``
    segments on the host), ``orphan_bytes`` (subset owned by dead
    processes -- what :func:`sweep_orphans` would reclaim) and
    ``segments`` (machine-wide segment count).
    """
    with _POOL_LOCK:
        publisher = _PUBLISHER
    session = publisher.live_bytes() if publisher is not None else 0
    infos = list_segments()
    return {
        "session_bytes": session,
        "machine_bytes": sum(info.size for info in infos),
        "orphan_bytes": sum(
            info.size for info in infos if not info.alive
        ),
        "segments": len(infos),
    }


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardTask:
    """One unit of worker work: a row range of one chain group.

    Everything here is cheap to pickle; the heavy payloads travel as
    :class:`SharedCSR` metadata.  The absorbing-matrix handles are
    ``None`` for k-times (``method="ct"``) shards -- the stacked C(t)
    sweep runs on the chain CSR alone, with the visit-count dimension
    living in the worker's stack rather than in an augmented matrix.

    ``attempt`` counts supervisor resubmissions of this shard (0 on
    first submission); fault-injection specs match on it to fail an
    attempt and let the retry succeed.  ``verify`` re-checksums
    attached segments; ``faults`` carries the pickled injector.
    """

    fingerprint: str
    chain: SharedCSR
    initials: SharedCSR
    row_lo: int
    row_hi: int
    starts: Tuple[int, ...]
    region: Tuple[int, ...]
    times: Tuple[int, ...]
    method: str
    backend: Optional[str]
    m_minus: Optional[SharedCSR] = None
    m_plus: Optional[SharedCSR] = None
    m_minus_t: Optional[SharedCSR] = None
    m_plus_t: Optional[SharedCSR] = None
    # multi-observation ("multi") and Monte-Carlo ("mc") shards: the
    # `initials` stack holds one row per *observation* instead of per
    # object; `obs_times`/`obj_indptr` map rows back to objects, MC
    # shards additionally carry per-object seeds and (when the chain
    # tabulates) the published CDF table segments
    obs_times: Optional[ArrayMeta] = None
    obj_indptr: Optional[ArrayMeta] = None
    n_samples: int = 100
    seeds: Optional[Tuple[Optional[int], ...]] = None
    mc_cdf: Optional[ArrayMeta] = None
    mc_targets: Optional[ArrayMeta] = None
    attempt: int = 0
    verify: bool = False
    faults: Optional[object] = None


# worker-local caches, populated lazily after the fork
_WORKER_CACHE = None


def _worker_cache():
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        from repro.core.plan_cache import PlanCache

        _WORKER_CACHE = PlanCache()
    return _WORKER_CACHE


def _rehydrate(task: _ShardTask):
    """Chain (+ absorbing matrices) from shared memory, cache-adopted.

    The worker cache is keyed by the *fingerprint* shipped with the
    task -- never by object identity -- so the first task of a chain
    rehydrates and every later task (and every later query) hits.
    k-times tasks carry no absorbing handles; ``matrices`` is None.
    With ``task.verify`` every fresh attach is re-checksummed.
    """
    from repro.core.markov import MarkovChain
    from repro.core.matrices import AbsorbingMatrices
    from repro.linalg.ops import get_backend

    cache = _worker_cache()
    region = frozenset(task.region)
    adopted = cache.lookup_fingerprint(
        "chain", task.fingerprint, frozenset(), task.backend
    )
    if adopted is None:
        chain = MarkovChain(
            attach_csr(task.chain, verify=task.verify),
            validate=False,
        )
        chain._fingerprint_cache = task.fingerprint
        adopted = cache.adopt(
            "chain", task.fingerprint, frozenset(), task.backend, chain
        )
    chain = adopted
    if task.m_minus is None:
        return chain, None, cache
    matrices = cache.lookup_fingerprint(
        "absorbing", task.fingerprint, region, task.backend
    )
    if matrices is None:
        rebuilt = AbsorbingMatrices(
            n_states=chain.n_states,
            region=region,
            m_minus=attach_csr(task.m_minus, verify=task.verify),
            m_plus=attach_csr(task.m_plus, verify=task.verify),
            backend=get_backend(task.backend),
        )
        rebuilt._transposed = (
            attach_csr(task.m_minus_t, verify=task.verify),
            attach_csr(task.m_plus_t, verify=task.verify),
        )
        matrices = cache.adopt(
            "absorbing", task.fingerprint, region, task.backend, rebuilt
        )
    return chain, matrices, cache


def _read_shard_rows(
    handle: SharedCSR, lo: int, hi: int, verify: bool = False
) -> np.ndarray:
    """Densify rows ``[lo, hi)`` of a per-query stacked CSR; release.

    Unlike the cached chain/matrix segments, the initials stack is
    published fresh per query and unlinked by the parent as soon as
    the query finishes -- caching its segments in ``_SEGMENTS`` would
    pin one segment's pages per query for the worker's lifetime.  So:
    attach, copy the shard out, close.
    """
    segments: List[shared_memory.SharedMemory] = []
    try:
        arrays = []
        for meta in (handle.data, handle.indices, handle.indptr):
            name, shape, dtype = meta
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError as exc:
                raise SegmentLostError(
                    f"stacked-initials segment {name!r} vanished "
                    f"before attach"
                ) from exc
            segments.append(segment)
            arrays.append(
                np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=segment.buf
                )
            )
        if verify and handle.checksum is not None:
            observed = _csr_checksum(arrays)
            if observed != handle.checksum:
                raise SegmentLostError(
                    f"stacked-initials segment {handle.data[0]} "
                    f"failed checksum verification"
                )
        matrix = _sp.csr_matrix(
            tuple(arrays), shape=handle.shape, copy=False
        )
        dense = matrix[lo:hi].toarray()
        del matrix, arrays  # drop the views before unmapping
        return dense
    finally:
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - error paths only
                pass  # views still alive (exception mid-attach)


def _read_plain_array(meta: ArrayMeta) -> np.ndarray:
    """Copy a small per-query array out of shared memory; release.

    Like :func:`_read_shard_rows` these segments are published fresh
    per query and unlinked by the parent afterwards, so the worker
    must not cache them in ``_SEGMENTS``.
    """
    name, shape, dtype = meta
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise SegmentLostError(
            f"per-query segment {name!r} vanished before attach"
        ) from exc
    try:
        view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=segment.buf
        )
        copied = np.array(view)
        del view  # drop the view before unmapping
        return copied
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - error paths only
            pass


def _evaluate_observation_rows(
    task: _ShardTask, chain, cache, context, window
) -> np.ndarray:
    """Evaluate a multi-observation or Monte-Carlo object shard.

    The stacked segment holds one row per *observation*;
    ``obj_indptr`` maps the shard's object rows ``[row_lo, row_hi)``
    to their observation rows.  Multi shards run the exact Section VI
    fusion sweep (doubled matrices built once per worker via the
    fingerprint-keyed cache); MC shards adopt the published CDF
    tables -- zero-copy views, no per-worker re-tabulation -- and run
    the paper's sampling baseline with the per-object seeds the
    parent priced, so estimates match the serial path bit-for-bit.
    """
    from repro.core.batch import batch_exists_multi, batch_mc_exists
    from repro.core.distribution import StateDistribution
    from repro.core.observation import Observation, ObservationSet

    obj_indptr = _read_plain_array(task.obj_indptr)
    obs_times = _read_plain_array(task.obs_times)
    obs_lo = int(obj_indptr[task.row_lo])
    obs_hi = int(obj_indptr[task.row_hi])
    rows = _read_shard_rows(
        task.initials, obs_lo, obs_hi, verify=task.verify
    )
    observation_sets = []
    for row in range(task.row_lo, task.row_hi):
        observations = tuple(
            Observation(
                int(obs_times[index]),
                StateDistribution(rows[index - obs_lo]),
            )
            for index in range(
                int(obj_indptr[row]), int(obj_indptr[row + 1])
            )
        )
        observation_sets.append(ObservationSet(observations))
    if task.method == "multi":
        values = batch_exists_multi(
            chain,
            observation_sets,
            window,
            backend=task.backend,
            plan_cache=cache,
            context=context,
        )
    else:
        if task.mc_cdf is not None:
            from repro.core.montecarlo import MonteCarloSampler

            MonteCarloSampler.adopt_cdf_tables(
                task.fingerprint,
                _attach_array(task.mc_cdf),
                _attach_array(task.mc_targets),
            )
        seeds = (
            list(task.seeds[task.row_lo:task.row_hi])
            if task.seeds is not None
            else None
        )
        values = batch_mc_exists(
            chain,
            observation_sets,
            window,
            n_samples=task.n_samples,
            seeds=seeds,
            context=context,
        )
    return np.asarray(values, dtype=float)


def _evaluate_shard(task: _ShardTask):
    """Run one shard through the shared operators; return its slice."""
    from repro.core.query import SpatioTemporalWindow
    from repro.exec.operators import (
        FORWARD_SWEEP,
        KTIMES_SWEEP,
        ExecutionContext,
        KTimesSchedule,
        SweepSchedule,
    )

    shard_started = _time.perf_counter()
    if task.faults is not None:
        task.faults.fire(
            "worker:shard",
            row_lo=task.row_lo,
            fingerprint=task.fingerprint,
            attempt=task.attempt,
            pid=os.getpid(),
        )
    chain, matrices, cache = _rehydrate(task)
    window = SpatioTemporalWindow(
        frozenset(task.region), frozenset(task.times)
    )
    context = ExecutionContext(
        cache, task.backend, faults=task.faults
    )
    if task.method in ("multi", "mc"):
        values = _evaluate_observation_rows(
            task, chain, cache, context, window
        )
        return (
            task.row_lo,
            task.row_hi,
            values,
            context.serializable_timings(),
            _time.perf_counter() - shard_started,
        )
    rows = _read_shard_rows(
        task.initials, task.row_lo, task.row_hi, verify=task.verify
    )
    starts = task.starts[task.row_lo:task.row_hi]

    if task.method == "ct":
        # stacked Section VII C(t) sweep: one (n_rows,) count
        # distribution per shard row instead of a scalar
        activations: Dict[int, list] = {}
        for row in range(rows.shape[0]):
            activations.setdefault(starts[row], []).append(
                (row, rows[row])
            )
        region_columns = np.asarray(task.region, dtype=int)
        region_columns.sort()
        schedule = KTimesSchedule(
            n_objects=rows.shape[0],
            n_rows=len(task.times) + 1,
            first=min(starts),
            last=window.t_end,
            times=window.times,
            region_columns=region_columns,
            activations=activations,
        )
        values = KTIMES_SWEEP(
            schedule,
            chain,
            window.region,
            task.backend,
            context=context,
        )
    elif task.method == "ob":
        activations: Dict[int, list] = {}
        for row in range(rows.shape[0]):
            activations.setdefault(starts[row], []).append(
                (row, rows[row])
            )
        schedule = SweepSchedule(
            n_rows=rows.shape[0],
            first=min(starts),
            last=window.t_end,
            times=window.times,
            activations=activations,
            harvests={window.t_end: list(range(rows.shape[0]))},
            read="top",
            read_offset=matrices.top_index,
        )
        values = FORWARD_SWEEP(
            (matrices, schedule),
            chain,
            window.region,
            task.backend,
            context=context,
        )
    else:  # qb: the backward pass amortises inside the worker cache
        vectors = cache.backward_vectors(
            chain,
            window,
            sorted(set(starts)),
            task.backend,
            context=context,
        )
        values = np.zeros(rows.shape[0], dtype=float)
        for row in range(rows.shape[0]):
            extended = matrices.extend_initial(
                np.ascontiguousarray(rows[row], dtype=float),
                starts[row],
                window.times,
            )
            values[row] = float(extended @ vectors[starts[row]])
    return (
        task.row_lo,
        task.row_hi,
        values,
        context.serializable_timings(),
        _time.perf_counter() - shard_started,
    )


# ----------------------------------------------------------------------
# store-shard tasks: persistent workers over memory-mapped slabs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _StoreShardTask:
    """One shard of a :class:`~repro.store.sharded.ShardedTrajectoryStore`.

    Nothing heavy crosses the process boundary -- not even segment
    names: the task carries only the store path, slab generation and
    shard id, and the worker memory-maps the shard's columnar slabs
    directly (cached per process, shared with every other worker and
    the parent through the OS page cache).  The full prefilter ->
    BFS-prune -> kernel pipeline runs shard-local.
    """

    store_dir: str
    generation: int
    shard_id: str
    chain_id: str
    kind: str  # "exists" | "ktimes"
    method: str  # qb | ob | mc (exists), ct | mc (ktimes)
    backend: Optional[str]
    region: Tuple[int, ...]
    times: Tuple[int, ...]
    exclude: Tuple[str, ...] = ()
    use_prefilter: bool = True
    use_bfs: bool = True
    n_samples: int = 100
    seed_base: Optional[int] = None
    attempt: int = 0
    faults: Optional[object] = None


# worker-local resumable reverse-BFS labellings, keyed by
# (chain fingerprint, region) -- the shard-local analogue of the
# parent pruner's cache
_STORE_BFS: Dict[tuple, list] = {}


def _evaluate_store_shard(task: _StoreShardTask):
    """Prefilter, BFS-prune and evaluate one store shard in place.

    Returns ``(shard_id, values, timings, elapsed, fresh, stats)``
    where ``values`` maps object ids to their exact answers (filtered
    objects get the query's exact zero element), ``fresh`` reports
    whether this call had to map the slabs (False on every warm call
    -- the zero-copy assertion the dispatch tests check), and
    ``stats`` carries the shard-local filter-stage counts.
    """
    from repro.core.batch import (
        batch_exists_multi,
        batch_ktimes_distribution,
        batch_mc_exists,
        batch_ob_exists,
        batch_qb_exists,
    )
    from repro.core.query import SpatioTemporalWindow
    from repro.database.pruning import reachability_levels
    from repro.exec.operators import ExecutionContext
    from repro.store.sharded import (
        attach_shard,
        open_store_chain,
        store_positions,
    )

    shard_started = _time.perf_counter()
    if task.faults is not None:
        task.faults.fire(
            "worker:store-shard",
            shard_id=task.shard_id,
            attempt=task.attempt,
            pid=os.getpid(),
        )
    view, fresh = attach_shard(
        task.store_dir, task.generation, task.shard_id
    )
    chain = open_store_chain(task.store_dir, task.chain_id)
    window = SpatioTemporalWindow(
        frozenset(task.region), frozenset(task.times)
    )
    cache = _worker_cache()
    context = ExecutionContext(
        cache, task.backend, faults=task.faults
    )

    exclude = frozenset(task.exclude)
    candidates = [
        index
        for index in range(view.n_objects())
        if view.object_ids[index] not in exclude
    ]
    stats = {
        "entering": len(candidates),
        "prefilter_pruned": 0,
        "bfs_pruned": 0,
    }
    first_times = view.obs_times[view.obj_indptr[:-1]]

    if task.kind == "ktimes":
        def zero():
            point = np.zeros(window.duration + 1, dtype=float)
            point[0] = 1.0
            return point
    else:
        def zero():
            return 0.0

    values: Dict[str, object] = {}

    # stage 1: geometric prefilter against the per-object slab MBRs
    # (same safety argument as the parent R-tree: an object whose
    # first-observation MBR, expanded by bound x horizon, misses the
    # region MBR provably never intersects the window)
    if (
        task.use_prefilter
        and candidates
        and view.has_mbr
        and view.displacement_bound is not None
    ):
        positions = store_positions(task.store_dir)
        if positions is not None:
            region_states = np.fromiter(
                task.region, dtype=np.int64
            )
            rx = np.asarray(positions[region_states, 0], dtype=float)
            ry = (
                np.asarray(positions[region_states, 1], dtype=float)
                if positions.shape[1] > 1
                else np.zeros_like(rx)
            )
            rect = (
                float(rx.min()), float(ry.min()),
                float(rx.max()), float(ry.max()),
            )
            mbrs = view.mbrs()
            index_array = np.asarray(candidates, dtype=np.int64)
            horizons = np.maximum(
                window.t_end - first_times[index_array], 0
            ).astype(float)
            margin = horizons * float(view.displacement_bound)
            keep = ~(
                (mbrs[index_array, 2] + margin < rect[0])
                | (mbrs[index_array, 0] - margin > rect[2])
                | (mbrs[index_array, 3] + margin < rect[1])
                | (mbrs[index_array, 1] - margin > rect[3])
            )
            for index in index_array[~keep]:
                values[view.object_ids[int(index)]] = zero()
            stats["prefilter_pruned"] = int((~keep).sum())
            candidates = [int(i) for i in index_array[keep]]

    # stage 2: exact reverse-BFS reachability, resumable per
    # (chain, region) across queries exactly like the parent pruner
    if task.use_bfs and candidates:
        region = frozenset(task.region)
        depth_needed = max(
            0,
            int(window.t_end)
            - int(first_times[np.asarray(candidates)].min()),
        )
        levels = reachability_levels(
            chain, region, depth_needed, _STORE_BFS
        )
        states_slab = view.states()
        kept: List[int] = []
        for index in candidates:
            row = int(view.obj_indptr[index])  # first observation
            horizon = int(window.t_end) - int(view.obs_times[row])
            a = int(view.obs_indptr[row])
            b = int(view.obs_indptr[row + 1])
            support = np.asarray(states_slab[a:b], dtype=np.int64)
            if (
                horizon >= 0
                and support.size
                and bool((levels[support] <= horizon).any())
            ):
                kept.append(index)
            else:
                values[view.object_ids[index]] = zero()
        stats["bfs_pruned"] = len(candidates) - len(kept)
        candidates = kept

    # stage 3: the exact same kernels the serial pipeline runs
    if candidates:
        sets = {
            index: view.observations_of(index)
            for index in candidates
        }

        def seed_for(index: int) -> Optional[int]:
            if task.seed_base is None:
                return None
            return int(task.seed_base) + int(view.obj_dbindex[index])

        if task.kind == "ktimes":
            if task.method == "mc":
                from repro.core.montecarlo import MonteCarloSampler

                sampler = MonteCarloSampler(chain)
                for index in candidates:
                    first = sets[index].first
                    sampler.reseed(seed_for(index))
                    values[view.object_ids[index]] = (
                        sampler.ktimes_distribution(
                            first.distribution,
                            window,
                            task.n_samples,
                            start_time=first.time,
                        )
                    )
            else:
                distributions = batch_ktimes_distribution(
                    chain,
                    [sets[i].first.distribution for i in candidates],
                    window,
                    start_times=[
                        sets[i].first.time for i in candidates
                    ],
                    backend=task.backend,
                    plan_cache=cache,
                    context=context,
                )
                for index, distribution in zip(
                    candidates, distributions
                ):
                    values[view.object_ids[index]] = np.array(
                        distribution, dtype=float
                    )
        elif task.method == "mc":
            probabilities = batch_mc_exists(
                chain,
                [sets[i] for i in candidates],
                window,
                n_samples=task.n_samples,
                seeds=[seed_for(i) for i in candidates],
                context=context,
            )
            for index, probability in zip(candidates, probabilities):
                values[view.object_ids[index]] = float(probability)
        else:
            singles = [i for i in candidates if len(sets[i]) == 1]
            multis = [i for i in candidates if len(sets[i]) > 1]
            if singles:
                evaluate = (
                    batch_qb_exists
                    if task.method == "qb"
                    else batch_ob_exists
                )
                probabilities = evaluate(
                    chain,
                    [sets[i].first.distribution for i in singles],
                    window,
                    start_times=[sets[i].first.time for i in singles],
                    backend=task.backend,
                    plan_cache=cache,
                    context=context,
                )
                for index, probability in zip(
                    singles, probabilities
                ):
                    values[view.object_ids[index]] = float(
                        probability
                    )
            if multis:  # Section VI fusion path, shard-local
                probabilities = batch_exists_multi(
                    chain,
                    [sets[i] for i in multis],
                    window,
                    backend=task.backend,
                    plan_cache=cache,
                    context=context,
                )
                for index, probability in zip(
                    multis, probabilities
                ):
                    values[view.object_ids[index]] = float(
                        probability
                    )
    return (
        task.shard_id,
        values,
        context.serializable_timings(),
        _time.perf_counter() - shard_started,
        bool(fresh),
        stats,
    )


# ----------------------------------------------------------------------
# parent-side entry point
# ----------------------------------------------------------------------
def run_groups_in_processes(
    tasks: Sequence[Tuple[object, object, list, str]],
    window,
    *,
    max_workers: int,
    shard_min_objects: int,
    backend: Optional[str] = None,
    plan_cache=None,
    context=None,
    policy=None,
    predicted_seconds: Optional[float] = None,
    faults=None,
) -> Tuple[Dict[str, object], List[float]]:
    """Evaluate single-observation chain groups across worker processes.

    Submission runs under a supervisor: every shard attempt gets the
    deadline priced by ``policy`` from ``predicted_seconds`` (the cost
    model's estimate for the whole dispatch call), a worker crash or a
    deadline overrun tears down the poisoned pool, rebuilds it and
    resubmits only the unfinished shards (with exponential backoff),
    and exhausted retries raise
    :class:`~repro.core.errors.WorkerCrashError` /
    :class:`~repro.core.errors.TaskTimeoutError`.  A lost or corrupt
    segment raises :class:`~repro.core.errors.SegmentLostError`
    immediately (a resubmitted task would name the same vanished
    segment) after dropping the publication cache, so the caller can
    degrade tiers and the *next* dispatch republishes cleanly.

    Args:
        tasks: ``(chain, matrices, objects, method)`` per chain group,
            with ``matrices`` the group's absorbing matrices (resolved
            in the parent so the publication is the same artefact the
            serial path would use; ``None`` for ``method="ct"``
            k-times groups, whose stacked sweep needs only the chain
            CSR) and ``objects`` single-observation
            :class:`~repro.database.objects.UncertainObject` lists.
            An optional fifth element overrides ``backend`` per group
            (the planner's per-group backend decision) -- workers
            rehydrating the shard adopt that backend's kernels on
            their shared-memory CSR views.
        window: the evaluated window.
        max_workers: pool size.
        shard_min_objects: smallest within-chain shard; stacked-sweep
            groups (``"ob"`` exists, ``"ct"`` k-times) are split into
            up to ``max_workers`` shards of at least this many rows.
        backend: linear-algebra backend name.
        plan_cache: parent cache (only used to keep artefacts shared).
        context: parent :class:`~repro.exec.operators.ExecutionContext`
            receiving the merged worker timings and the supervisor's
            recovery events.
        policy: :class:`~repro.core.planner.SupervisorPolicy`
            (defaults are used when ``None``).
        predicted_seconds: cost-model runtime estimate used to price
            the per-attempt deadline.
        faults: optional
            :class:`~repro.exec.faults.FaultInjector`, threaded into
            worker tasks and fired at ``dispatch:published``.

    Returns:
        ``(values, group_seconds)``: per-object answers across all
        groups -- scalar probabilities for exists shards, ``(|T_q|+1,)``
        count-distribution arrays for k-times shards -- identical (to
        the bit) to the serial kernels, asserted at 1e-12 in the
        dispatch parity tests -- plus, per input task, the summed
        worker-side wall seconds of its shards (the per-group EXPLAIN
        ANALYZE timing).
    """
    if policy is None:
        from repro.core.planner import SupervisorPolicy

        policy = SupervisorPolicy()
    deadline = policy.deadline(predicted_seconds or 0.0)

    publisher = _publisher()
    executor, owned = _acquire_executor(max_workers)
    stack_segments: List[shared_memory.SharedMemory] = []
    group_seconds: List[float] = []
    lease = publisher.acquire()

    shards: List[_ShardTask] = []
    shard_meta: List[Tuple[List[str], int]] = []  # (ids, task_index)
    attempts: List[int] = []
    results: Dict[int, tuple] = {}
    inflight: Dict[object, int] = {}  # future -> shard index
    submitted_at: Dict[object, float] = {}

    def _fire_published(handle: Optional[SharedCSR], kind: str) -> None:
        if faults is not None and handle is not None:
            faults.fire(
                "dispatch:published", name=handle.data[0], kind=kind
            )

    def _submit(index: int) -> None:
        task = shards[index]
        if task.attempt != attempts[index]:
            task = _dc_replace(task, attempt=attempts[index])
        future = executor.submit(_evaluate_shard, task)
        inflight[future] = index
        submitted_at[future] = _time.monotonic()

    def _check_exhausted(index: int, error_type, reason: str) -> None:
        if attempts[index] <= policy.max_retries:
            return
        task = shards[index]
        raise error_type(
            f"shard rows [{task.row_lo}, {task.row_hi}) "
            f"({task.method}) failed after "
            f"{attempts[index]} retr"
            f"{'y' if attempts[index] == 1 else 'ies'}: {reason}"
        )

    def _record(message: str) -> None:
        if context is not None:
            context.record_event(message)

    def _backoff(attempt: int) -> None:
        if policy.backoff_seconds > 0 and attempt > 0:
            _time.sleep(
                policy.backoff_seconds * (2 ** (attempt - 1))
            )

    def _rebuild_pool(culprits: List[int], error_type, reason: str) -> None:
        """Replace the poisoned pool; resubmit every unfinished shard.

        Only the culprit shards' attempt counters advance -- innocent
        shards torn down with the pool are resubmitted at their
        current attempt, so a fault rule matching ``attempt`` stays
        deterministic per shard.
        """
        nonlocal executor, owned
        # culprits reported through a completed future (worker crash)
        # are already popped from `inflight`; expired ones are still
        # in it -- the union covers both paths
        pending = sorted(set(inflight.values()) | set(culprits))
        _invalidate_executor(executor)
        for index in culprits:
            attempts[index] += 1
        for index in culprits:
            _check_exhausted(index, error_type, reason)
        for future in list(inflight):
            future.cancel()
        inflight.clear()
        submitted_at.clear()
        _release_executor(executor, owned)
        executor, owned = _acquire_executor(max_workers)
        _record(
            f"worker pool rebuilt ({reason}); resubmitted "
            f"{len(pending)} shard(s)"
        )
        _backoff(max(attempts[index] for index in culprits))
        for index in pending:
            _submit(index)

    try:
        for task_index, task_tuple in enumerate(tasks):
            chain, matrices, objects, method = task_tuple[:4]
            task_backend = (
                task_tuple[4] if len(task_tuple) > 4 else backend
            )
            group_seconds.append(0.0)
            if not objects:
                continue
            fingerprint, chain_handle = publisher.chain(chain, lease)
            _fire_published(chain_handle, "chain")
            if matrices is not None:
                minus_h, plus_h, minus_t_h, plus_t_h = (
                    publisher.absorbing(
                        chain, matrices, task_backend, lease
                    )
                )
                _fire_published(minus_h, "absorbing")
            else:  # ct: the chain CSR is the whole matrix payload
                minus_h = plus_h = minus_t_h = plus_t_h = None
            obs_times_meta = obj_indptr_meta = None
            mc_cdf_meta = mc_targets_meta = None
            seeds: Optional[Tuple[Optional[int], ...]] = None
            n_samples = 100
            if method in ("multi", "mc"):
                # one stacked row per *observation*, plus the small
                # times/indptr maps that slice them back per object
                vectors = []
                times_flat: List[int] = []
                indptr = [0]
                for obj in objects:
                    for observation in obj.observations:
                        vectors.append(
                            _sp.csr_matrix(
                                np.asarray(
                                    observation.distribution.vector,
                                    dtype=float,
                                ).reshape(1, -1)
                            )
                        )
                        times_flat.append(int(observation.time))
                    indptr.append(len(times_flat))
                stacked = _sp.vstack(vectors, format="csr")
                obs_times_meta = _publish_array(
                    np.asarray(times_flat, dtype=np.int64),
                    stack_segments,
                )
                obj_indptr_meta = _publish_array(
                    np.asarray(indptr, dtype=np.int64),
                    stack_segments,
                )
                extras = (
                    task_tuple[5] if len(task_tuple) > 5 else {}
                ) or {}
                n_samples = int(extras.get("n_samples", 100))
                raw_seeds = extras.get("seeds")
                if raw_seeds is not None:
                    seeds = tuple(raw_seeds)
                if method == "mc":
                    tables = publisher.mc_tables(chain, lease)
                    if tables is not None:
                        mc_cdf_meta, mc_targets_meta = tables
            else:
                stacked = _sp.vstack(
                    [
                        _sp.csr_matrix(
                            np.asarray(
                                obj.initial.distribution.vector,
                                dtype=float,
                            ).reshape(1, -1)
                        )
                        for obj in objects
                    ],
                    format="csr",
                )
            stack_handle, segments = publisher.stack(stacked)
            stack_segments.extend(segments)
            _fire_published(stack_handle, "stack")
            starts = tuple(obj.initial.time for obj in objects)
            ids = [obj.object_id for obj in objects]

            n_rows = len(objects)
            if method in ("ob", "ct", "multi", "mc"):
                n_shards = max(
                    1,
                    min(
                        max_workers,
                        n_rows // max(1, shard_min_objects) or 1,
                    ),
                )
            else:
                n_shards = 1  # qb: one backward pass serves the group
            bounds = np.linspace(
                0, n_rows, n_shards + 1, dtype=int
            )
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if lo == hi:
                    continue
                shards.append(
                    _ShardTask(
                        fingerprint=fingerprint,
                        chain=chain_handle,
                        m_minus=minus_h,
                        m_plus=plus_h,
                        m_minus_t=minus_t_h,
                        m_plus_t=plus_t_h,
                        initials=stack_handle,
                        row_lo=int(lo),
                        row_hi=int(hi),
                        starts=starts,
                        region=tuple(sorted(window.region)),
                        times=tuple(sorted(window.times)),
                        method=method,
                        backend=task_backend,
                        obs_times=obs_times_meta,
                        obj_indptr=obj_indptr_meta,
                        n_samples=n_samples,
                        seeds=seeds,
                        mc_cdf=mc_cdf_meta,
                        mc_targets=mc_targets_meta,
                        verify=policy.verify_segments,
                        faults=faults,
                    )
                )
                shard_meta.append((ids, task_index))
                attempts.append(0)

        for index in range(len(shards)):
            _submit(index)

        # -- supervised collection -----------------------------------
        while inflight:
            now = _time.monotonic()
            expiry = min(
                submitted_at[future] for future in inflight
            ) + deadline
            done, _running = _wait_futures(
                list(inflight),
                timeout=max(0.0, expiry - now),
                return_when=FIRST_COMPLETED,
            )
            crashed: List[int] = []
            retried: List[int] = []
            for future in done:
                index = inflight.pop(future)
                submitted_at.pop(future, None)
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    crashed.append(index)
                except SegmentLostError:
                    # a retry would name the same vanished segment;
                    # drop the publication cache so the next dispatch
                    # republishes, and let the caller degrade tiers
                    publisher.forget()
                    raise
                except ExecutionError as error:
                    # injected / transient worker-side failure with a
                    # healthy pool: retry just this shard
                    attempts[index] += 1
                    _check_exhausted(
                        index, WorkerCrashError, str(error)
                    )
                    _record(
                        f"shard rows [{shards[index].row_lo}, "
                        f"{shards[index].row_hi}) retried after "
                        f"worker fault (attempt {attempts[index]}): "
                        f"{error}"
                    )
                    retried.append(index)
            if crashed:
                # the pool is poisoned: every unfinished future is
                # doomed, so rebuild once and resubmit them all; the
                # crashed shards are the culprits
                _rebuild_pool(
                    crashed, WorkerCrashError, "worker crash"
                )
            for index in retried:
                # after any rebuild, so the retry lands on a live pool
                _backoff(attempts[index])
                _submit(index)
            if crashed:
                continue
            now = _time.monotonic()
            expired = sorted(
                {
                    inflight[future]
                    for future in inflight
                    if now - submitted_at[future] >= deadline
                }
            )
            if expired:
                _rebuild_pool(
                    expired,
                    TaskTimeoutError,
                    f"deadline of {deadline:.3g}s exceeded",
                )

        values: Dict[str, object] = {}
        for index in sorted(results):
            ids, task_index = shard_meta[index]
            row_lo, _row_hi, shard_values, timings, elapsed = (
                results[index]
            )
            shard_values = np.asarray(shard_values)
            for offset, answer in enumerate(shard_values):
                values[ids[row_lo + offset]] = (
                    # ct shards return one count distribution per row
                    np.asarray(answer, dtype=float)
                    if shard_values.ndim == 2
                    else float(answer)
                )
            group_seconds[task_index] += elapsed
            if context is not None:
                context.merge(timings)
        return values, group_seconds
    finally:
        # on an early exception, queued shards are cancelled and
        # running ones drained *before* their segments vanish -- a
        # worker must never observe a mid-query unlink.  The drain is
        # bounded: a hung worker's future is abandoned rather than
        # stalling the caller forever (unlink-while-mapped is safe;
        # the straggler fails on attach and reports to a dead pipe)
        leftovers = list(inflight)
        for future in leftovers:
            future.cancel()
        _wait_futures(leftovers, timeout=5.0)
        _unlink_segments(stack_segments)
        publisher.release(lease)
        _release_executor(executor, owned)


def run_store_shards(
    store,
    groups: Sequence[Tuple[str, str, Optional[str]]],
    window,
    kind: str,
    *,
    max_workers: int,
    use_prefilter: bool = True,
    use_bfs: bool = True,
    n_samples: int = 100,
    seed_base: Optional[int] = None,
    context=None,
    policy=None,
    predicted_seconds: Optional[float] = None,
    faults=None,
) -> Tuple[Dict[str, object], Dict[str, float], Dict[str, int]]:
    """Scatter a query over the shards of a sharded trajectory store.

    Unlike :func:`run_groups_in_processes`, nothing is published:
    workers memory-map the store's columnar slabs directly (shared
    through the OS page cache, attached once per process and reused
    across queries) and run prefilter -> BFS-prune -> kernel entirely
    shard-local.  The same supervisor covers worker loss -- crashes
    and deadline overruns rebuild the pool and resubmit with backoff
    -- but exhausted retries *degrade shard -> parent* instead of
    raising: the parent evaluates the shard in-process from the same
    slabs, so the query always completes exactly.

    Args:
        store: a :class:`~repro.store.sharded.ShardedTrajectoryStore`
            (anything with ``path`` / ``generation`` /
            ``store_shards`` / ``shard_exclusions``).
        groups: ``(chain_id, method, backend)`` per chain group.
        window: the evaluated window.
        kind: ``"exists"`` or ``"ktimes"``.
        max_workers: pool size.
        use_prefilter / use_bfs: mirror the plan's filter toggles.
        n_samples / seed_base: Monte Carlo parameters; per-object
            seeds derive from ``seed_base`` plus the object's stable
            store index, matching the parent's seed book-keeping.
        context: parent execution context receiving merged timings
            and recovery events.
        policy / predicted_seconds / faults: as in
            :func:`run_groups_in_processes`.

    Returns:
        ``(values, chain_seconds, stats)``: per-object answers for
        every snapshot object of the queried chains (excluded /
        overlaid objects are skipped per the store's exclusion map),
        summed worker wall seconds per chain id, and aggregate
        filter/recovery statistics (``shards``, ``fresh_attaches``,
        ``entering``, ``prefilter_pruned``, ``bfs_pruned``,
        ``parent_fallbacks``).
    """
    if policy is None:
        from repro.core.planner import SupervisorPolicy

        policy = SupervisorPolicy()
    deadline = policy.deadline(predicted_seconds or 0.0)

    exclusions = store.shard_exclusions()
    region = tuple(sorted(window.region))
    times = tuple(sorted(window.times))
    shards: List[_StoreShardTask] = []
    shard_chain: List[str] = []
    for chain_id, method, task_backend in groups:
        for entry in store.store_shards(chain_id):
            if not entry.get("n_objects"):
                continue
            shard_id = str(entry["shard_id"])
            excluded = tuple(exclusions.get(shard_id, ()))
            if len(excluded) >= int(entry["n_objects"]):
                continue  # every object superseded by the overlay
            shards.append(
                _StoreShardTask(
                    store_dir=str(store.path),
                    generation=int(store.generation),
                    shard_id=shard_id,
                    chain_id=str(chain_id),
                    kind=kind,
                    method=method,
                    backend=task_backend,
                    region=region,
                    times=times,
                    exclude=excluded,
                    use_prefilter=use_prefilter,
                    use_bfs=use_bfs,
                    n_samples=n_samples,
                    seed_base=seed_base,
                    faults=faults,
                )
            )
            shard_chain.append(str(chain_id))

    values: Dict[str, object] = {}
    chain_seconds: Dict[str, float] = {
        chain_id: 0.0 for chain_id, _method, _backend in groups
    }
    stats = {
        "shards": len(shards),
        "fresh_attaches": 0,
        "entering": 0,
        "prefilter_pruned": 0,
        "bfs_pruned": 0,
        "parent_fallbacks": 0,
    }
    if not shards:
        return values, chain_seconds, stats

    executor, owned = _acquire_executor(max_workers)
    attempts = [0] * len(shards)
    results: Dict[int, tuple] = {}
    inflight: Dict[object, int] = {}  # future -> shard index
    submitted_at: Dict[object, float] = {}

    def _record(message: str) -> None:
        if context is not None:
            context.record_event(message)

    def _swap_pool(reason: str) -> None:
        """Replace a pool that died under us without resubmitting.

        In-flight futures on the dead pool surface
        :class:`BrokenProcessPool` at ``result()`` and take the normal
        crash-recovery path; only the executor handle is swapped here.
        """
        nonlocal executor, owned
        _invalidate_executor(executor)
        _release_executor(executor, owned)
        executor, owned = _acquire_executor(max_workers)
        _record(f"worker pool replaced mid-submit ({reason})")

    def _submit(index: int) -> None:
        task = shards[index]
        if task.attempt != attempts[index]:
            task = _dc_replace(task, attempt=attempts[index])
        while True:
            try:
                future = executor.submit(_evaluate_store_shard, task)
                break
            except BrokenProcessPool:
                # a worker died while we were still scattering: the
                # pool is unusable for *new* submissions too
                _swap_pool("worker crash during scatter")
        inflight[future] = index
        submitted_at[future] = _time.monotonic()

    def _backoff(attempt: int) -> None:
        if policy.backoff_seconds > 0 and attempt > 0:
            _time.sleep(
                policy.backoff_seconds * (2 ** (attempt - 1))
            )

    def _fallback(index: int, reason: str) -> None:
        """Degrade an exhausted shard to in-parent evaluation.

        The parent maps the same slabs the worker would have, so the
        answers are identical -- availability degrades (one shard runs
        serially) but exactness never does.
        """
        task = _dc_replace(
            shards[index], attempt=attempts[index], faults=None
        )
        results[index] = _evaluate_store_shard(task)
        stats["parent_fallbacks"] += 1
        _record(
            f"store shard {task.shard_id} degraded to parent "
            f"after {reason}"
        )

    def _rebuild_pool(culprits: List[int], reason: str) -> None:
        nonlocal executor, owned
        pending = sorted(set(inflight.values()) | set(culprits))
        _invalidate_executor(executor)
        for index in culprits:
            attempts[index] += 1
        for future in list(inflight):
            future.cancel()
        inflight.clear()
        submitted_at.clear()
        _release_executor(executor, owned)
        executor, owned = _acquire_executor(max_workers)
        _record(
            f"worker pool rebuilt ({reason}); resubmitted "
            f"{len(pending)} store shard(s)"
        )
        _backoff(max(attempts[index] for index in culprits))
        for index in culprits:
            if attempts[index] > policy.max_retries:
                _fallback(index, reason)
        for index in pending:
            if index in results:  # answered by the parent fallback
                continue
            _submit(index)

    try:
        for index in range(len(shards)):
            _submit(index)

        while inflight:
            now = _time.monotonic()
            expiry = min(
                submitted_at[future] for future in inflight
            ) + deadline
            done, _running = _wait_futures(
                list(inflight),
                timeout=max(0.0, expiry - now),
                return_when=FIRST_COMPLETED,
            )
            crashed: List[int] = []
            retried: List[int] = []
            for future in done:
                index = inflight.pop(future)
                submitted_at.pop(future, None)
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    crashed.append(index)
                except ExecutionError as error:
                    attempts[index] += 1
                    if attempts[index] > policy.max_retries:
                        _fallback(index, str(error))
                        continue
                    _record(
                        f"store shard {shards[index].shard_id} "
                        f"retried after worker fault "
                        f"(attempt {attempts[index]}): {error}"
                    )
                    retried.append(index)
            if crashed:
                _rebuild_pool(crashed, "worker crash")
            for index in retried:
                _backoff(attempts[index])
                _submit(index)
            if crashed:
                continue
            now = _time.monotonic()
            expired = sorted(
                {
                    inflight[future]
                    for future in inflight
                    if now - submitted_at[future] >= deadline
                }
            )
            if expired:
                _rebuild_pool(
                    expired,
                    f"deadline of {deadline:.3g}s exceeded",
                )

        for index in sorted(results):
            (
                _shard_id,
                shard_values,
                timings,
                elapsed,
                fresh,
                shard_stats,
            ) = results[index]
            values.update(shard_values)
            chain_seconds[shard_chain[index]] += elapsed
            stats["fresh_attaches"] += 1 if fresh else 0
            for key in (
                "entering", "prefilter_pruned", "bfs_pruned"
            ):
                stats[key] += int(shard_stats.get(key, 0))
            if context is not None:
                context.merge(timings)
        return values, chain_seconds, stats
    finally:
        leftovers = list(inflight)
        for future in leftovers:
            future.cancel()
        _wait_futures(leftovers, timeout=5.0)
        _release_executor(executor, owned)
