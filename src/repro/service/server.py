"""Asyncio query service: many clients, one engine, fused execution.

:class:`QueryService` is the front end a deployment exposes instead of
handing every client its own :class:`~repro.core.engine.QueryEngine`.
Clients ``await service.submit(query)``; the service admits or rejects
the request using the calibrated cost model, parks admitted requests
in the :class:`~repro.service.broker.RequestBroker` for one *fusion
window*, then executes each fused group as a single stacked engine
call on a worker thread and demultiplexes the values back to every
caller's future.

Concurrency model: all service state (broker queue, tenant ledger,
counters) is confined to the event loop -- no locks anywhere.  The
only thing that leaves the loop is the engine evaluation itself,
which runs in a thread-pool executor; the engine's plan cache is
thread-safe, and with ``max_concurrency=1`` (the default) at most one
evaluation runs at a time.

Example::

    async with QueryService(engine, fusion_window_ms=5.0) as service:
        results = await asyncio.gather(
            *(service.submit(query, tenant=f"t{i}") for i in range(8))
        )
"""

from __future__ import annotations

import asyncio
import copy
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.core.engine import QueryEngine, QueryResult
from repro.core.errors import AdmissionRejected, ValidationError
from repro.core.planner import PlanOptions, resolve_options
from repro.core.query import PSTQuery
from repro.service.broker import (
    FusedGroup,
    PendingRequest,
    RequestBroker,
    fusion_key,
)
from repro.service.tenants import TenantAccount, TenantLedger

__all__ = ["QueryService", "ServiceStandingQuery"]


def _prewarm_native() -> None:
    """Compile/warm the native kernels; never raises (startup path)."""
    try:
        from repro.linalg import native

        native.prewarm()
    except Exception:
        pass


class QueryService:
    """Concurrent front end over one :class:`QueryEngine`.

    Requests submitted within ``fusion_window_ms`` of each other that
    share a fusion key (same query, same value-affecting options, same
    database version) are answered by one evaluation; see
    :mod:`repro.service.broker`.  Admission control prices every
    request with :meth:`QueryPlanner.estimate_seconds` and rejects
    with :class:`~repro.core.errors.AdmissionRejected` when a tenant
    budget, the backlog budget, or a caller deadline cannot be met.

    Args:
        engine: the engine all evaluations run against.
        fusion_window_ms: how long the broker collects requests before
            draining a batch.  Larger windows fuse more but add that
            much latency to every answer; ``0`` still fuses whatever
            one event-loop iteration delivers together.
        backlog_budget_seconds: load-shedding threshold -- a request is
            rejected (``reason="backlog"``) if the queue's predicted
            post-fusion cost already exceeds this.  ``None`` disables
            shedding.
        max_concurrency: fused groups evaluated in parallel.  The
            default ``1`` keeps evaluations strictly sequential in the
            broker's deadline-then-cheapest order.

    The service starts lazily on first :meth:`submit` (or explicitly
    via :meth:`start`) and must be stopped with :meth:`stop`; it is
    also an async context manager that drains on exit.
    """

    def __init__(
        self,
        engine: QueryEngine,
        fusion_window_ms: float = 5.0,
        backlog_budget_seconds: Optional[float] = 30.0,
        max_concurrency: int = 1,
    ) -> None:
        if not (
            isinstance(fusion_window_ms, (int, float))
            and not isinstance(fusion_window_ms, bool)
            and fusion_window_ms >= 0
        ):
            raise ValidationError(
                f"fusion_window_ms must be a non-negative number, "
                f"got {fusion_window_ms!r}"
            )
        if backlog_budget_seconds is not None and not (
            isinstance(backlog_budget_seconds, (int, float))
            and not isinstance(backlog_budget_seconds, bool)
            and backlog_budget_seconds >= 0
        ):
            raise ValidationError(
                f"backlog_budget_seconds must be a non-negative number "
                f"or None, got {backlog_budget_seconds!r}"
            )
        if not isinstance(max_concurrency, int) or max_concurrency < 1:
            raise ValidationError(
                f"max_concurrency must be a positive int, "
                f"got {max_concurrency!r}"
            )
        self.engine = engine
        self.fusion_window_ms = float(fusion_window_ms)
        self.backlog_budget_seconds = (
            None
            if backlog_budget_seconds is None
            else float(backlog_budget_seconds)
        )
        self.max_concurrency = max_concurrency
        self.ledger = TenantLedger()
        self.evaluations = 0  # engine calls made on behalf of clients
        self.fused_calls = 0  # of those, calls that answered >1 request
        self._broker = RequestBroker()
        self._wakeup: Optional[asyncio.Event] = None
        self._loop_task: Optional["asyncio.Task[None]"] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency,
            thread_name_prefix="repro-service",
        )
        self._stopping = False
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryService":
        """Start the broker loop on the running event loop."""
        if self._stopped:
            raise AdmissionRejected(
                "service has been stopped", reason="stopped"
            )
        if self._loop_task is None:
            self._wakeup = asyncio.Event()
            loop = asyncio.get_running_loop()
            self._loop_task = loop.create_task(self._broker_loop())
            # warm the native linear-algebra kernels on the executor
            # (tiny-input AOT compile + dense-cache priming) so the
            # first admitted query never pays the compile; failures
            # are irrelevant here -- the pipeline degrades to scipy
            loop.run_in_executor(self._executor, _prewarm_native)
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        With ``drain=True`` (default) queued requests are still fused,
        executed and answered before the loop exits; new submissions
        are rejected immediately.  With ``drain=False`` every queued
        request fails with ``AdmissionRejected(reason="stopped")``.
        """
        self._stopping = True
        if not drain:
            for request in self._broker.clear():
                if not request.future.done():
                    request.future.set_exception(
                        AdmissionRejected(
                            "service stopped before execution",
                            reason="stopped",
                        )
                    )
        if self._loop_task is not None:
            assert self._wakeup is not None
            self._wakeup.set()
            await self._loop_task
            self._loop_task = None
        self._stopped = True
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def set_tenant_budget(
        self, tenant: str, budget_seconds: Optional[float]
    ) -> TenantAccount:
        """Cap a tenant's admission budget (``None`` = unlimited)."""
        return self.ledger.set_budget(tenant, budget_seconds)

    def tenant(self, name: str) -> TenantAccount:
        """The tenant's account (created unlimited on first use)."""
        return self.ledger.account(name)

    # ------------------------------------------------------------------
    # ad-hoc queries
    # ------------------------------------------------------------------
    async def submit(
        self,
        query: PSTQuery,
        tenant: str = "default",
        method: str = "auto",
        n_samples: Optional[int] = None,
        seed: Optional[int] = None,
        options: Optional[PlanOptions] = None,
        object_ids: Optional[Sequence[Any]] = None,
        deadline_seconds: Optional[float] = None,
    ) -> QueryResult:
        """Submit a query; await its :class:`QueryResult`.

        Admission happens synchronously inside this call: the request
        is priced with the engine's cost model and rejected with
        :class:`~repro.core.errors.AdmissionRejected` before it ever
        queues if the tenant budget (``reason="tenant-budget"``), the
        service backlog (``"backlog"``) or ``deadline_seconds``
        (``"deadline"``) rules it out.  Admitted requests wait at most
        one fusion window plus the queue ahead of them.

        Args:
            query: the PST query to answer.
            tenant: account to admit and bill against.
            method / n_samples / seed / options: exactly as
                :meth:`QueryEngine.evaluate`.
            object_ids: only return these objects' values.  The subset
                does not restrict fusion -- the fused evaluation still
                computes every object; this only filters the slice the
                caller receives.
            deadline_seconds: reject now (not mid-queue) if the
                predicted evaluation alone exceeds this; queued groups
                with deadlines run earliest-deadline-first.
        """
        if self._stopping or self._stopped:
            raise AdmissionRejected(
                "service is stopped and not accepting requests",
                reason="stopped",
            )
        await self.start()
        loop = asyncio.get_running_loop()
        query.window.validate_for(self.engine.database.n_states)
        effective = resolve_options(options, method, n_samples, seed, None)
        predicted = self.engine.planner.estimate_seconds(query, effective)
        account = self.ledger.account(tenant)
        if account.would_exceed(predicted):
            account.rejected += 1
            raise AdmissionRejected(
                f"tenant {tenant!r} budget exhausted: request predicted "
                f"{predicted:.3g}s, {account.remaining_seconds:.3g}s "
                f"remaining of {account.budget_seconds:.3g}s",
                reason="tenant-budget",
            )
        if deadline_seconds is not None and predicted > deadline_seconds:
            account.rejected += 1
            raise AdmissionRejected(
                f"deadline {deadline_seconds:.3g}s is tighter than the "
                f"predicted evaluation time {predicted:.3g}s",
                reason="deadline",
            )
        # a sharded store's token also covers its snapshot generation
        # and journal position, so reopening or re-snapshotting the
        # store never fuses a request with a stale evaluation
        database = self.engine.database
        key = fusion_key(
            query,
            effective,
            getattr(database, "fusion_token", database.version),
        )
        budget = self.backlog_budget_seconds
        if (
            budget is not None
            and not self._broker.has_pending(key)
            and self._broker.backlog_seconds() + predicted > budget
        ):
            account.rejected += 1
            raise AdmissionRejected(
                f"predicted backlog "
                f"{self._broker.backlog_seconds() + predicted:.3g}s "
                f"exceeds the {budget:.3g}s budget; retry later",
                reason="backlog",
            )
        self.ledger.charge(tenant, predicted)
        request = PendingRequest(
            query=query,
            options=effective,
            tenant=tenant,
            predicted_seconds=predicted,
            key=key,
            future=loop.create_future(),
            object_ids=object_ids,
            deadline_at=(
                None
                if deadline_seconds is None
                else loop.time() + deadline_seconds
            ),
            submitted_at=loop.time(),
        )
        self._broker.add(request)
        assert self._wakeup is not None
        self._wakeup.set()
        return await request.future

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------
    def watch(
        self,
        query: PSTQuery,
        tenant: str = "default",
        stride: int = 1,
        faults=None,
        quarantine_after: int = 3,
    ) -> "ServiceStandingQuery":
        """Register a standing query owned by ``tenant``.

        Wraps :meth:`QueryEngine.watch`; the returned handle's
        :meth:`~ServiceStandingQuery.tick` runs on the service's
        executor so it does not block the event loop, and measured
        tick time is billed to the owning tenant.  If repeated tick
        failures quarantine the query, the event is surfaced on the
        tenant's account (``quarantined`` counter) instead of being
        visible only to whoever holds the handle.
        """
        account = self.ledger.account(tenant)

        def record_quarantine(_standing) -> None:
            account.quarantined += 1

        standing = self.engine.watch(
            query,
            stride=stride,
            faults=faults,
            quarantine_after=quarantine_after,
            on_quarantine=record_quarantine,
        )
        return ServiceStandingQuery(self, standing, tenant)

    # ------------------------------------------------------------------
    # broker loop
    # ------------------------------------------------------------------
    async def _broker_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if len(self._broker) == 0:
                if self._stopping:
                    return
                continue
            # the fusion window: let concurrent submitters pile in
            await asyncio.sleep(self.fusion_window_ms / 1000.0)
            groups = self._broker.drain()
            if self.max_concurrency > 1:
                await asyncio.gather(
                    *(self._execute_group(g) for g in groups)
                )
            else:
                for group in groups:
                    await self._execute_group(group)
            if self._stopping and len(self._broker) == 0:
                return

    async def _execute_group(self, group: FusedGroup) -> None:
        """Run one fused evaluation and demultiplex the answers."""
        loop = asyncio.get_running_loop()
        # mid-queue deadline enforcement: a request admitted in time
        # can still expire while the queue ahead of it drains; failing
        # it *before* the evaluation keeps the deadline a promise
        # rather than a hint, and costs the caller nothing (settled at
        # 0s).  The rest of the fused group still executes.
        now = loop.time()
        live: List[PendingRequest] = []
        for request in group.requests:
            if (
                request.deadline_at is not None
                and now > request.deadline_at
            ):
                self.ledger.settle(
                    request.tenant,
                    request.predicted_seconds,
                    0.0,
                    False,
                )
                self.ledger.account(request.tenant).rejected += 1
                if not request.future.done():
                    request.future.set_exception(
                        AdmissionRejected(
                            f"deadline passed while queued: waited "
                            f"{now - request.submitted_at:.3g}s",
                            reason="deadline",
                        )
                    )
            else:
                live.append(request)
        if not live:
            return
        representative = live[0]
        started = loop.time()
        self.evaluations += 1
        fused = len(live) > 1
        if fused:
            self.fused_calls += 1
        try:
            result = await loop.run_in_executor(
                self._executor,
                lambda: self.engine.evaluate(
                    representative.query, options=representative.options
                ),
            )
        except Exception as exc:
            for request in live:
                self.ledger.settle(
                    request.tenant, request.predicted_seconds, 0.0, fused
                )
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        elapsed = loop.time() - started
        share = elapsed / len(live)
        shared_events: List[str] = []
        if fused:
            tenants = {request.tenant for request in live}
            shared_events.append(
                f"fused {len(live)} requests from "
                f"{len(tenants)} tenant(s) within "
                f"{self.fusion_window_ms:g} ms window "
                f"(fingerprint {group.fingerprint})"
            )
        for request in live:
            self.ledger.settle(
                request.tenant, request.predicted_seconds, share, fused
            )
            events = list(shared_events)
            events.append(
                f"admission: tenant {request.tenant!r} charged "
                f"{request.predicted_seconds:.3g}s predicted, settled "
                f"{share:.3g}s measured"
            )
            request.future.set_result(
                self._caller_result(request, result, share, events)
            )

    def _caller_result(
        self,
        request: PendingRequest,
        result: QueryResult,
        share: float,
        events: List[str],
    ) -> QueryResult:
        """One caller's view of the fused result.

        The plan is shallow-copied with a per-caller ``fusion`` event
        list so ``explain()`` shows what was merged and why; values
        are filtered to the caller's ``object_ids`` subset if one was
        given.  A query that reduced to a trivial answer has no plan,
        so the fusion events have nowhere to land -- the values are
        still correct.
        """
        plan = result.plan
        if plan is not None:
            plan = copy.copy(plan)
            plan.fusion = list(result.plan.fusion) + events
        values: Dict[str, Any] = result.values
        if request.object_ids is not None:
            wanted = set(request.object_ids)
            values = {
                oid: value
                for oid, value in result.values.items()
                if oid in wanted
            }
        return QueryResult(
            query=request.query,
            method=result.method,
            values=values,
            elapsed_seconds=share,
            plan=plan,
        )


class ServiceStandingQuery:
    """A tenant-owned standing query running through the service.

    Thin async wrapper over :class:`~repro.core.streaming.StandingQuery`:
    :meth:`tick` and :meth:`reset` run on the service executor so the
    event loop stays responsive, and measured tick time is billed to
    the owning tenant's account.  The underlying handle is available
    as :attr:`standing` for synchronous introspection
    (:meth:`~repro.core.streaming.StandingQuery.explain`, ``error``,
    ``quarantined``).
    """

    def __init__(
        self,
        service: QueryService,
        standing,
        tenant: str,
    ) -> None:
        self.service = service
        self.standing = standing
        self.tenant = tenant

    @property
    def quarantined(self) -> bool:
        return self.standing.quarantined

    async def tick(self) -> QueryResult:
        """Evaluate the current window and slide it (off-loop)."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            result = await loop.run_in_executor(
                self.service._executor, self.standing.tick
            )
        finally:
            elapsed = loop.time() - started
            account = self.service.ledger.account(self.tenant)
            account.charged_seconds += elapsed
            account.measured_seconds += elapsed
        return result

    async def reset(self) -> "ServiceStandingQuery":
        """Revive after quarantine: rebuild state from the database."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self.service._executor, self.standing.reset
        )
        return self

    def explain(self):
        """The standing query's current plan (synchronous, cheap)."""
        return self.standing.explain()
