"""Request broker: fuse compatible requests into stacked evaluations.

Many clients monitoring the same uncertain trajectories tend to ask
the same questions at the same time -- dashboards refresh on the same
cadence, alerting rules share windows.  The broker exploits that:
requests collected within one scheduling window are grouped by a
*fusion key* (query semantics plus every option that can change the
answer, plus the database version so a mutation splits the groups)
and each group is answered by a single engine evaluation whose values
are demultiplexed back to every caller.

Everything here is synchronous and deterministic; the asyncio side
(:class:`~repro.service.server.QueryService`) owns timing and
concurrency.  That split keeps the scheduling policy unit-testable
without an event loop.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.planner import PlanOptions
from repro.core.query import PSTQuery

__all__ = [
    "FusedGroup",
    "PendingRequest",
    "RequestBroker",
    "fingerprint_of",
    "fusion_key",
]

# monotonically increasing tag handed to requests that must never fuse
# (Monte-Carlo with no seed: two evaluations legitimately disagree)
_unfusable_counter = 0


def fusion_key(
    query: PSTQuery,
    options: PlanOptions,
    database_version: int,
) -> Tuple[Any, ...]:
    """The equivalence class of requests answerable by one evaluation.

    Two requests fuse only if a single ``QueryEngine.evaluate`` call
    produces both answers exactly.  The key therefore covers the query
    semantics (type, region, times, ``k``), every option that can
    change the values (forced method, filter toggles, Monte-Carlo
    sample count and seed, ``allow_approximate``), and the database
    version -- an update between two submissions must split them.
    Execution knobs (``dispatch``, ``max_workers``, ``supervisor``)
    stay out: they change *how*, never *what*, and the group executes
    with its first request's options.

    Monte-Carlo with ``seed=None`` is non-deterministic, so such
    requests get a unique key and never fuse.
    """
    may_sample = options.method == "mc" or (
        options.method is None and options.allow_approximate
    )
    if may_sample and options.seed is None:
        global _unfusable_counter
        _unfusable_counter += 1
        return ("unfusable", _unfusable_counter)
    return (
        type(query).__name__,
        frozenset(query.window.region),
        frozenset(query.window.times),
        getattr(query, "k", None),
        options.method,
        options.prefilter,
        options.bfs_prune,
        options.allow_approximate,
        options.n_samples,
        options.seed,
        database_version,
    )


def fingerprint_of(key: Tuple[Any, ...]) -> str:
    """Short stable hex digest of a fusion key, for explain output."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return digest[:12]


@dataclass
class PendingRequest:
    """One client request queued inside the service.

    Attributes:
        query: the PST query to answer.
        options: fully resolved :class:`PlanOptions` (the engine-level
            ``method=``/``seed=`` keywords are folded in before the
            request enters the broker).
        tenant: account the request is admitted and billed against.
        predicted_seconds: cost-model admission price.
        key: fusion key (see :func:`fusion_key`).
        future: where the caller awaits its
            :class:`~repro.core.engine.QueryResult`.
        object_ids: optional subset of object ids the caller wants;
            ``None`` means all.  Deliberately *not* part of the fusion
            key -- the fused evaluation computes every object and each
            caller receives its filtered slice.
        deadline_at: absolute loop time the answer is due, or ``None``.
        submitted_at: loop time the request entered the queue.
    """

    query: PSTQuery
    options: PlanOptions
    tenant: str
    predicted_seconds: float
    key: Tuple[Any, ...]
    future: Any
    object_ids: Optional[Sequence[Any]] = None
    deadline_at: Optional[float] = None
    submitted_at: float = 0.0


@dataclass
class FusedGroup:
    """Requests that will be answered by one engine evaluation."""

    key: Tuple[Any, ...]
    requests: List[PendingRequest] = field(default_factory=list)

    @property
    def fingerprint(self) -> str:
        return fingerprint_of(self.key)

    @property
    def predicted_seconds(self) -> float:
        """Price of executing the group: one evaluation, not N."""
        if not self.requests:
            return 0.0
        return min(r.predicted_seconds for r in self.requests)

    @property
    def deadline_at(self) -> Optional[float]:
        """Earliest member deadline -- the one scheduling must honour."""
        deadlines = [
            r.deadline_at
            for r in self.requests
            if r.deadline_at is not None
        ]
        return min(deadlines) if deadlines else None

    @property
    def tenants(self) -> List[str]:
        seen: Dict[str, None] = {}
        for request in self.requests:
            seen.setdefault(request.tenant, None)
        return list(seen)


class RequestBroker:
    """FIFO intake queue with fuse-and-order draining.

    The service enqueues admitted requests as they arrive; once per
    scheduling window it calls :meth:`drain`, which empties the queue,
    groups requests by fusion key and returns the groups in execution
    order: earliest deadline first, then cheapest predicted plan --
    so under load the broker clears many quick answers before one
    expensive one, and a deadline is never parked behind undated work.
    """

    def __init__(self) -> None:
        self._pending: List[PendingRequest] = []

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request: PendingRequest) -> None:
        self._pending.append(request)

    def has_pending(self, key: Tuple[Any, ...]) -> bool:
        """Whether a queued request already carries this fusion key.

        Admission control uses this to wave fusable requests through
        the backlog check: joining an existing group adds (almost) no
        work, so shedding it would only lose the cheap answer.
        """
        return any(request.key == key for request in self._pending)

    def clear(self) -> List[PendingRequest]:
        """Empty the queue and return what was in it (for shutdown)."""
        pending = list(self._pending)
        self._pending.clear()
        return pending

    def backlog_seconds(self) -> float:
        """Predicted cost of the work already queued, after fusion.

        This is the number admission control compares against its
        backlog budget, so it must price the queue the way it will
        actually execute: one evaluation per fused group.
        """
        cheapest: Dict[Tuple[Any, ...], float] = {}
        for request in self._pending:
            seen = cheapest.get(request.key)
            if seen is None or request.predicted_seconds < seen:
                cheapest[request.key] = request.predicted_seconds
        return sum(cheapest.values())

    def drain(self) -> List[FusedGroup]:
        """Empty the queue into fused groups, in execution order."""
        groups: Dict[Tuple[Any, ...], FusedGroup] = {}
        for request in self._pending:
            group = groups.get(request.key)
            if group is None:
                group = groups[request.key] = FusedGroup(key=request.key)
            group.requests.append(request)
        self._pending.clear()
        return sorted(
            groups.values(),
            key=lambda g: (
                g.deadline_at if g.deadline_at is not None else float("inf"),
                g.predicted_seconds,
            ),
        )
